//! # fsm-fusion — fusion-based fault tolerance for finite state machines
//!
//! An open-source Rust reproduction of *"A Fusion-based Approach for
//! Tolerating Faults in Finite State Machines"* (Vinit Ogale, Bharath
//! Balasubramanian, Vijay K. Garg; IPDPS 2009).
//!
//! This facade crate re-exports the whole workspace so applications can use
//! a single dependency:
//!
//! * [`dfsm`] — the DFSM substrate (machines, builders, execution, the
//!   reachable cross product).
//! * [`fusion`] — the paper's contribution: closed partition lattices,
//!   fault graphs, `(f, m)`-fusion generation (Algorithm 2) and recovery
//!   (Algorithm 3).
//! * [`machines`] — the machine library used by the paper's evaluation
//!   (MESI, TCP, counters, parity checkers, shift registers, dividers,
//!   pattern detectors) plus random machine generation.
//! * [`distsys`] — the distributed system: servers, workloads, fault
//!   injection, fusion-backed and replicated recovery, the sensor-network
//!   scenario, and an [`distsys::Environment`] abstraction with two
//!   runtimes — a threaded [`distsys::OsEnvironment`] and a deterministic,
//!   seeded [`distsys::SimEnvironment`] (virtual clock, scripted message
//!   chaos, byte-identical replay; see [`distsys::sim`]).
//! * [`erasure`] — the coding-theory analogy substrate (Hamming distances,
//!   repetition/parity/Hamming codes).
//!
//! ## Quickstart
//!
//! The recommended entry point is a [`fusion::FusionSession`] built from a
//! [`fusion::FusionConfig`]: engine, worker count, product strategy and
//! cache policy are resolved once (the environment is only the `Auto`
//! fallback, via [`fusion::FusionConfig::from_env`]), and the session
//! reuses scratch buffers, its worker-pool handle and a cross-call closure
//! cache over every generation.
//!
//! ```
//! use fsm_fusion::prelude::*;
//!
//! // The two mod-3 counters of the paper's Figure 1, plus one generated
//! // backup, tolerate one crash fault.  One session serves the whole
//! // pipeline (and any number of systems after this one).
//! let machines = fig1_machines();
//! let mut session = FusionConfig::new().engine(Engine::Sequential).build();
//! let mut system =
//!     FusedSystem::with_session(&machines, 1, FaultModel::Crash, &mut session).unwrap();
//! system.apply_workload(&Workload::from_bits("0110100101"));
//!
//! system.crash(0).unwrap();
//! let outcome = system.recover().unwrap();
//! assert!(outcome.matches_oracle);
//! ```
//!
//! The pre-session free functions ([`fusion::generate_fusion`],
//! [`fusion::enumerate_lattice`], `FusedSystem::new`, …) remain as thin
//! shims over one-shot environment-configured sessions, pinned
//! bit-identical to the session path by `tests/session_properties.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fsm_dfsm as dfsm;
pub use fsm_distsys as distsys;
pub use fsm_erasure as erasure;
pub use fsm_fusion_core as fusion;
pub use fsm_machines as machines;

/// The most commonly used types, importable with one `use`.
pub mod prelude {
    pub use fsm_dfsm::{
        Dfsm, DfsmBuilder, Event, Executor, FactorExtension, ProductBuildStats, ProductBuilder,
        ProductStrategy, ReachableProduct, StateId,
    };
    pub use fsm_distsys::sim::sweep::{
        compare_backends, sweep, sweep_recovery, BackendCost, RecoveryScenario, Scenario,
        SweepReport,
    };
    pub use fsm_distsys::{
        shared, ClientHandle, DirStore, DurabilityConfig, DurableServer, Environment, FaultKind,
        FaultPlan, FusedSystem, GroupConfig, IngestConfig, IngestMetrics, IngestPipeline,
        LaneStatus, MemStore, OsEnvironment, RejoinPath, ReplayStats, ReplicatedSystem, Seeded,
        SensorBackupMode, SensorNetwork, ServeReport, ServerGroup, SharedStore, SimConfig,
        SimEnvironment, Store, TraceEvent, Workload, REPLAY_CUTOVER,
    };
    pub use fsm_fusion_core::{
        generate_fusion, generate_fusion_for_machines, BitsetPartition, CachePolicy, CacheStats,
        Engine, FaultGraph, FaultModel, FusionConfig, FusionReport, FusionSession, MachineReport,
        Partition, RecoveryEngine, TopDelta, UpdateStats, WeightRepr,
    };
    pub use fsm_machines::{fig1_machines, table1_rows, MachineSet};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let machines = crate::machines::fig1_machines();
        let (product, fusion) = generate_fusion_for_machines(&machines, 1).unwrap();
        assert_eq!(product.size(), 9);
        assert_eq!(fusion.machine_sizes(), vec![3]);
        let mut system = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        system.apply_workload(&Workload::from_bits("01"));
        assert!(system.consistent_with_oracle());
    }

    #[test]
    fn facade_session_surface_composes() {
        let machines = crate::machines::fig1_machines();
        let mut session = FusionConfig::new().engine(Engine::Sequential).build();
        let (product, fusion) = session.generate_fusion_for_machines(&machines, 1).unwrap();
        assert_eq!(product.size(), 9);
        assert_eq!(fusion.machine_sizes(), vec![3]);
        let mut system =
            FusedSystem::with_session(&machines, 1, FaultModel::Crash, &mut session).unwrap();
        system.apply_workload(&Workload::from_bits("01"));
        assert!(system.consistent_with_oracle());
        let stats: CacheStats = session.cache_stats();
        assert!(stats.insertions > 0);
    }
}
