//! # fsm-fusion — fusion-based fault tolerance for finite state machines
//!
//! An open-source Rust reproduction of *"A Fusion-based Approach for
//! Tolerating Faults in Finite State Machines"* (Vinit Ogale, Bharath
//! Balasubramanian, Vijay K. Garg; IPDPS 2009).
//!
//! This facade crate re-exports the whole workspace so applications can use
//! a single dependency:
//!
//! * [`dfsm`] — the DFSM substrate (machines, builders, execution, the
//!   reachable cross product).
//! * [`fusion`] — the paper's contribution: closed partition lattices,
//!   fault graphs, `(f, m)`-fusion generation (Algorithm 2) and recovery
//!   (Algorithm 3).
//! * [`machines`] — the machine library used by the paper's evaluation
//!   (MESI, TCP, counters, parity checkers, shift registers, dividers,
//!   pattern detectors) plus random machine generation.
//! * [`distsys`] — the simulated distributed system: servers, workloads,
//!   fault injection, fusion-backed and replicated recovery, the
//!   sensor-network scenario and a threaded runner.
//! * [`erasure`] — the coding-theory analogy substrate (Hamming distances,
//!   repetition/parity/Hamming codes).
//!
//! ## Quickstart
//!
//! ```
//! use fsm_fusion::prelude::*;
//!
//! // The two mod-3 counters of the paper's Figure 1, plus one generated
//! // backup, tolerate one crash fault.
//! let machines = fig1_machines();
//! let mut system = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
//! system.apply_workload(&Workload::from_bits("0110100101"));
//!
//! system.crash(0).unwrap();
//! let outcome = system.recover().unwrap();
//! assert!(outcome.matches_oracle);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use fsm_dfsm as dfsm;
pub use fsm_distsys as distsys;
pub use fsm_erasure as erasure;
pub use fsm_fusion_core as fusion;
pub use fsm_machines as machines;

/// The most commonly used types, importable with one `use`.
pub mod prelude {
    pub use fsm_dfsm::{Dfsm, DfsmBuilder, Event, Executor, ReachableProduct, StateId};
    pub use fsm_distsys::{
        FaultPlan, FusedSystem, ReplicatedSystem, SensorBackupMode, SensorNetwork, Workload,
    };
    pub use fsm_fusion_core::{
        generate_fusion, generate_fusion_for_machines, BitsetPartition, FaultGraph, FaultModel,
        FusionReport, MachineReport, Partition, RecoveryEngine,
    };
    pub use fsm_machines::{fig1_machines, table1_rows, MachineSet};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_compose() {
        let machines = crate::machines::fig1_machines();
        let (product, fusion) = generate_fusion_for_machines(&machines, 1).unwrap();
        assert_eq!(product.size(), 9);
        assert_eq!(fusion.machine_sizes(), vec![3]);
        let mut system = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        system.apply_workload(&Workload::from_bits("01"));
        assert!(system.consistent_with_oracle());
    }
}
