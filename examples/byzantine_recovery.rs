//! Byzantine fault tolerance: machines that lie about their state.
//!
//! An `(f, m)`-fusion tolerates `f` crash faults but only `⌊f/2⌋` Byzantine
//! faults (Theorem 2).  This example provisions the Figure 1 counters for
//! one Byzantine fault (so the generator targets `dmin > 2`), lets one
//! machine lie, shows that the liar is detected and out-voted, and then
//! demonstrates that two simultaneous liars defeat the same system.
//!
//! Run with: `cargo run --example byzantine_recovery`

use fsm_fusion::prelude::*;

fn main() {
    let machines = fsm_fusion::machines::fig1_machines();
    // One session serves both systems built in this example; the second
    // construction reuses the first one's cached closures.
    let mut session = FusionConfig::new().build();
    let mut system = FusedSystem::with_session(&machines, 1, FaultModel::Byzantine, &mut session)
        .expect("fusion generation succeeds");
    println!(
        "Provisioned for 1 Byzantine fault: {} original machines + {} backups (dmin target > 2).",
        system.num_originals(),
        system.num_backups()
    );

    let workload = Workload::from_bits("1101001011010");
    system.apply_workload(&workload);

    // One machine silently corrupts its state.
    let liar = 1;
    let truth = system.server(liar).current_state();
    let forged = system
        .corrupt_differently(liar)
        .expect("machine has >1 state");
    println!(
        "\nMachine {} lies: true state {}, reported state {}.",
        system.server(liar).name(),
        truth,
        forged
    );

    let outcome = system.recover().expect("one liar is tolerated");
    println!(
        "Recovery found top state #{}; suspected Byzantine machines: {:?}; liar corrected back to {}.",
        outcome.recovery.top_state,
        outcome.recovery.suspected_byzantine,
        system.server(liar).current_state()
    );
    assert!(outcome.matches_oracle);
    assert!(outcome.recovery.suspected_byzantine.contains(&liar));

    // Now exceed the budget: two liars in a system provisioned for one.
    println!("\n-- exceeding the budget: two simultaneous liars --");
    let mut overloaded =
        FusedSystem::with_session(&machines, 1, FaultModel::Byzantine, &mut session)
            .expect("fusion generation succeeds");
    overloaded.apply_workload(&workload);
    overloaded
        .corrupt_differently(0)
        .expect("machine has >1 state");
    overloaded
        .corrupt_differently(1)
        .expect("machine has >1 state");
    match overloaded.recover() {
        Ok(outcome) if outcome.matches_oracle => {
            println!("Recovery happened to pick the right state (the liars were not coordinated).")
        }
        Ok(outcome) => println!(
            "Recovery picked top state #{} which is WRONG — as Theorem 2 predicts, two liars are too many.",
            outcome.recovery.top_state
        ),
        Err(e) => println!("Recovery failed outright ({e}) — two liars are too many."),
    }

    println!("\nByzantine recovery example finished successfully.");
}
