//! The paper's motivating scenario: a 100-sensor network backed by a single
//! fused 3-state machine (Section 1) instead of 100 replica sensors.
//!
//! Run with: `cargo run --example sensor_network`

use fsm_fusion::prelude::*;

fn main() {
    const SENSORS: usize = 100;
    const OBSERVATIONS: usize = 50_000;

    // One fusion session serves every generation in this example (the
    // analytic-mode network needs none; the exact-mode cross-check below
    // reuses the same session).
    let mut session = FusionConfig::new().build();

    // Analytic mode: the fused backup is the sum-mod-3 counter over every
    // sensor's events (the machine Algorithm 2 finds for small networks —
    // see the exact-mode cross-check below).
    let mut network =
        SensorNetwork::new_with_session(SENSORS, SensorBackupMode::Analytic, &mut session)
            .expect("non-empty network");
    network
        .observe_randomly(OBSERVATIONS, 2024)
        .expect("observations only touch existing sensors");

    let (fusion_states, replication_states) = network.backup_state_space_comparison();
    println!(
        "{SENSORS} sensors, {OBSERVATIONS} observations processed.\n\
         Backup state space: fusion = {fusion_states} states, replication = {replication_states:e} states."
    );

    // A sensor dies; the month's count would be lost without a backup.
    let victim = 42;
    let truth = network
        .sensor_state(victim)
        .expect("alive before the crash");
    network.crash_sensor(victim).expect("sensor exists");
    println!("\n!! sensor {victim} crashed (its count mod 3 was {truth})");

    let recovered = network.recover().expect("one crash is within the budget");
    println!(
        "Recovered sensor {victim} count mod 3 = {} (correct: {})",
        recovered[victim],
        recovered[victim] == truth
    );
    assert_eq!(recovered[victim], truth);

    // Cross-check on a small network that the generic Algorithm 2 pipeline
    // produces exactly this 3-state backup.
    let small = SensorNetwork::sensor_machines(4);
    let (product, fusion) = session
        .generate_fusion_for_machines(&small, 1)
        .expect("generation succeeds");
    println!(
        "\nCross-check with 4 sensors: |top| = {} states, generated backup sizes = {:?}",
        product.size(),
        fusion.machine_sizes()
    );
    assert_eq!(fusion.machine_sizes(), vec![3]);

    println!("\nSensor network example finished successfully.");
}
