//! Quickstart: the paper's Figure 1 example, end to end.
//!
//! Two mod-3 counters (one counting `0` events, one counting `1` events)
//! are backed up by a single generated 3-state fusion machine.  We run a
//! workload, crash one counter, and recover its state from the survivor and
//! the backup — with a fraction of the state replication would need.
//!
//! Run with: `cargo run --example quickstart`

use fsm_fusion::prelude::*;

fn main() {
    // 1. The original machines (Fig. 1(i) and 1(ii)).
    let machines = fsm_fusion::machines::fig1_machines();
    println!("Original machines:");
    for m in &machines {
        println!("  {} with {} states", m.name(), m.size());
    }

    // 2. A fusion session: engine, workers and cache policy resolved once
    //    (FusionConfig::from_env() would consult FSM_FUSION_WORKERS /
    //    FSM_FUSION_ENGINE instead).  Repeated generations through the same
    //    session reuse scratch buffers and cached closures.
    let mut session = FusionConfig::new().build();

    // 3. Build a fusion-backed system tolerating one crash fault.
    let mut system = FusedSystem::with_session(&machines, 1, FaultModel::Crash, &mut session)
        .expect("fusion generation succeeds for the Fig. 1 counters");
    println!(
        "\nReachable cross product (top) has {} states; replication would need {} backup states, fusion uses {}.",
        system.product().size(),
        system.replication_state_space(),
        system.fusion_state_space(),
    );
    for (i, m) in system.fusion().machines.iter().enumerate() {
        println!("  generated backup F{}: {} states", i + 1, m.size());
    }

    // 4. Drive all machines with a common event stream (the environment).
    let workload = Workload::from_bits("011010011101");
    system.apply_workload(&workload);
    println!(
        "\nAfter {} events: 0-counter = {}, 1-counter = {}, backup = {}",
        workload.len(),
        system.server(0).current_state(),
        system.server(1).current_state(),
        system.server(2).current_state(),
    );

    // 5. Crash the 0-counter: its execution state is lost.
    system.crash(0).expect("server 0 exists");
    println!("\n!! machine {} crashed", system.server(0).name());

    // 6. Recover: Algorithm 3 votes over the surviving states.
    let outcome = system.recover().expect("one crash is within the budget");
    println!(
        "Recovered top state #{} with {} votes; repaired servers: {:?}",
        outcome.recovery.top_state, outcome.recovery.votes, outcome.repaired
    );
    println!(
        "0-counter restored to state {} (matches ground truth: {})",
        system.server(0).current_state(),
        outcome.matches_oracle
    );

    assert!(outcome.matches_oracle);
    println!("\nQuickstart finished successfully.");
}
