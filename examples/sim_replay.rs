//! Deterministic simulation: seeded chaos, crash recovery and replay.
//!
//! Runs a fused system on the `SimEnvironment` — virtual time, seeded
//! message chaos, a killed process — recovers the lost state with
//! Algorithm 3, and then replays the *same seed* to show the trace hash is
//! bit-identical.  Run with:
//!
//! ```text
//! cargo run --example sim_replay [SEED]
//! ```

use fsm_fusion::distsys::sim::sweep::{run_scenario, Scenario};
use fsm_fusion::prelude::*;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xFDB_2009);

    // A hand-driven world: the Figure 1 counter pair plus one fused backup,
    // one crash fault, aggressive reply chaos.
    let machines = fig1_machines();
    let system = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    let env = Seeded(seed)
        .sim()
        .drop_probability(0.25)
        .reorder_probability(0.25)
        .duplicate_probability(0.10)
        .build();

    let roster = system.all_machines();
    let workload = Seeded(seed).split(1).workload_over_machines(&roster, 30);
    let config = GroupConfig::new().collect_timeout(std::time::Duration::from_secs(1));
    let mut group = env.spawn_group(&roster, &config);
    group.apply_batch(workload.events());
    group.kill_process(0); // the primary's process dies — no report at all

    // Collect what the network lets through; the killed server stays silent
    // and decodes as an erasure.
    let partial = group.try_collect_reports();
    let reports: Vec<MachineReport> = partial
        .into_iter()
        .map(|r| r.unwrap_or(MachineReport::Crashed))
        .collect();

    let mut oracle = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    oracle.apply_workload(&workload);
    let recovered = oracle.recover_external(&reports).unwrap();
    println!("seed            : {seed:#x}");
    println!("virtual time    : {:?}", env.now());
    println!("network         : {:?}", env.net_stats());
    println!("reports         : {reports:?}");
    println!("recovered states: {:?}", recovered.states);
    println!("matches oracle  : {}", recovered.matches_oracle);
    group.shutdown();

    // Replay: the same seed reproduces the same world, hash-identical.
    let scenario = Scenario::from_seed(seed);
    let first = run_scenario(&scenario);
    let second = run_scenario(&scenario);
    println!(
        "\nsweep scenario '{}' (backend {:?}): hash {:#018x} == {:#018x}: {}",
        first.preset,
        first.backend,
        first.trace_hash,
        second.trace_hash,
        first.trace_hash == second.trace_hash
    );
    assert_eq!(first.trace_hash, second.trace_hash, "replay diverged");
    assert!(first.is_ok(), "violations: {:?}", first.violations);
}
