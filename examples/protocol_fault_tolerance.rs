//! Fault tolerance for protocol state machines: MESI + TCP + the Figure 2
//! machines (the paper's table row 4), compared against replication.
//!
//! Run with: `cargo run --release --example protocol_fault_tolerance`
//! (release mode recommended: fusion generation for this row explores a
//! 176-state cross product).

use fsm_fusion::machines::{fig2_machine_a, fig2_machine_b, mesi, tcp};
use fsm_fusion::prelude::*;

fn main() {
    let machines = vec![mesi(), tcp(), fig2_machine_a(), fig2_machine_b()];
    println!("Machines:");
    for m in &machines {
        println!(
            "  {:<4} {} states, {} events",
            m.name(),
            m.size(),
            m.alphabet().len()
        );
    }

    // Tolerate one crash fault across the whole group.  The session owns
    // engine selection and the closure cache for the generation.
    let mut session = FusionConfig::new().build();
    let mut fused = FusedSystem::with_session(&machines, 1, FaultModel::Crash, &mut session)
        .expect("fusion generation succeeds");
    let mut replicated = ReplicatedSystem::new(&machines, 1, FaultModel::Crash)
        .expect("replication always succeeds");

    println!(
        "\n|top| = {} states; fusion backup: {} machine(s), {} states total product; \
         replication backup: {} machines, {} states total product.",
        fused.product().size(),
        fused.num_backups(),
        fused.fusion_state_space(),
        replicated.num_backups(),
        replicated.backup_state_space(),
    );

    // Drive both systems with the same protocol workload: a mix of cache
    // operations, TCP segments and binary events.
    let workload = Workload::uniform_over_machines(&machines, 2_000, 7);
    fused.apply_workload(&workload);
    replicated.apply_workload(&workload);

    println!("\nAfter {} events:", workload.len());
    for (i, machine) in machines.iter().enumerate() {
        println!(
            "  {:<4} state = {}",
            machine.name(),
            fused
                .server(i)
                .machine()
                .state_name(fused.server(i).current_state())
        );
    }

    // Crash the TCP machine in both systems and recover.
    fused.crash(1).expect("server exists");
    replicated.crash(1, 0).expect("replica exists");
    let fused_outcome = fused.recover().expect("within fault budget");
    let replicated_states = replicated.recover().expect("within fault budget");

    let tcp_state = fused.server(1).current_state();
    println!(
        "\nTCP connection state recovered by fusion:      {}",
        machines[1].state_name(tcp_state)
    );
    println!(
        "TCP connection state recovered by replication: {}",
        machines[1].state_name(replicated_states[1])
    );
    assert!(fused_outcome.matches_oracle);
    assert_eq!(tcp_state, replicated_states[1]);

    println!(
        "\nBoth strategies recover the same state; fusion used {} backup states, replication {}.",
        fused.fusion_state_space(),
        replicated.backup_state_space()
    );
    println!("Protocol fault-tolerance example finished successfully.");
}
