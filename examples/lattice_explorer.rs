//! Explore the closed partition lattice of the paper's Figure 2/3 example:
//! print the reachable cross product, the full lattice, the basis, the fault
//! graphs of Figure 4 and the set representation of Figure 5.
//!
//! Run with: `cargo run --example lattice_explorer`

use fsm_fusion::fusion::{quotient_machine, set_representation, FaultGraph};
use fsm_fusion::machines::{fig2_machines, fig3_top};
use fsm_fusion::prelude::*;

fn main() {
    // One session for every lattice walk and generation below: the lattice
    // enumeration seeds the closure cache, and the fusion generation at the
    // end reuses those closures.
    let mut session = FusionConfig::new().build();

    let machines = fig2_machines();
    let product = session
        .build_product(&machines)
        .expect("product of valid machines");
    println!("== Figure 2: reachable cross product ==");
    println!("{}", product.top());

    // The 4-state top machine with the paper's t0..t3 naming.
    let top = fig3_top();

    println!("== Figure 3: closed partition lattice of the top machine ==");
    let lattice = session
        .enumerate_lattice(&top, 10_000)
        .expect("small lattice");
    println!(
        "{} closed partitions (truncated: {})",
        lattice.len(),
        lattice.truncated
    );
    for (i, p) in lattice.elements.iter().enumerate() {
        println!("  #{i}: {} blocks  {}", p.num_blocks(), p);
    }
    println!(
        "Hasse edges (coarser -> finer): {:?}",
        lattice.hasse_edges()
    );

    // The basis is the lower cover of ⊤ — through the session it comes
    // straight out of the closures the enumeration above already cached.
    let b = session
        .lower_cover(&top, &Partition::singletons(top.size()))
        .expect("basis of a valid machine");
    println!("\nBasis (lower cover of top): {} machines", b.len());
    for p in &b {
        let m = quotient_machine(&top, p, "basis").expect("closed partition");
        println!("  {} -> {} states", p, m.size());
    }

    println!("\n== Figure 4: fault graphs ==");
    let a_part = set_representation(&top, &machines[0]).expect("A <= top");
    let b_part = set_representation(&top, &machines[1]).expect("B <= top");
    let g_a = FaultGraph::from_partitions(top.size(), std::slice::from_ref(&a_part));
    let g_ab = FaultGraph::from_partitions(top.size(), &[a_part.clone(), b_part.clone()]);
    println!(
        "G({{A}}):    dmin = {}, weight histogram {:?}",
        g_a.dmin(),
        g_a.weight_histogram()
    );
    println!(
        "G({{A,B}}):  dmin = {}, weight histogram {:?}",
        g_ab.dmin(),
        g_ab.weight_histogram()
    );

    // Generate a (2,2)-fusion as the paper does with {M1, M2}.
    let fusion = session
        .generate_fusion(&top, &[a_part.clone(), b_part.clone()], 2)
        .expect("a (2,2)-fusion exists");
    let mut all = vec![a_part.clone(), b_part.clone()];
    all.extend(fusion.partitions.iter().cloned());
    let g_all = FaultGraph::from_partitions(top.size(), &all);
    println!(
        "G({{A,B,F1,F2}}): dmin = {} -> tolerates {} crash faults / {} Byzantine faults",
        g_all.dmin(),
        g_all.max_crash_faults(),
        g_all.max_byzantine_faults()
    );

    println!("\n== Figure 5: set representation of A over the top machine ==");
    print!(
        "{}",
        fsm_fusion::fusion::set_repr::format_set_representation(&top, &machines[0], &a_part)
    );

    println!("\n== DOT export (render with graphviz) ==");
    println!("{}", fsm_fusion::dfsm::to_dot_default(&top));
}
