//! Determinism guarantees of the simulation environment.
//!
//! The contract the `sim` module sells is *byte-identical replay*: the same
//! `u64` seed must reproduce the same world — every message, drop, delivery
//! time, fault and recovery — bit for bit, across process runs.  This suite
//! pins that contract from outside the crate:
//!
//! * **Replay** (proptest over seeds): running a sweep scenario twice
//!   produces identical trace hashes, trace lengths and network counters,
//!   and a raw `SimEnvironment` reproduces its full `TraceEvent` history.
//! * **Divergence**: different seeds do diverge (the hash is not a
//!   constant), and across a seed range every chaos mode — drops, reorders,
//!   process kills — actually fires at least once.
//! * **Os/Sim agreement**: a fault-free workload driven through
//!   `&dyn Environment` lands every server in the same final state on the
//!   threaded `OsEnvironment` and the virtual-time `SimEnvironment`.

use std::collections::HashSet;
use std::time::Duration;

use fsm_fusion::distsys::sim::sweep::{run_scenario, Scenario};
use fsm_fusion::machines::mesi;
use fsm_fusion::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed, same world: the rolling trace hash, the event count and
    /// every network counter replay identically.
    #[test]
    fn same_seed_gives_byte_identical_replay(seed in 0u64..5_000) {
        let scenario = Scenario::from_seed(seed);
        let first = run_scenario(&scenario);
        let second = run_scenario(&scenario);
        prop_assert_eq!(first.trace_hash, second.trace_hash);
        prop_assert_eq!(first.trace_len, second.trace_len);
        prop_assert_eq!(first.stats, second.stats);
        prop_assert_eq!(first.injected, second.injected);
        prop_assert_eq!(&first.violations, &second.violations);
    }

    /// Scenario parameters themselves are a pure function of the seed.
    #[test]
    fn scenario_derivation_is_pure(seed in 0u64..100_000) {
        let a = Scenario::from_seed(seed);
        let b = Scenario::from_seed(seed);
        prop_assert_eq!(a.preset, b.preset);
        prop_assert_eq!(a.workload_len, b.workload_len);
        prop_assert_eq!(a.kills, b.kills);
        prop_assert_eq!(a.drop, b.drop);
        prop_assert_eq!(a.reorder, b.reorder);
    }
}

/// The full `TraceEvent` history — not just its hash — replays identically
/// on a raw `SimEnvironment` under aggressive chaos knobs.
#[test]
fn raw_environment_replays_full_trace() {
    let run = |seed: u64| {
        let env = Seeded(seed)
            .sim()
            .drop_probability(0.3)
            .duplicate_probability(0.2)
            .reorder_probability(0.3)
            .build();
        let machines = vec![mesi(), mesi()];
        let workload = Seeded(seed).split(1).workload_over_machines(&machines, 40);
        let mut group = env.spawn_group(&machines, &GroupConfig::new());
        for event in workload.events() {
            group.apply_event(event);
        }
        let _ = group.try_collect_reports();
        group.shutdown();
        (env.trace_hash(), env.trace_events(), env.net_stats())
    };
    let (hash_a, events_a, stats_a) = run(0xDEAD_BEEF);
    let (hash_b, events_b, stats_b) = run(0xDEAD_BEEF);
    assert_eq!(hash_a, hash_b, "trace hash must replay");
    assert_eq!(events_a, events_b, "full event history must replay");
    assert_eq!(stats_a, stats_b, "network counters must replay");
    assert!(!events_a.is_empty());

    // A different seed produces a different world.
    let (hash_c, _, _) = run(0xDEAD_BEF0);
    assert_ne!(hash_a, hash_c, "distinct seeds must diverge");
}

/// Different seeds explore different worlds: hashes are not constant, and
/// across a modest seed range every chaos mode fires at least once.
#[test]
fn seed_range_covers_drops_reorders_and_crashes() {
    let mut hashes = HashSet::new();
    let (mut drops, mut reorders, mut kills, mut crashes) = (0u64, 0u64, 0u64, 0usize);
    for seed in 0..60 {
        let outcome = run_scenario(&Scenario::from_seed(seed));
        assert!(
            outcome.is_ok(),
            "seed {seed} violated recovery: {:?}",
            outcome.violations
        );
        hashes.insert(outcome.trace_hash);
        drops += outcome.stats.dropped;
        reorders += outcome.stats.reordered;
        kills += outcome.stats.killed;
        crashes += outcome.injected;
    }
    assert!(hashes.len() > 50, "hashes barely diverge: {}", hashes.len());
    assert!(drops > 0, "no scenario dropped a message");
    assert!(reorders > 0, "no scenario reordered a reply");
    assert!(kills > 0, "no scenario killed a process");
    assert!(crashes > 0, "no scenario injected a fault");
}

/// Drives a fault-free workload through any environment and returns the
/// final state index of every server — the environment-agnostic shape the
/// redesign exists to support.
fn final_states(env: &dyn Environment, machines: &[Dfsm], workload: &Workload) -> Vec<usize> {
    let config = GroupConfig::new().collect_timeout(Duration::from_secs(10));
    let mut group = env.spawn_group(machines, &config);
    group.apply_batch(workload.events());
    let reports = group.collect_reports().expect("fault-free run reports");
    group.shutdown();
    reports
        .iter()
        .map(|r| match r {
            MachineReport::State(s) => *s,
            other => panic!("fault-free server reported {other:?}"),
        })
        .collect()
}

/// Fault-free runs agree between the threaded and the simulated runtime:
/// same machines, same workload, same final states.
#[test]
fn os_and_sim_agree_on_fault_free_runs() {
    for seed in [7u64, 99, 4242] {
        let machines = fig1_machines();
        let workload = Seeded(seed).workload_over_machines(&machines, 60);
        let os = OsEnvironment::seeded(seed);
        let sim = Seeded(seed).sim().build();
        let on_os = final_states(&os, &machines, &workload);
        let on_sim = final_states(&sim, &machines, &workload);
        assert_eq!(on_os, on_sim, "seed {seed}: runtimes disagree");

        // Both must also match the in-process oracle executor.
        let mut system = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        system.apply_workload(&workload);
        let expected: Vec<usize> = (0..machines.len())
            .map(|i| system.oracle_state_of(i).index())
            .collect();
        assert_eq!(on_sim, expected, "seed {seed}: sim diverges from oracle");
    }
}
