//! Property tests pinning the bitset kernel to the element-scan reference.
//!
//! The hot paths (`Partition::le`/`meet`/`join`, `FaultGraph::add_machine`,
//! `close`, Algorithm 2) were rewritten over the `u64`-word block
//! representation in `fsm_fusion::fusion::bitset`; the pre-refactor
//! element-scan implementations are preserved verbatim in
//! `fsm_fusion::fusion::reference`.  These properties assert, on random
//! partitions and random machine families, that
//!
//! * `BitsetPartition` round-trips with `Partition` (canonical form intact),
//! * every optimized operation agrees with its element-scan twin,
//! * the full Algorithm 2 produces identical fusions through both paths.

use fsm_fusion::fusion::reference;
use fsm_fusion::fusion::{
    close, generate_fusion, BitsetPartition, ClosureKernel, FaultGraph, Partition,
};
use fsm_fusion::machines::{random_dfsm, RandomDfsmConfig};
use fsm_fusion::prelude::*;
use proptest::prelude::*;

/// Deterministic SplitMix64, so failures reproduce from the case inputs.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random partition of `n` elements into at most `max_blocks`
/// blocks.
fn random_partition(seed: u64, n: usize, max_blocks: usize) -> Partition {
    let mut state = seed;
    let assignment: Vec<usize> = (0..n)
        .map(|_| (splitmix(&mut state) as usize) % max_blocks)
        .collect();
    Partition::from_assignment(&assignment)
}

/// A small random machine pair over the shared binary alphabet, as used by
/// the theory property tests.
fn machine_family(seed: u64) -> Vec<Dfsm> {
    (0..2)
        .map(|i| {
            random_dfsm(
                &format!("M{i}"),
                &RandomDfsmConfig {
                    states: 2 + ((seed as usize + 3 * i) % 3),
                    alphabet: vec!["0".into(), "1".into()],
                    seed: seed.wrapping_add(i as u64 * 7919),
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Converting to bitset form and back is the identity, and both forms
    /// answer membership queries identically.
    #[test]
    fn bitset_roundtrips_with_partition(seed in 0u64..100_000, n in 1usize..200, blocks in 1usize..12) {
        let p = random_partition(seed, n, blocks);
        let bits = BitsetPartition::from_partition(&p);
        prop_assert_eq!(bits.to_partition(), p.clone());
        prop_assert_eq!(bits.len(), p.len());
        prop_assert_eq!(bits.num_blocks(), p.num_blocks());
        for x in 0..n {
            prop_assert_eq!(bits.block_of(x), p.block_of(x));
        }
        for b in 0..p.num_blocks() {
            prop_assert_eq!(bits.block_ones(b).collect::<Vec<_>>(), p.block(b));
            prop_assert_eq!(bits.block_size(b), p.block(b).len());
        }
    }

    /// `le` agrees across the optimized element pass, the pre-refactor scan
    /// and the word-level bitset kernel — on random pairs and on pairs that
    /// are comparable by construction.
    #[test]
    fn le_agrees_with_scan_and_bitset(seed in 0u64..100_000, n in 2usize..150, blocks in 1usize..10) {
        let p = random_partition(seed, n, blocks);
        let q = random_partition(seed ^ 0xABCD, n, blocks);
        let (bp, bq) = (p.to_bitset(), q.to_bitset());
        prop_assert_eq!(p.le(&q), reference::le_scan(&p, &q));
        prop_assert_eq!(p.le(&q), bp.le(&bq));
        prop_assert_eq!(q.le(&p), bq.le(&bp));
        prop_assert_eq!(p.incomparable(&q), bp.incomparable(&bq));
        // A genuine coarsening, so the `true` branch is exercised too.
        let coarser = p.merge_elements(0, n - 1);
        prop_assert!(coarser.le(&p));
        prop_assert!(reference::le_scan(&coarser, &p));
        prop_assert!(coarser.to_bitset().le(&bp));
        prop_assert_eq!(coarser.lt(&p), coarser.to_bitset().lt(&bp));
    }

    /// `meet` and `join` agree with the element-scan reference and with the
    /// bitset kernel, and canonical forms are preserved.
    #[test]
    fn meet_join_agree_with_scan_and_bitset(seed in 0u64..100_000, n in 1usize..150, blocks in 1usize..10) {
        let p = random_partition(seed, n, blocks);
        let q = random_partition(seed ^ 0x5555, n, blocks);
        let meet = p.meet(&q);
        let join = p.join(&q);
        prop_assert_eq!(meet.clone(), reference::meet_scan(&p, &q));
        prop_assert_eq!(join.clone(), reference::join_scan(&p, &q));
        let (bp, bq) = (p.to_bitset(), q.to_bitset());
        prop_assert_eq!(bp.meet(&bq).to_partition(), meet.clone());
        prop_assert_eq!(bp.join(&bq).to_partition(), join.clone());
        // Lattice laws as a sanity net.
        prop_assert!(meet.le(&p) && meet.le(&q));
        prop_assert!(p.le(&join) && q.le(&join));
    }

    /// The word-at-a-time fault-graph update produces exactly the same edge
    /// weights as the pre-refactor per-pair scan.
    #[test]
    fn fault_graph_add_machine_agrees_with_scan(seed in 0u64..100_000, n in 2usize..130, blocks in 1usize..9) {
        let machines: Vec<Partition> = (0..3)
            .map(|i| random_partition(seed.wrapping_add(i * 101), n, blocks))
            .collect();
        let mut word = FaultGraph::new(n);
        let mut scan = FaultGraph::new(n);
        for p in &machines {
            word.add_machine(p);
            scan.add_machine_scan(p);
        }
        prop_assert_eq!(word.num_machines(), scan.num_machines());
        prop_assert_eq!(word.dmin(), scan.dmin());
        prop_assert_eq!(word.weight_histogram(), scan.weight_histogram());
        for i in 0..n {
            for j in (i + 1)..n {
                prop_assert_eq!(word.weight(i, j), scan.weight(i, j));
            }
        }
    }

    /// The flat-array closure kernel computes the same closed partitions as
    /// the pre-refactor `HashMap` fixpoint, on random machine products.
    #[test]
    fn close_agrees_with_close_scan(seed in 0u64..50_000, merges in 0usize..4) {
        let machines = machine_family(seed);
        let product = ReachableProduct::new(&machines).unwrap();
        let top = product.top();
        let n = top.size();
        let mut p = Partition::singletons(n);
        let mut state = seed;
        for _ in 0..merges {
            let x = (splitmix(&mut state) as usize) % n;
            let y = (splitmix(&mut state) as usize) % n;
            p = p.merge_elements(x, y);
        }
        let fast = close(top, &p).unwrap();
        let slow = reference::close_scan(top, &p).unwrap();
        prop_assert_eq!(fast.clone(), slow);
        // close_merged through a reusable kernel matches merge + close.
        let kernel = ClosureKernel::new(top);
        for b1 in 0..fast.num_blocks() {
            for b2 in (b1 + 1)..fast.num_blocks() {
                prop_assert_eq!(
                    kernel.close_merged(&fast, b1, b2).unwrap(),
                    reference::close_scan(top, &fast.merge_blocks(b1, b2)).unwrap()
                );
            }
        }
    }

    /// Algorithm 2 end to end: the bitset-kernel implementation generates
    /// exactly the same fusion machines as the pre-refactor element-scan
    /// implementation.
    #[test]
    fn generate_fusion_agrees_with_scan(seed in 0u64..50_000, f in 1usize..3) {
        let machines = machine_family(seed);
        let product = ReachableProduct::new(&machines).unwrap();
        let originals = fsm_fusion::fusion::projection_partitions(&product);
        let fast = generate_fusion(product.top(), &originals, f).unwrap();
        let slow = reference::generate_fusion_scan(product.top(), &originals, f).unwrap();
        prop_assert_eq!(fast.partitions, slow.partitions);
        prop_assert_eq!(fast.stats.initial_dmin, slow.stats.initial_dmin);
        prop_assert_eq!(fast.stats.final_dmin, slow.stats.final_dmin);
        prop_assert_eq!(fast.stats.outer_iterations, slow.stats.outer_iterations);
        prop_assert_eq!(fast.stats.candidates_examined, slow.stats.candidates_examined);
    }
}
