//! Cross-crate integration tests of the simulated distributed system:
//! fault plans, the threaded runner, the batched ingestion front-end, the
//! sensor-network scenario and the replication baseline, all wired against
//! the fusion core.

use std::time::Duration;

use fsm_fusion::distsys::{
    DistsysError, FaultPlan, ParallelServerGroup, SensorBackupMode, SensorNetwork, ServerStatus,
};
use fsm_fusion::fusion::projection_partitions;
use fsm_fusion::machines::{mesi, table1_rows, tcp, zero_counter_mod3};
use fsm_fusion::prelude::*;
use proptest::prelude::*;

#[test]
fn randomized_fault_plans_stay_recoverable_within_budget() {
    // Over many seeds: random workload + random crash schedule within the
    // budget is always recoverable, and recovery matches the oracle.
    let machines = vec![mesi(), zero_counter_mod3()];
    for seed in 0..20u64 {
        let mut system = FusedSystem::new(&machines, 2, FaultModel::Crash).unwrap();
        let workload = Workload::uniform_over_machines(&machines, 100, seed);
        let plan = FaultPlan::random_crashes(system.num_servers(), 2, workload.len(), seed);
        let injected = plan.execute(&mut system, &workload);
        assert_eq!(injected, 2);
        let outcome = system.recover().unwrap();
        assert!(outcome.matches_oracle, "seed {seed}");
        assert!(system.consistent_with_oracle(), "seed {seed}");
        assert_eq!(system.metrics().crashes_injected, 2);
    }
}

#[test]
fn repeated_fault_and_recovery_cycles() {
    // The system keeps working across several fault / recover cycles, with
    // events flowing in between.
    let machines = table1_rows()[1].machines.clone(); // parity/toggle/pattern/MESI row (small top)
    let mut system = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    for round in 0..10usize {
        let w = Workload::uniform_over_machines(&machines, 50, round as u64);
        system.apply_workload(&w);
        let victim = round % system.num_servers();
        system.crash(victim).unwrap();
        let outcome = system.recover().unwrap();
        assert!(outcome.matches_oracle, "round {round}");
        assert!(system.consistent_with_oracle(), "round {round}");
        assert!(system
            .servers()
            .iter()
            .all(|s| s.status() == ServerStatus::Healthy));
    }
    assert_eq!(system.metrics().recoveries, 10);
    assert_eq!(system.metrics().crashes_injected, 10);
    assert_eq!(system.metrics().events_processed, 500);
}

#[test]
fn parallel_group_agrees_with_sequential_system() {
    // Run the same machines + workload through the threaded runner and the
    // sequential FusedSystem; their states must agree event-for-event at the
    // end.
    let machines = vec![mesi(), tcp(), zero_counter_mod3()];
    let mut sequential = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    let mut all_machines = machines.clone();
    all_machines.extend(sequential.fusion().machines.iter().cloned());
    let parallel = ParallelServerGroup::spawn(&all_machines);

    let workload = Workload::uniform_over_machines(&machines, 400, 99);
    sequential.apply_workload(&workload);
    parallel.apply_all(workload.iter());

    let reports = parallel.collect_reports().expect("all servers report");
    for (i, report) in reports.iter().enumerate() {
        match report {
            MachineReport::State(s) => {
                assert_eq!(
                    *s,
                    sequential.server(i).current_state().index(),
                    "server {i}"
                )
            }
            MachineReport::Crashed => panic!("no faults were injected"),
        }
    }
    let servers = parallel.shutdown();
    assert_eq!(servers.len(), sequential.num_servers());
}

#[test]
fn parallel_recovery_with_engine_matches_oracle() {
    let machines = vec![zero_counter_mod3(), mesi()];
    let reference = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    let mut all_machines = machines.clone();
    all_machines.extend(reference.fusion().machines.iter().cloned());
    let group = ParallelServerGroup::spawn(&all_machines);

    let workload = Workload::uniform_over_machines(&machines, 200, 5);
    group.apply_all(workload.iter());
    group.crash(1);

    // Build the recovery engine exactly as FusedSystem does, but drive it by
    // hand: translate machine states to partition blocks via the product.
    let product = reference.product();
    let partitions = projection_partitions(product);
    let mut engine = RecoveryEngine::new(product.size());
    // Machine-state → block translation tables for the originals.
    let mut block_of_state: Vec<Vec<usize>> = Vec::new();
    for (i, p) in partitions.iter().enumerate() {
        engine
            .add_machine(machines[i].name().to_string(), p.clone())
            .unwrap();
        let mut table = vec![0usize; machines[i].size()];
        for t in 0..product.size() {
            table[product
                .component_state(fsm_fusion::dfsm::StateId(t), i)
                .index()] = p.block_of(t);
        }
        block_of_state.push(table);
    }
    for (i, p) in reference.fusion().partitions.iter().enumerate() {
        engine.add_machine(format!("F{i}"), p.clone()).unwrap();
        block_of_state.push((0..p.num_blocks()).collect());
    }

    let reports: Vec<MachineReport> = group
        .collect_reports()
        .expect("all servers report")
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            MachineReport::State(s) => MachineReport::State(block_of_state[i][s]),
            MachineReport::Crashed => MachineReport::Crashed,
        })
        .collect();
    let recovery = engine.recover(&reports).unwrap();

    // Ground truth by replaying the workload on the crashed machine.
    let expected = machines[1].run(workload.iter());
    // Translate the recovered block back to a machine state.
    let recovered_block = recovery.machine_states[1];
    let recovered_state = (0..machines[1].size())
        .find(|&s| block_of_state[1][s] == recovered_block)
        .unwrap();
    assert_eq!(recovered_state, expected.index());
    let _ = group.shutdown();
}

#[test]
fn sensor_network_scales_and_recovers() {
    let mut net = SensorNetwork::new(50, SensorBackupMode::Analytic).unwrap();
    net.observe_randomly(5_000, 77).unwrap();
    assert!(net.invariant_holds());
    let truth: Vec<usize> = (0..50).map(|i| net.sensor_state(i).unwrap()).collect();
    net.crash_sensor(13).unwrap();
    let recovered = net.recover().unwrap();
    assert_eq!(recovered, truth);
}

#[test]
fn replication_and_fusion_agree_on_byzantine_recovery() {
    let machines = vec![zero_counter_mod3(), mesi()];
    let mut fused = FusedSystem::new(&machines, 1, FaultModel::Byzantine).unwrap();
    let mut replicated = ReplicatedSystem::new(&machines, 1, FaultModel::Byzantine).unwrap();
    let workload = Workload::uniform_over_machines(&machines, 150, 21);
    fused.apply_workload(&workload);
    replicated.apply_workload(&workload);

    // The MESI machine lies in both systems.
    let truth = fused.server(1).current_state();
    let lie = fsm_fusion::dfsm::StateId((truth.index() + 1) % machines[1].size());
    fused.corrupt(1, lie).unwrap();
    replicated.corrupt(1, 0, lie).unwrap();

    let fused_outcome = fused.recover().unwrap();
    let replicated_states = replicated.recover().unwrap();
    assert!(fused_outcome.matches_oracle);
    assert_eq!(fused.server(1).current_state(), truth);
    assert_eq!(replicated_states[1], truth);
    // Fusion spent far less backup state than 2f replication.
    assert!(fused.fusion_state_space() <= replicated.backup_state_space());
}

/// Drives `workload` through a batched [`IngestPipeline`] on `env`'s group:
/// round-robin pushes across `clients` queues, a pump after every push, an
/// optional kill before event `at`, and a final drain.  Returns the partial
/// reports.  The retry base is an hour so no rejoin probe can fire mid-run
/// (the reference's victim stays dead; so must the pipeline's).
fn batched_reports(
    env: &dyn Environment,
    machines: &[Dfsm],
    workload: &Workload,
    clients: usize,
    batch_max: usize,
    kill: Option<(usize, usize)>,
) -> Vec<Option<MachineReport>> {
    let mut group = env.spawn_group(machines, &GroupConfig::new());
    let config = IngestConfig::new()
        .batch_max(batch_max)
        .retry_base(Duration::from_secs(3600))
        .divert_cap(workload.len());
    let mut pipeline = IngestPipeline::new(clients, machines.len(), &config);
    for (j, event) in workload.iter().enumerate() {
        if let Some((victim, at)) = kill {
            if j == at {
                pipeline.kill_server(group.as_mut(), victim, env.now());
            }
        }
        pipeline.push(group.as_mut(), j % clients, event.clone(), env.now());
        pipeline.pump(group.as_mut(), env.now());
    }
    pipeline.drain(group.as_mut(), env.now());
    group.try_collect_reports()
}

/// The per-event reference the pipeline must be indistinguishable from:
/// broadcast each event individually, killing the same victim at the same
/// point in the stream.
fn per_event_reports(
    env: &dyn Environment,
    machines: &[Dfsm],
    workload: &Workload,
    kill: Option<(usize, usize)>,
) -> Vec<Option<MachineReport>> {
    let mut group = env.spawn_group(machines, &GroupConfig::new());
    for (j, event) in workload.iter().enumerate() {
        if let Some((victim, at)) = kill {
            if j == at {
                group.kill_process(victim);
            }
        }
        group.apply_event(event);
    }
    group.try_collect_reports()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole equivalence: under any client count, batch size and
    /// kill schedule, batched ingestion lands every server in exactly the
    /// state the per-event reference produces — on the threaded backend and
    /// on the simulator (where the seeded run is additionally pinned
    /// bit-identical across replays).
    #[test]
    fn batched_ingest_matches_per_event_reference(
        seed in 0u64..10_000,
        clients in 1usize..5,
        batch_max in 1usize..64,
        kill_pick in 0usize..9,
    ) {
        let net = SensorNetwork::new(3, SensorBackupMode::Analytic).unwrap();
        let machines = net.serving_machines();
        let workload = net.random_workload(90, seed);
        // 0 = fault-free; otherwise kill server (pick-1)%4 at event pick*9.
        let kill = (kill_pick > 0)
            .then(|| ((kill_pick - 1) % machines.len(), kill_pick * 9));

        // Threaded backend.
        let os = OsEnvironment::seeded(seed);
        let batched = batched_reports(&os, &machines, &workload, clients, batch_max, kill);
        let reference = per_event_reports(&os, &machines, &workload, kill);
        prop_assert_eq!(&batched, &reference);

        // Simulated backend under report-drop chaos, twice with the same
        // seed: byte-identical across replays.  The batched and per-event
        // runs send different message counts, so they consume the chaos
        // RNG differently — drops are only comparable run-to-run, not
        // batched-to-reference.
        let sim_run = || {
            let env = Seeded(seed).sim().drop_probability(0.1).build();
            let reports = batched_reports(&env, &machines, &workload, clients, batch_max, kill);
            (reports, env.trace_hash())
        };
        let (sim_batched, hash_a) = sim_run();
        let (sim_again, hash_b) = sim_run();
        prop_assert_eq!(&sim_batched, &sim_again);
        prop_assert_eq!(hash_a, hash_b);

        // Equivalence to the per-event reference needs a lossless reply
        // path (delivery delays stay on); a dropped reply legitimately
        // degrades that server's report to None, by design.
        let quiet_batched = {
            let env = Seeded(seed).sim().build();
            batched_reports(&env, &machines, &workload, clients, batch_max, kill)
        };
        let quiet_reference = {
            let env = Seeded(seed).sim().build();
            per_event_reports(&env, &machines, &workload, kill)
        };
        prop_assert_eq!(&quiet_batched, &quiet_reference);
        prop_assert_eq!(&quiet_batched, &batched);

        // Ground truth for the survivors: a bare replay of the workload.
        for (i, report) in batched.iter().enumerate() {
            if kill.map(|(victim, _)| victim) == Some(i) {
                prop_assert_eq!(report.clone(), None);
            } else {
                let expected = machines[i].run(workload.iter());
                prop_assert_eq!(
                    report.clone(),
                    Some(MachineReport::State(expected.index()))
                );
            }
        }
    }
}

/// The regression the ISSUE pins: when a queue is full *and* a server is
/// dead, `try_push` must surface the typed [`DistsysError::Backpressure`]
/// error — never silently drop the event — and the queued events must still
/// reach the healthy servers (the dead lane diverts) once the aggregator
/// catches up.
#[test]
fn full_queue_on_a_dead_server_is_typed_backpressure_not_a_silent_drop() {
    let net = SensorNetwork::new(3, SensorBackupMode::Analytic).unwrap();
    let machines = net.serving_machines();
    let env = OsEnvironment::seeded(5);
    let mut group = env.spawn_group(&machines, &GroupConfig::new());
    let config = IngestConfig::new()
        .queue_cap(2)
        .batch_max(8)
        .retry_base(Duration::from_secs(3600))
        .divert_cap(64);
    let mut pipeline = IngestPipeline::new(1, machines.len(), &config);

    // A dead server must not change the backpressure contract.
    pipeline.kill_server(group.as_mut(), 0, env.now());

    let events: Vec<_> = net.random_workload(3, 5).iter().cloned().collect();
    pipeline.try_push(0, events[0].clone(), env.now()).unwrap();
    pipeline.try_push(0, events[1].clone(), env.now()).unwrap();
    match pipeline.try_push(0, events[2].clone(), env.now()) {
        Err(DistsysError::Backpressure { client, capacity }) => {
            assert_eq!(client, 0);
            assert_eq!(capacity, 2);
        }
        other => panic!("expected the typed Backpressure error, got {other:?}"),
    }
    // Nothing was dropped to make room: both queued events are still there.
    assert_eq!(pipeline.queued(), 2);

    // Once the aggregator drains, the rejected event fits and everything
    // flows: healthy servers apply, the dead lane diverts.
    pipeline.pump(group.as_mut(), env.now());
    pipeline.try_push(0, events[2].clone(), env.now()).unwrap();
    pipeline.drain(group.as_mut(), env.now());
    assert_eq!(pipeline.queued(), 0);
    assert_eq!(pipeline.metrics().flushed_events, 3);
    assert_eq!(pipeline.diverted_len(0), 3);
    let reports = group.try_collect_reports();
    assert!(reports[0].is_none(), "the victim stays down");
    for (i, report) in reports.iter().enumerate().skip(1) {
        let expected = machines[i].run(events.iter());
        assert_eq!(
            report,
            &Some(MachineReport::State(expected.index())),
            "server {i}"
        );
    }
}

#[test]
fn workload_reproducibility_across_system_kinds() {
    // The same seeded workload drives identical state evolution in a fused
    // system, a replicated system, and bare machine replay.
    let machines = vec![mesi(), zero_counter_mod3()];
    let workload = Workload::uniform_over_machines(&machines, 300, 1234);
    let mut fused = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    let mut replicated = ReplicatedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    fused.apply_workload(&workload);
    replicated.apply_workload(&workload);
    for (i, m) in machines.iter().enumerate() {
        let expected = m.run(workload.iter());
        assert_eq!(fused.server(i).current_state(), expected);
        assert_eq!(replicated.primary_state(i), expected);
    }
}
