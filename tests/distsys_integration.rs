//! Cross-crate integration tests of the simulated distributed system:
//! fault plans, the threaded runner, the sensor-network scenario and the
//! replication baseline, all wired against the fusion core.

use fsm_fusion::distsys::{
    FaultPlan, ParallelServerGroup, SensorBackupMode, SensorNetwork, ServerStatus,
};
use fsm_fusion::fusion::projection_partitions;
use fsm_fusion::machines::{mesi, table1_rows, tcp, zero_counter_mod3};
use fsm_fusion::prelude::*;

#[test]
fn randomized_fault_plans_stay_recoverable_within_budget() {
    // Over many seeds: random workload + random crash schedule within the
    // budget is always recoverable, and recovery matches the oracle.
    let machines = vec![mesi(), zero_counter_mod3()];
    for seed in 0..20u64 {
        let mut system = FusedSystem::new(&machines, 2, FaultModel::Crash).unwrap();
        let workload = Workload::uniform_over_machines(&machines, 100, seed);
        let plan = FaultPlan::random_crashes(system.num_servers(), 2, workload.len(), seed);
        let injected = plan.execute(&mut system, &workload);
        assert_eq!(injected, 2);
        let outcome = system.recover().unwrap();
        assert!(outcome.matches_oracle, "seed {seed}");
        assert!(system.consistent_with_oracle(), "seed {seed}");
        assert_eq!(system.metrics().crashes_injected, 2);
    }
}

#[test]
fn repeated_fault_and_recovery_cycles() {
    // The system keeps working across several fault / recover cycles, with
    // events flowing in between.
    let machines = table1_rows()[1].machines.clone(); // parity/toggle/pattern/MESI row (small top)
    let mut system = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    for round in 0..10usize {
        let w = Workload::uniform_over_machines(&machines, 50, round as u64);
        system.apply_workload(&w);
        let victim = round % system.num_servers();
        system.crash(victim).unwrap();
        let outcome = system.recover().unwrap();
        assert!(outcome.matches_oracle, "round {round}");
        assert!(system.consistent_with_oracle(), "round {round}");
        assert!(system
            .servers()
            .iter()
            .all(|s| s.status() == ServerStatus::Healthy));
    }
    assert_eq!(system.metrics().recoveries, 10);
    assert_eq!(system.metrics().crashes_injected, 10);
    assert_eq!(system.metrics().events_processed, 500);
}

#[test]
fn parallel_group_agrees_with_sequential_system() {
    // Run the same machines + workload through the threaded runner and the
    // sequential FusedSystem; their states must agree event-for-event at the
    // end.
    let machines = vec![mesi(), tcp(), zero_counter_mod3()];
    let mut sequential = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    let mut all_machines = machines.clone();
    all_machines.extend(sequential.fusion().machines.iter().cloned());
    let parallel = ParallelServerGroup::spawn(&all_machines);

    let workload = Workload::uniform_over_machines(&machines, 400, 99);
    sequential.apply_workload(&workload);
    parallel.apply_all(workload.iter());

    let reports = parallel.collect_reports().expect("all servers report");
    for (i, report) in reports.iter().enumerate() {
        match report {
            MachineReport::State(s) => {
                assert_eq!(
                    *s,
                    sequential.server(i).current_state().index(),
                    "server {i}"
                )
            }
            MachineReport::Crashed => panic!("no faults were injected"),
        }
    }
    let servers = parallel.shutdown();
    assert_eq!(servers.len(), sequential.num_servers());
}

#[test]
fn parallel_recovery_with_engine_matches_oracle() {
    let machines = vec![zero_counter_mod3(), mesi()];
    let reference = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    let mut all_machines = machines.clone();
    all_machines.extend(reference.fusion().machines.iter().cloned());
    let group = ParallelServerGroup::spawn(&all_machines);

    let workload = Workload::uniform_over_machines(&machines, 200, 5);
    group.apply_all(workload.iter());
    group.crash(1);

    // Build the recovery engine exactly as FusedSystem does, but drive it by
    // hand: translate machine states to partition blocks via the product.
    let product = reference.product();
    let partitions = projection_partitions(product);
    let mut engine = RecoveryEngine::new(product.size());
    // Machine-state → block translation tables for the originals.
    let mut block_of_state: Vec<Vec<usize>> = Vec::new();
    for (i, p) in partitions.iter().enumerate() {
        engine
            .add_machine(machines[i].name().to_string(), p.clone())
            .unwrap();
        let mut table = vec![0usize; machines[i].size()];
        for t in 0..product.size() {
            table[product
                .component_state(fsm_fusion::dfsm::StateId(t), i)
                .index()] = p.block_of(t);
        }
        block_of_state.push(table);
    }
    for (i, p) in reference.fusion().partitions.iter().enumerate() {
        engine.add_machine(format!("F{i}"), p.clone()).unwrap();
        block_of_state.push((0..p.num_blocks()).collect());
    }

    let reports: Vec<MachineReport> = group
        .collect_reports()
        .expect("all servers report")
        .into_iter()
        .enumerate()
        .map(|(i, r)| match r {
            MachineReport::State(s) => MachineReport::State(block_of_state[i][s]),
            MachineReport::Crashed => MachineReport::Crashed,
        })
        .collect();
    let recovery = engine.recover(&reports).unwrap();

    // Ground truth by replaying the workload on the crashed machine.
    let expected = machines[1].run(workload.iter());
    // Translate the recovered block back to a machine state.
    let recovered_block = recovery.machine_states[1];
    let recovered_state = (0..machines[1].size())
        .find(|&s| block_of_state[1][s] == recovered_block)
        .unwrap();
    assert_eq!(recovered_state, expected.index());
    let _ = group.shutdown();
}

#[test]
fn sensor_network_scales_and_recovers() {
    let mut net = SensorNetwork::new(50, SensorBackupMode::Analytic).unwrap();
    net.observe_randomly(5_000, 77).unwrap();
    assert!(net.invariant_holds());
    let truth: Vec<usize> = (0..50).map(|i| net.sensor_state(i).unwrap()).collect();
    net.crash_sensor(13).unwrap();
    let recovered = net.recover().unwrap();
    assert_eq!(recovered, truth);
}

#[test]
fn replication_and_fusion_agree_on_byzantine_recovery() {
    let machines = vec![zero_counter_mod3(), mesi()];
    let mut fused = FusedSystem::new(&machines, 1, FaultModel::Byzantine).unwrap();
    let mut replicated = ReplicatedSystem::new(&machines, 1, FaultModel::Byzantine).unwrap();
    let workload = Workload::uniform_over_machines(&machines, 150, 21);
    fused.apply_workload(&workload);
    replicated.apply_workload(&workload);

    // The MESI machine lies in both systems.
    let truth = fused.server(1).current_state();
    let lie = fsm_fusion::dfsm::StateId((truth.index() + 1) % machines[1].size());
    fused.corrupt(1, lie).unwrap();
    replicated.corrupt(1, 0, lie).unwrap();

    let fused_outcome = fused.recover().unwrap();
    let replicated_states = replicated.recover().unwrap();
    assert!(fused_outcome.matches_oracle);
    assert_eq!(fused.server(1).current_state(), truth);
    assert_eq!(replicated_states[1], truth);
    // Fusion spent far less backup state than 2f replication.
    assert!(fused.fusion_state_space() <= replicated.backup_state_space());
}

#[test]
fn workload_reproducibility_across_system_kinds() {
    // The same seeded workload drives identical state evolution in a fused
    // system, a replicated system, and bare machine replay.
    let machines = vec![mesi(), zero_counter_mod3()];
    let workload = Workload::uniform_over_machines(&machines, 300, 1234);
    let mut fused = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    let mut replicated = ReplicatedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    fused.apply_workload(&workload);
    replicated.apply_workload(&workload);
    for (i, m) in machines.iter().enumerate() {
        let expected = m.run(workload.iter());
        assert_eq!(fused.server(i).current_state(), expected);
        assert_eq!(replicated.primary_state(i), expected);
    }
}
