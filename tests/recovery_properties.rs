//! Crash-recovery invariants of the durable server, as properties.
//!
//! The durability contract is *append-before-ack*: an event is only
//! acknowledged once its WAL frame is on storage, so a crash at any moment
//! loses nothing that was acked.  This suite pins the three load-bearing
//! consequences from outside the crate:
//!
//! * **Resume equivalence**: crash at any point, recover, resume — the
//!   final machine state, acked sequence and durable artifacts are
//!   identical to a server that never crashed.
//! * **Snapshot equivalence**: recovering through snapshots + a log
//!   suffix lands on exactly the state a pure full-log replay produces,
//!   for every snapshot cadence.
//! * **Torn-tail tolerance**: a partially-written final WAL frame (the
//!   crash landed mid-append) is detected by its checksum, dropped, and
//!   the log truncated clean — recovery keeps every *acked* event and the
//!   server can immediately append again.

use fsm_fusion::distsys::wal;
use fsm_fusion::machines::mod_counter;
use fsm_fusion::prelude::*;
use proptest::prelude::*;

/// Deterministic bit stream for event generation: the shim's strategies
/// draw scalars, so workloads are derived from a drawn seed.
fn events_from_seed(seed: u64, len: usize) -> Vec<Event> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            Event::new(if (z ^ (z >> 31)) & 1 == 0 { "0" } else { "1" })
        })
        .collect()
}

/// Byte length of a durable server's WAL on its store.
fn wal_len(store: &SharedStore, id: &str) -> usize {
    store
        .lock()
        .expect("store lock")
        .read(&wal::wal_name(id))
        .expect("wal read")
        .map_or(0, |bytes| bytes.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash anywhere, recover, resume: bit-identical to never crashing.
    #[test]
    fn crash_recover_resume_matches_uninterrupted(
        seed in 0u64..1_000_000,
        len in 1usize..80,
        cut_frac in 0usize..=100,
        snapshot_every in 1u64..20,
        modulus in 2usize..6,
    ) {
        let machine = mod_counter("C", modulus, "0", &["0", "1"]);
        let events = events_from_seed(seed, len);
        let cut = cut_frac * events.len() / 100;
        let config = DurabilityConfig::new().snapshot_every(snapshot_every);

        // The twin that never crashes.
        let u_store = shared(MemStore::new());
        let mut u = DurableServer::fresh(machine.clone(), u_store.clone(), "srv", &config).unwrap();
        for e in &events {
            u.apply(e).unwrap();
        }

        // Crash at `cut` (drop, no clean shutdown — append-before-ack is
        // the only durability mechanism), recover, resume the suffix.
        let store = shared(MemStore::new());
        let mut s = DurableServer::fresh(machine.clone(), store.clone(), "srv", &config).unwrap();
        for e in &events[..cut] {
            s.apply(e).unwrap();
        }
        drop(s);
        let (mut s, stats) =
            DurableServer::recover(machine.clone(), store.clone(), "srv", &config).unwrap();
        prop_assert_eq!(stats.acked_seq, cut as u64);
        prop_assert_eq!(stats.state, machine.run(events[..cut].iter()));
        for e in &events[cut..] {
            s.apply(e).unwrap();
        }

        prop_assert_eq!(s.acked_seq(), u.acked_seq());
        prop_assert_eq!(s.server().current_state(), u.server().current_state());
        prop_assert_eq!(s.server().current_state(), machine.run(events.iter()));

        // The durable artifacts agree too: a fresh recovery from each
        // store lands on the same sequence and state.
        let (_, a) = DurableServer::recover(machine.clone(), store, "srv", &config).unwrap();
        let (_, b) = DurableServer::recover(machine, u_store, "srv", &config).unwrap();
        prop_assert_eq!(a.acked_seq, b.acked_seq);
        prop_assert_eq!(a.state, b.state);
    }

    /// Snapshot + log-suffix recovery ≡ pure full-log replay, for every
    /// snapshot cadence.
    #[test]
    fn snapshot_replay_matches_full_log_replay(
        seed in 0u64..1_000_000,
        len in 1usize..80,
        snapshot_every in 1u64..20,
        modulus in 2usize..6,
    ) {
        let machine = mod_counter("C", modulus, "0", &["0", "1"]);
        let events = events_from_seed(seed, len);
        let snap_cfg = DurabilityConfig::new().snapshot_every(snapshot_every);
        let log_cfg = DurabilityConfig::new().snapshot_every(1 << 40);

        let snap_store = shared(MemStore::new());
        let log_store = shared(MemStore::new());
        let mut via_snap =
            DurableServer::fresh(machine.clone(), snap_store.clone(), "srv", &snap_cfg).unwrap();
        let mut via_log =
            DurableServer::fresh(machine.clone(), log_store.clone(), "srv", &log_cfg).unwrap();
        for e in &events {
            via_snap.apply(e).unwrap();
            via_log.apply(e).unwrap();
        }
        drop(via_snap);
        drop(via_log);

        let (_, snap) = DurableServer::recover(machine.clone(), snap_store, "srv", &snap_cfg).unwrap();
        let (_, log) = DurableServer::recover(machine.clone(), log_store, "srv", &log_cfg).unwrap();

        // The pure-log twin really did replay everything frame by frame.
        prop_assert_eq!(log.snapshot_seq, 0);
        prop_assert_eq!(log.frames_replayed, events.len());
        // And the snapshotting twin skipped at least the snapshotted
        // prefix yet landed on the identical result.
        prop_assert!(snap.frames_replayed <= log.frames_replayed);
        prop_assert_eq!(snap.acked_seq, log.acked_seq);
        prop_assert_eq!(snap.state, log.state);
        prop_assert_eq!(snap.state, machine.run(events.iter()));
    }

    /// A torn final WAL frame — the crash landed mid-append — is dropped
    /// by checksum, every acked event survives, and the truncated log
    /// accepts new appends immediately.
    #[test]
    fn recovery_drops_a_torn_final_frame(
        seed in 0u64..1_000_000,
        len in 2usize..60,
        tear in 0u64..10_000,
        modulus in 2usize..6,
    ) {
        let machine = mod_counter("C", modulus, "0", &["0", "1"]);
        let events = events_from_seed(seed, len);
        // Pure log, so the final frame's byte range is observable.
        let config = DurabilityConfig::new().snapshot_every(1 << 40);

        let store = shared(MemStore::new());
        let mut s = DurableServer::fresh(machine.clone(), store.clone(), "srv", &config).unwrap();
        for e in &events[..events.len() - 1] {
            s.apply(e).unwrap();
        }
        let before = wal_len(&store, "srv");
        s.apply(&events[events.len() - 1]).unwrap();
        let after = wal_len(&store, "srv");
        prop_assert!(after > before);
        drop(s);

        // Tear the final frame: cut strictly inside (before, after), so a
        // nonzero partial frame remains on storage.
        let cut = before + 1 + (tear as usize) % (after - before - 1).max(1);
        wal::truncate(&store, &wal::wal_name("srv"), cut.min(after - 1)).unwrap();

        let (mut s, stats) =
            DurableServer::recover(machine.clone(), store.clone(), "srv", &config).unwrap();
        prop_assert!(stats.torn_tail_bytes > 0);
        prop_assert_eq!(stats.acked_seq, (events.len() - 1) as u64);
        prop_assert_eq!(stats.state, machine.run(events[..events.len() - 1].iter()));

        // Recovery truncated the torn bytes away: the next append goes
        // through and lands the server exactly where the full run would.
        s.apply(&events[events.len() - 1]).unwrap();
        prop_assert_eq!(s.acked_seq(), events.len() as u64);
        prop_assert_eq!(s.server().current_state(), machine.run(events.iter()));
    }
}
