//! Property tests pinning the sparse fault-graph representation to the
//! dense striped one.
//!
//! `FaultGraph` now carries its edge weights in one of two representations
//! (`WeightRepr`): the dense flat upper-triangular matrix with per-stripe
//! histograms, or the sparse deficit rows that store only the pairs some
//! machine still separates incompletely.  `FaultGraph::from_partitions`
//! picks between them from a density estimate.  These properties assert,
//! on random machine families over random tops, that every observable the
//! fusion layer consumes — `dmin`, the weakest-edge set, weight queries,
//! histograms, tolerance bounds, and `speculate` — is bit-identical across
//! both representations and equal to the preserved element-scan reference,
//! including across the automatic density crossover.

use fsm_fusion::fusion::fault_graph::{SPARSE_DENSITY_DIV, SPARSE_MIN_EDGES};
use fsm_fusion::fusion::{FaultGraph, Partition, WeightRepr};
use proptest::prelude::*;

/// Deterministic SplitMix64, so failures reproduce from the case inputs.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random partition of `n` elements into at most `max_blocks`
/// blocks.
fn random_partition(seed: u64, n: usize, max_blocks: usize) -> Partition {
    let mut state = seed;
    let assignment: Vec<usize> = (0..n)
        .map(|_| (splitmix(&mut state) as usize) % max_blocks)
        .collect();
    Partition::from_assignment(&assignment)
}

/// Every observable of two fault graphs must agree.
fn assert_graphs_identical(
    a: &FaultGraph,
    b: &FaultGraph,
) -> std::result::Result<(), TestCaseError> {
    let n = a.num_states();
    prop_assert_eq!(n, b.num_states());
    prop_assert_eq!(a.num_edges(), b.num_edges());
    prop_assert_eq!(a.num_machines(), b.num_machines());
    prop_assert_eq!(a.dmin(), b.dmin());
    prop_assert_eq!(a.dmin(), a.dmin_scan());
    prop_assert_eq!(a.weakest_edges(), b.weakest_edges());
    prop_assert_eq!(a.weakest_edges(), a.weakest_edges_scan());
    prop_assert_eq!(a.weight_histogram(), b.weight_histogram());
    prop_assert_eq!(a.max_crash_faults(), b.max_crash_faults());
    prop_assert_eq!(a.max_byzantine_faults(), b.max_byzantine_faults());
    for f in 0..4 {
        prop_assert_eq!(a.tolerates_crash_faults(f), b.tolerates_crash_faults(f));
        prop_assert_eq!(
            a.tolerates_byzantine_faults(f),
            b.tolerates_byzantine_faults(f)
        );
    }
    for i in 0..n {
        for j in (i + 1)..n {
            prop_assert_eq!(a.weight(i, j), b.weight(i, j));
        }
    }
    for w in 0..=(a.num_machines() as u32) {
        prop_assert_eq!(a.edges_with_weight(w), b.edges_with_weight(w));
        prop_assert_eq!(
            a.edges_with_weight_at_most(w),
            b.edges_with_weight_at_most(w)
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incrementally grown graphs agree across representations after every
    /// single `add_machine`, and candidate probes (`speculate`,
    /// `addition_increases_dmin`) answer identically throughout.
    #[test]
    fn sparse_and_dense_graphs_agree_while_growing(
        seed in 0u64..100_000,
        n in 1usize..80,
        blocks in 1usize..8,
        machines in 1usize..6,
    ) {
        let mut dense = FaultGraph::with_representation(n, WeightRepr::Dense);
        let mut sparse = FaultGraph::with_representation(n, WeightRepr::Sparse);
        prop_assert_eq!(dense.representation(), WeightRepr::Dense);
        prop_assert_eq!(sparse.representation(), WeightRepr::Sparse);
        for m in 0..machines {
            let p = random_partition(seed.wrapping_add(m as u64 * 101), n, blocks);
            dense.add_machine(&p);
            sparse.add_machine(&p);
            assert_graphs_identical(&dense, &sparse)?;

            let candidate = random_partition(seed ^ ((m as u64) << 9), n, blocks);
            prop_assert_eq!(dense.speculate(&candidate), sparse.speculate(&candidate));
            prop_assert_eq!(
                dense.addition_increases_dmin(&candidate),
                sparse.addition_increases_dmin(&candidate)
            );
            prop_assert_eq!(
                dense.addition_increases_dmin(&candidate),
                dense.addition_increases_dmin_scan(&candidate)
            );
        }
    }

    /// Bulk construction (`from_partitions_with`) equals the incremental
    /// path for both representations, and the auto-selected graph — on
    /// whichever side of the density crossover the family lands — matches
    /// both.
    #[test]
    fn bulk_auto_and_incremental_construction_agree(
        seed in 0u64..100_000,
        n in 1usize..80,
        blocks in 1usize..8,
        machines in 1usize..6,
    ) {
        let parts: Vec<Partition> = (0..machines)
            .map(|m| random_partition(seed.wrapping_add(m as u64 * 101), n, blocks))
            .collect();
        let mut incremental = FaultGraph::new(n);
        for p in &parts {
            incremental.add_machine(p);
        }
        let auto = FaultGraph::from_partitions(n, &parts);
        assert_graphs_identical(&incremental, &auto)?;
        for repr in [WeightRepr::Dense, WeightRepr::Sparse] {
            let bulk = FaultGraph::from_partitions_with(n, &parts, repr);
            prop_assert_eq!(bulk.representation(), repr);
            assert_graphs_identical(&incremental, &bulk)?;
        }
    }

    /// The density-estimate selection rule: sparse is chosen exactly when
    /// the graph is big enough to matter and the estimated stored entries
    /// are at most a `1/SPARSE_DENSITY_DIV` fraction of the edges.
    #[test]
    fn auto_selection_follows_the_density_estimate(
        edges in 1usize..1_000_000,
        est in 0u64..1_000_000,
    ) {
        let est = est as u128;
        // With the size gate disabled, the rule is purely the density test.
        let repr = WeightRepr::auto_for_estimate(edges, est, 0);
        let expect_sparse = est * SPARSE_DENSITY_DIV as u128 <= edges as u128;
        prop_assert_eq!(repr == WeightRepr::Sparse, expect_sparse);
        // Below the size gate, dense always wins.
        if edges < SPARSE_MIN_EDGES {
            prop_assert_eq!(
                WeightRepr::auto_for_estimate(edges, est, SPARSE_MIN_EDGES),
                WeightRepr::Dense
            );
        }
    }
}
