//! Property tests pinning the `FusionSession` API to the legacy free
//! functions, and the closure cache to bit-identical cached/cold runs.
//!
//! The session path owns state the free functions re-derive per call
//! (kernel, scratch, pool handle, closure + fault-graph cache), so the
//! properties here are the contract that lets the old entry points become
//! thin shims:
//!
//! * session `generate_fusion` — on every engine, with the cache warm or
//!   cold — returns exactly `generate_fusion_seq`'s partitions, machines
//!   and statistics (everything but wall-clock time), across repeated `f`
//!   sweeps on one session;
//! * session lattice walks equal the free-function lattice walks;
//! * every `ProductBuilder` strategy builds the identical product;
//! * the cache-hit counters behave deterministically: a repeated sweep is
//!   answered entirely from the cache (the `tests/alloc_free.rs`-style
//!   steady-state assertion), and the config precedence rules pin
//!   explicit > environment > auto-detect.

use fsm_fusion::fusion::{
    enumerate_lattice, generate_fusion_seq, projection_partitions, Engine, FusionConfig,
    FusionSession,
};
use fsm_fusion::machines::{random_dfsm, RandomDfsmConfig};
use fsm_fusion::prelude::*;
use proptest::prelude::*;

/// A small random machine pair over the shared binary alphabet, matching
/// the families the parallel/bitset property suites use.
fn machine_family(seed: u64) -> Vec<Dfsm> {
    (0..2)
        .map(|i| {
            random_dfsm(
                &format!("M{i}"),
                &RandomDfsmConfig {
                    states: 2 + ((seed as usize + 3 * i) % 3),
                    alphabet: vec!["0".into(), "1".into()],
                    seed: seed.wrapping_add(i as u64 * 7919),
                },
            )
        })
        .collect()
}

/// Asserts a session generation equals a cold sequential one in everything
/// but wall-clock time.
fn assert_same_generation(
    warm: &fsm_fusion::fusion::FusionGeneration,
    cold: &fsm_fusion::fusion::FusionGeneration,
    label: &str,
) {
    assert_eq!(warm.partitions, cold.partitions, "{label}");
    assert_eq!(warm.machine_sizes(), cold.machine_sizes(), "{label}");
    assert_eq!(warm.state_space(), cold.state_space(), "{label}");
    assert_eq!(warm.stats.initial_dmin, cold.stats.initial_dmin, "{label}");
    assert_eq!(warm.stats.final_dmin, cold.stats.final_dmin, "{label}");
    assert_eq!(
        warm.stats.outer_iterations, cold.stats.outer_iterations,
        "{label}"
    );
    assert_eq!(
        warm.stats.descent_steps, cold.stats.descent_steps,
        "{label}"
    );
    assert_eq!(
        warm.stats.candidates_examined, cold.stats.candidates_examined,
        "{label}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every engine's session path, swept over `f` twice on one session
    /// (cold cache, then warm cache), is bit-identical to the cold
    /// free-function path — reports, stats and partitions.
    #[test]
    fn session_sweeps_are_bit_identical_to_cold_runs(
        seed in 0u64..50_000,
        workers in 1usize..4,
    ) {
        let machines = machine_family(seed);
        let product = ReachableProduct::new(&machines).unwrap();
        let originals = projection_partitions(&product);
        for engine in [Engine::Sequential, Engine::Pooled] {
            let mut session = FusionConfig::new().engine(engine).workers(workers).build();
            for sweep in 0..2 {
                for f in 1..=3usize {
                    let cold = generate_fusion_seq(product.top(), &originals, f).unwrap();
                    let warm = session.generate_fusion(product.top(), &originals, f).unwrap();
                    assert_same_generation(&warm, &cold, &format!("{engine:?} sweep {sweep} f {f}"));
                }
            }
        }
    }

    /// The session's product tables are bit-identical to the reference
    /// construction for every strategy (states, names, transitions,
    /// projections — `find_tuple` included).
    #[test]
    fn session_products_match_the_reference_tables(seed in 0u64..50_000) {
        let machines = machine_family(seed);
        let reference = ReachableProduct::new_reference(&machines).unwrap();
        for strategy in [
            ProductStrategy::Auto,
            ProductStrategy::Packed,
            ProductStrategy::Parallel,
            ProductStrategy::Reference,
        ] {
            let session = FusionConfig::new().product(strategy).workers(2).build();
            let product = session.build_product(&machines).unwrap();
            assert_eq!(product.size(), reference.size(), "{strategy:?}");
            for t in 0..product.size() {
                let t = StateId(t);
                assert_eq!(product.tuple(t), reference.tuple(t), "{strategy:?}");
                assert_eq!(
                    product.top().state_name(t),
                    reference.top().state_name(t),
                    "{strategy:?}"
                );
            }
            for i in 0..product.arity() {
                assert_eq!(
                    product.projection_blocks(i),
                    reference.projection_blocks(i),
                    "{strategy:?}"
                );
            }
        }
    }

    /// Session lattice enumeration equals the free-function lattice, with
    /// the cache warm from a preceding generation over the same machine.
    #[test]
    fn session_lattices_match_free_functions(seed in 0u64..50_000) {
        let machines = machine_family(seed);
        let product = ReachableProduct::new(&machines).unwrap();
        let originals = projection_partitions(&product);
        let mut session = FusionConfig::new().engine(Engine::Sequential).build();
        // Warm the cache with a generation first — lattice closures must
        // coexist with descent closures in the same cache.
        session.generate_fusion(product.top(), &originals, 1).unwrap();
        let free = enumerate_lattice(product.top(), 500).unwrap();
        let warm = session.enumerate_lattice(product.top(), 500).unwrap();
        assert_eq!(warm.elements, free.elements);
        assert_eq!(warm.truncated, free.truncated);
    }
}

/// The `tests/alloc_free.rs`-style steady-state assertion, on the cache-hit
/// counters instead of the allocator: after one full `f` sweep warmed the
/// cache, an identical sweep must be answered **entirely** from the cache —
/// zero new misses, zero new insertions, zero new graph builds.
#[test]
fn repeated_sweep_is_answered_entirely_from_the_cache() {
    let machines = fig1_machines();
    let mut session = FusionConfig::new().engine(Engine::Sequential).build();
    let (product, _) = session.generate_fusion_for_machines(&machines, 1).unwrap();
    let originals = projection_partitions(&product);

    // Warm-up sweep (the f = 1 call above already warmed part of it).
    for f in 1..=3 {
        session
            .generate_fusion(product.top(), &originals, f)
            .unwrap();
    }
    let warm = session.cache_stats();
    assert!(warm.insertions > 0);
    assert!(warm.misses > 0);

    // Steady state: the identical sweep re-runs the identical descents.
    for f in 1..=3 {
        session
            .generate_fusion(product.top(), &originals, f)
            .unwrap();
    }
    let steady = session.cache_stats();
    assert_eq!(
        steady.misses, warm.misses,
        "steady-state sweep missed the cache"
    );
    assert_eq!(steady.insertions, warm.insertions);
    assert_eq!(steady.graph_misses, warm.graph_misses);
    assert!(
        steady.hits > warm.hits,
        "steady-state sweep did not hit the cache"
    );
    assert!(steady.graph_hits > warm.graph_hits);
    assert_eq!(steady.clears, warm.clears);
    // The default bound is far above this workload, and no delta ran:
    // nothing may have been remapped or evicted, in either sweep.
    assert_eq!(warm.remapped, 0);
    assert_eq!(warm.evicted, 0);
    assert_eq!(steady.remapped, 0);
    assert_eq!(steady.evicted, 0);
}

/// The delta counterpart of the steady-state assertion: after
/// `update_top(AddMachine)` remaps the cache, a fusion sweep over the
/// evolved `⊤` must *reuse* the remapped levels — the level lookups hit
/// without a single clear, and the remapped/evicted counters move only
/// when the delta runs, not during the sweeps.
#[test]
fn update_top_remaps_instead_of_clearing() {
    let machines = fig1_machines();
    let mut session = FusionConfig::new().engine(Engine::Sequential).build();
    session.install_top(&machines).unwrap();
    for f in 1..=2 {
        session.generate_top_fusion(f).unwrap();
    }
    let before = session.cache_stats();
    assert_eq!(before.remapped, 0);
    assert_eq!(before.clears, 0);

    let mut third = fig1_machines().remove(0);
    third = third.renamed("C");
    let delta_stats = session.update_top(TopDelta::AddMachine(third)).unwrap();
    let after_delta = session.cache_stats();
    assert_eq!(
        after_delta.remapped - before.remapped,
        delta_stats.closures_remapped,
        "session counter and UpdateStats disagree"
    );
    assert_eq!(
        after_delta.evicted - before.evicted,
        delta_stats.closures_evicted
    );
    assert!(after_delta.remapped > 0, "{after_delta}");
    assert_eq!(after_delta.clears, 0, "{after_delta}");

    // Sweeps over the evolved top leave the delta counters untouched.
    for f in 1..=2 {
        session.generate_top_fusion(f).unwrap();
    }
    let steady = session.cache_stats();
    assert_eq!(steady.remapped, after_delta.remapped);
    assert_eq!(steady.evicted, after_delta.evicted);
    assert_eq!(steady.clears, 0);
    assert!(
        steady.hits > after_delta.hits,
        "remapped cache was not reused: {steady}"
    );
}

/// Engine-config precedence regression: explicit > environment snapshot >
/// auto-detect, for both the worker count and the engine, via the pure
/// `from_env_values` resolution (no process-environment mutation).
#[test]
fn config_precedence_is_explicit_then_env_then_auto() {
    // Auto-detect floor: nothing configured → 1 worker, sequential.
    let auto = FusionConfig::new();
    assert_eq!(auto.resolved_workers(), 1);
    assert_eq!(auto.resolved_engine(), Engine::Sequential);

    // Environment beats auto-detect.
    let env = FusionConfig::from_env_values(None, Some("4"), None, None);
    assert_eq!(env.resolved_workers(), 4);
    assert_eq!(env.resolved_engine(), Engine::Pooled);

    // Explicit beats environment — for workers...
    let explicit = FusionConfig::from_env_values(None, Some("4"), None, None).workers(2);
    assert_eq!(explicit.resolved_workers(), 2);
    // ...and for the engine, even when the env variables disagree.
    let explicit = FusionConfig::from_env_values(Some("pooled"), Some("8"), None, None)
        .engine(Engine::Sequential);
    assert_eq!(explicit.resolved_engine(), Engine::Sequential);
    let session = explicit.build();
    assert_eq!(session.engine(), Engine::Sequential);

    // The env engine variable beats the worker-count auto-detection.
    let env = FusionConfig::from_env_values(Some("sequential"), Some("8"), None, None);
    assert_eq!(env.resolved_engine(), Engine::Sequential);
    assert_eq!(env.resolved_workers(), 8);
}

/// The legacy free functions and system constructors remain available and
/// agree with an explicitly configured session end to end (the "thin shim"
/// contract at the facade level).
#[test]
fn facade_shims_agree_with_sessions_end_to_end() {
    let machines = fig1_machines();
    let mut session = FusionConfig::new().engine(Engine::Sequential).build();

    let (product, via_session) = session.generate_fusion_for_machines(&machines, 1).unwrap();
    let (product_legacy, via_legacy) = generate_fusion_for_machines(&machines, 1).unwrap();
    assert_eq!(product.size(), product_legacy.size());
    assert_eq!(via_session.partitions, via_legacy.partitions);

    let mut legacy = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    let mut sessioned =
        FusedSystem::with_session(&machines, 1, FaultModel::Crash, &mut session).unwrap();
    let w = Workload::from_bits("0110100101");
    legacy.apply_workload(&w);
    sessioned.apply_workload(&w);
    legacy.crash(0).unwrap();
    sessioned.crash(0).unwrap();
    let a = legacy.recover().unwrap();
    let b = sessioned.recover().unwrap();
    assert!(a.matches_oracle && b.matches_oracle);
    assert_eq!(a.repaired, b.repaired);

    // And the session type is reachable through the prelude.
    let _: &FusionSession = &session;
    let stats: CacheStats = session.cache_stats();
    assert!(stats.hits + stats.misses > 0);
}
