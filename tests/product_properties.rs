//! Property tests pinning the packed reachable-product builders to the
//! preserved reference construction.
//!
//! `ReachableProduct` now interns states through packed mixed-radix `u64`
//! keys (dense table or key hash map) with flat pre-resolved successor
//! tables and optional frontier-chunked parallel expansion; the seed
//! tuple-keyed BFS is preserved as `ReachableProduct::new_reference`.  This
//! suite checks, for random machine families, that every observable of the
//! packed sequential and packed parallel builds — size, state names,
//! component tuples, the full transition table, `find_tuple` over the whole
//! (reachable or not) tuple space, and the projection blocks the fusion
//! layer consumes — is bit-identical to the reference build.

use fsm_fusion::machines::{random_dfsm, RandomDfsmConfig};
use fsm_fusion::prelude::*;
use proptest::prelude::*;

/// A small random machine family over a shared alphabet, with a mix of
/// per-machine alphabets so some machines ignore some union events.
fn machine_family(seed: u64, count: usize) -> Vec<Dfsm> {
    (0..count)
        .map(|i| {
            let alphabet: Vec<String> = if i % 2 == 0 {
                vec!["0".into(), "1".into()]
            } else {
                vec!["1".into(), "2".into()]
            };
            random_dfsm(
                &format!("M{i}"),
                &RandomDfsmConfig {
                    states: 2 + ((seed as usize + 5 * i) % 4),
                    alphabet,
                    seed: seed.wrapping_add(i as u64 * 7919),
                },
            )
        })
        .collect()
}

/// Every observable of two product constructions must agree.
fn assert_products_identical(
    a: &ReachableProduct,
    b: &ReachableProduct,
) -> std::result::Result<(), TestCaseError> {
    prop_assert_eq!(a.size(), b.size());
    prop_assert_eq!(a.arity(), b.arity());
    prop_assert_eq!(a.full_product_size(), b.full_product_size());
    let k = a.top().alphabet().len();
    prop_assert_eq!(k, b.top().alphabet().len());
    for t in 0..a.size() {
        let t = StateId(t);
        prop_assert_eq!(a.tuple(t), b.tuple(t));
        prop_assert_eq!(a.top().state_name(t), b.top().state_name(t));
        for e in 0..k {
            let e = fsm_fusion::dfsm::EventId(e);
            prop_assert_eq!(a.top().next(t, e), b.top().next(t, e));
        }
    }
    for i in 0..a.arity() {
        prop_assert_eq!(a.projection_blocks(i), b.projection_blocks(i));
    }
    Ok(())
}

/// `find_tuple` agreement over the whole full product (reachable or not),
/// enumerated via mixed-radix counting.
fn assert_find_tuple_sweep(
    a: &ReachableProduct,
    b: &ReachableProduct,
    machines: &[Dfsm],
) -> std::result::Result<(), TestCaseError> {
    let sizes: Vec<usize> = machines.iter().map(|m| m.size()).collect();
    let full: usize = sizes.iter().product();
    for mut code in 0..full {
        let tuple: Vec<StateId> = sizes
            .iter()
            .map(|&s| {
                let c = StateId(code % s);
                code /= s;
                c
            })
            .collect();
        prop_assert_eq!(a.find_tuple(&tuple), b.find_tuple(&tuple));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packed sequential and frontier-chunked parallel builds equal the
    /// reference build in every observable, including `find_tuple` over
    /// every tuple of the full product (reachable or not) and one
    /// out-of-range probe.
    #[test]
    fn packed_and_parallel_products_match_reference(
        seed in 0u64..100_000,
        count in 1usize..4,
        workers in 2usize..5,
    ) {
        let machines = machine_family(seed, count);
        let reference = ReachableProduct::new_reference(&machines).unwrap();
        let packed = ReachableProduct::with_workers(&machines, 1).unwrap();
        let parallel = ReachableProduct::with_workers(&machines, workers).unwrap();
        assert_products_identical(&reference, &packed)?;
        assert_products_identical(&reference, &parallel)?;

        // find_tuple agreement over the whole full product: enumerate every
        // combination via mixed-radix counting.
        let sizes: Vec<usize> = machines.iter().map(|m| m.size()).collect();
        let full: usize = sizes.iter().product();
        for mut code in 0..full {
            let tuple: Vec<StateId> = sizes
                .iter()
                .map(|&s| {
                    let c = StateId(code % s);
                    code /= s;
                    c
                })
                .collect();
            prop_assert_eq!(packed.find_tuple(&tuple), reference.find_tuple(&tuple));
            prop_assert_eq!(
                parallel.find_tuple(&tuple),
                reference.find_tuple(&tuple)
            );
        }
        // Out-of-range components are rejected, never aliased into a key.
        let mut bogus: Vec<StateId> = machines.iter().map(|m| StateId(m.size())).collect();
        prop_assert_eq!(packed.find_tuple(&bogus), None);
        bogus[0] = StateId(usize::MAX);
        prop_assert_eq!(packed.find_tuple(&bogus), None);
        // Wrong-arity tuples are rejected as well.
        prop_assert_eq!(packed.find_tuple(&[]), None);
    }

    /// The env-dispatching constructor agrees with the reference too (it
    /// routes through the packed builder whatever `FSM_FUSION_WORKERS`
    /// says), and the downstream fusion pipeline sees identical inputs:
    /// projection partitions built from packed and reference products are
    /// equal.
    /// The streaming builder — both with the roomy default budget and with
    /// a tiny one that forces the map interner and page spilling on larger
    /// products — equals the reference build in every observable.
    #[test]
    fn streaming_products_match_reference(
        seed in 0u64..100_000,
        count in 1usize..4,
    ) {
        let machines = machine_family(seed, count);
        let reference = ReachableProduct::new_reference(&machines).unwrap();
        let builder = ProductBuilder::new().strategy(ProductStrategy::Streaming);
        let (roomy, stats) = builder.build_with_stats(&machines).unwrap();
        prop_assert!(stats.streamed);
        assert_products_identical(&reference, &roomy)?;
        assert_find_tuple_sweep(&reference, &roomy, &machines)?;

        let (tiny, stats) = builder
            .clone()
            .mem_budget(64)
            .build_with_stats(&machines)
            .unwrap();
        prop_assert!(stats.streamed);
        prop_assert_eq!(stats.mem_budget, 64);
        assert_products_identical(&reference, &tiny)?;
        assert_find_tuple_sweep(&reference, &tiny, &machines)?;
    }

    /// Capping the packed-key capacity forces the `u64`-overflow fallback
    /// (tuple-keyed interning, as used when `∏|Sᵢ|` does not fit a packed
    /// key) on machines small enough to sweep exhaustively; every
    /// observable must still equal the packed build.
    #[test]
    fn capped_packed_keys_match_the_packed_build(
        seed in 0u64..100_000,
        count in 1usize..4,
    ) {
        let machines = machine_family(seed, count);
        let full: u64 = machines.iter().map(|m| m.size() as u64).product();
        let packed = ProductBuilder::new().build(&machines).unwrap();
        let capped = ProductBuilder::new()
            .packed_key_capacity(full - 1)
            .build(&machines)
            .unwrap();
        assert_products_identical(&packed, &capped)?;
        assert_find_tuple_sweep(&packed, &capped, &machines)?;
        // Out-of-range and wrong-arity probes behave identically too.
        let bogus: Vec<StateId> = machines.iter().map(|m| StateId(m.size())).collect();
        prop_assert_eq!(capped.find_tuple(&bogus), None);
        prop_assert_eq!(capped.find_tuple(&[]), None);
    }

    #[test]
    fn projection_partitions_are_engine_independent(seed in 0u64..100_000) {
        let machines = machine_family(seed, 2);
        let reference = ReachableProduct::new_reference(&machines).unwrap();
        let packed = ReachableProduct::new(&machines).unwrap();
        assert_products_identical(&reference, &packed)?;
        let ref_parts = fsm_fusion::fusion::projection_partitions(&reference);
        let packed_parts = fsm_fusion::fusion::projection_partitions(&packed);
        prop_assert_eq!(ref_parts, packed_parts);
    }
}
