//! Guards the facade's public API surface: the `prelude` must keep exposing
//! the quickstart types, and the README/doctest scenario must keep working
//! as a plain integration test.
//!
//! If a refactor renames or drops a re-export, this file fails to compile —
//! which is the point: it turns silent API breakage into a red CI run.

use fsm_fusion::prelude::*;

/// Every quickstart name must be importable from the prelude alone.
///
/// The let-bindings pin the *path*, not behaviour; each one is a name the
/// README or rustdoc examples reference.
#[test]
fn prelude_exposes_quickstart_surface() {
    // Types usable in signatures straight from the prelude.
    fn _takes_system(_: &FusedSystem) {}
    fn _takes_workload(_: &Workload) {}
    fn _takes_fault_model(_: FaultModel) {}
    fn _takes_machine(_: &Dfsm) {}
    fn _takes_product(_: &ReachableProduct) {}
    fn _takes_partition(_: &Partition) {}
    fn _takes_fault_graph(_: &FaultGraph) {}
    fn _takes_replicated(_: &ReplicatedSystem) {}

    // Constructors / functions reachable without naming a sub-crate.
    let machines = fig1_machines();
    assert_eq!(machines.len(), 2);
    let workload = Workload::from_bits("0110");
    assert_eq!(workload.len(), 4);
    let _ = FaultModel::Crash;
    let _ = FaultModel::Byzantine;
    let rows = table1_rows();
    assert!(!rows.is_empty());
}

/// The deterministic-simulation surface added by the `Environment` redesign
/// must also be importable from the prelude alone.
#[test]
fn prelude_exposes_simulation_surface() {
    // Types usable in signatures straight from the prelude.
    fn _takes_env(_: &dyn Environment) {}
    fn _takes_group(_: &dyn ServerGroup) {}
    fn _takes_group_config(_: &GroupConfig) {}
    fn _takes_sim_config(_: &SimConfig) {}
    fn _takes_sim_env(_: &SimEnvironment) {}
    fn _takes_os_env(_: &OsEnvironment) {}
    fn _takes_trace_event(_: &TraceEvent) {}
    fn _takes_scenario(_: &Scenario) {}
    fn _takes_sweep_report(_: &SweepReport) {}

    // Constructors reachable without naming a sub-crate.
    let _ = GroupConfig::new().report_poll(std::time::Duration::from_millis(5));
    let sim = Seeded(42).sim().drop_probability(0.1).build();
    assert_eq!(sim.now(), std::time::Duration::ZERO);
    let os = OsEnvironment::seeded(42);
    assert_eq!(os.name(), "os");

    // The sweep harness is callable from the facade.
    let report = sweep(7, 2);
    assert_eq!(report.scenarios, 2);
    assert!(report.all_passed(), "violations: {:?}", report.violations);
}

/// The crash-recovery surface — durable servers, stores, rejoin paths and
/// the recovery sweep harness — must be importable from the prelude alone.
#[test]
fn prelude_exposes_recovery_surface() {
    // Types usable in signatures straight from the prelude.
    fn _takes_durable(_: &DurableServer) {}
    fn _takes_durability(_: &DurabilityConfig) {}
    fn _takes_rejoin(_: RejoinPath) {}
    fn _takes_replay_stats(_: &ReplayStats) {}
    fn _takes_store(_: &dyn Store) {}
    fn _takes_shared_store(_: &SharedStore) {}
    fn _takes_dir_store(_: &DirStore) {}
    fn _takes_fault_kind(_: FaultKind) {}
    fn _takes_recovery_scenario(_: &RecoveryScenario) {}
    fn _takes_backend_cost(_: &BackendCost) {}

    // Constructors reachable without naming a sub-crate.
    let config = DurabilityConfig::new().snapshot_every(8);
    let store = shared(MemStore::new());
    let machine = fig1_machines().remove(0);
    let mut server = DurableServer::fresh(machine.clone(), store.clone(), "s0", &config).unwrap();
    server.apply(&Event::new("0")).unwrap();
    drop(server);
    let (recovered, stats) = DurableServer::recover(machine, store, "s0", &config).unwrap();
    assert_eq!(stats.acked_seq, 1);
    assert_eq!(recovered.acked_seq(), 1);

    // The rejoin-path policy and its cutover are part of the surface.
    assert_eq!(RejoinPath::choose(5, 5), RejoinPath::Current);
    assert_eq!(
        RejoinPath::choose(0, REPLAY_CUTOVER + 1),
        RejoinPath::PeerDecode {
            gap: REPLAY_CUTOVER + 1
        }
    );

    // The recovery sweep and backend comparison are callable.
    let report = sweep_recovery(3, 2);
    assert!(report.all_passed(), "violations: {:?}", report.violations);
    let (fusion, replication) = compare_backends(3, 1);
    assert_eq!(fusion.runs, 1);
    assert_eq!(replication.runs, 1);
}

/// The batched-ingestion surface — the pipeline, its config, the typed
/// backpressure error and the serving scenario report — must be importable
/// from the prelude alone.
#[test]
fn prelude_exposes_ingest_surface() {
    // Types usable in signatures straight from the prelude.
    fn _takes_pipeline(_: &IngestPipeline) {}
    fn _takes_ingest_config(_: &IngestConfig) {}
    fn _takes_ingest_metrics(_: IngestMetrics) {}
    fn _takes_client(_: &ClientHandle) {}
    fn _takes_lane_status(_: LaneStatus) {}
    fn _takes_serve_report(_: &ServeReport) {}

    // Constructors and the end-to-end serving path, reachable without
    // naming a sub-crate.
    let config = IngestConfig::new()
        .queue_cap(8)
        .batch_max(4)
        .flush_interval(std::time::Duration::from_millis(1));
    assert_eq!(config.resolved_batch_max(), 4);
    let pipeline = IngestPipeline::new(2, 3, &config);
    assert_eq!(pipeline.clients(), 2);
    assert_eq!(pipeline.lane_status(0), LaneStatus::Healthy);

    let net = SensorNetwork::new(3, SensorBackupMode::Analytic).unwrap();
    let env = Seeded(11).sim().build();
    let workload = net.random_workload(60, 11);
    let report = net.serve(&env, 2, &workload, &config).unwrap();
    assert_eq!(report.events, 60);
    assert!(report.missing.is_empty());
    assert_eq!(report.metrics.flushed_events, 60);
}

/// The evolving-top surface — top deltas, update statistics and the
/// product-extension record — must be importable from the prelude alone.
#[test]
fn prelude_exposes_delta_surface() {
    // Types usable in signatures straight from the prelude.
    fn _takes_delta(_: &TopDelta) {}
    fn _takes_update_stats(_: UpdateStats) {}
    fn _takes_extension(_: &FactorExtension) {}

    // The evolving-top workflow, reachable without naming a sub-crate.
    let mut machines = fig1_machines();
    let mut session = FusionConfig::new().engine(Engine::Sequential).build();
    session.install_top(&machines[..1]).unwrap();
    let added = machines.remove(1);
    let stats = session.update_top(TopDelta::AddMachine(added)).unwrap();
    assert!(!stats.cold_rebuild, "{stats}");
    assert_eq!(session.top_product().unwrap().size(), 9);
    let fusion = session.generate_top_fusion(1).unwrap();
    assert_eq!(fusion.machine_sizes(), vec![3]);
}

/// The `src/lib.rs` doctest scenario, as a plain test: crash one of the
/// Figure 1 mod-3 counters, recover, and match the oracle.
#[test]
fn quickstart_scenario_recovers_from_crash() {
    let machines = fig1_machines();
    let mut system = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
    system.apply_workload(&Workload::from_bits("0110100101"));

    system.crash(0).unwrap();
    let outcome = system.recover().unwrap();
    assert!(outcome.matches_oracle);

    // Recovery restored the exact pre-crash state: 5 zeros mod 3 = 2.
    assert_eq!(system.server(0).current_state().index(), 2);
}

/// The same scenario under the Byzantine fault model: a lying server is
/// detected and corrected.
#[test]
fn quickstart_scenario_corrects_byzantine_lie() {
    let machines = fig1_machines();
    let mut system = FusedSystem::new(&machines, 1, FaultModel::Byzantine).unwrap();
    system.apply_workload(&Workload::from_bits("0110100101"));

    let truth = system.server(0).current_state();
    system.corrupt_differently(0).unwrap();
    let outcome = system.recover().unwrap();
    assert!(outcome.matches_oracle);
    assert_eq!(system.server(0).current_state(), truth);
    assert!(outcome.recovery.suspected_byzantine.contains(&0));
}

/// Generation via the prelude: one backup machine of 3 states suffices for
/// one crash fault over the Figure 1 pair (the paper's headline example).
#[test]
fn prelude_generation_matches_paper_headline() {
    let machines = fig1_machines();
    let (product, fusion) = generate_fusion_for_machines(&machines, 1).unwrap();
    assert_eq!(product.size(), 9);
    assert_eq!(fusion.machine_sizes(), vec![3]);
}
