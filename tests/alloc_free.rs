//! Pins the allocation-free Algorithm-2 inner loop with a counting
//! allocator.
//!
//! `ClosureKernel::close_merged_into` threads a `CloseScratch` (union-find,
//! seed table, class→successor map, relabel buffers) and a reusable output
//! `Partition` through every candidate merge; after one warm-up pass at a
//! given machine size the whole candidate evaluation — closure fixpoint,
//! canonical relabel, weakest-edge covering test — must never touch the
//! global allocator.  This test swaps in an allocation-counting global
//! allocator and asserts exactly that, which is what keeps the descent hot
//! loop out of malloc at `|⊤| = 729` (`alg2_search_n729_f2` in
//! `BENCH_fusion.json`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use fsm_fusion::fusion::{CloseScratch, ClosureKernel, FaultGraph, Partition};
use fsm_fusion::prelude::*;

/// Forwards to the system allocator, counting every allocation and
/// reallocation (deallocations are free to happen — the property under test
/// is "no new memory is requested").
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers entirely to `System`; the counter update has no other
// side effect.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// The counter is process-global, so tests in this binary must not run
/// concurrently — each takes this lock for its whole body.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A pair of interacting counters giving a 27-state `⊤` whose descent
/// exercises multi-round closure fixpoints.
fn workload() -> (ReachableProduct, Vec<Partition>) {
    let machines: Vec<Dfsm> = (0..3)
        .map(|i| {
            let mut b = DfsmBuilder::new(format!("C{i}"));
            for s in 0..3 {
                b.add_state(format!("c{i}s{s}"));
            }
            b.set_initial(format!("c{i}s0"));
            for s in 0..3 {
                b.add_transition(
                    format!("c{i}s{s}"),
                    format!("e{i}"),
                    format!("c{i}s{}", (s + 1) % 3),
                );
            }
            for j in 0..3 {
                if j != i {
                    b.add_self_loops(format!("e{j}"));
                }
            }
            b.build().unwrap()
        })
        .collect();
    let product = ReachableProduct::new(&machines).unwrap();
    let originals = fsm_fusion::fusion::projection_partitions(&product);
    (product, originals)
}

#[test]
fn close_merged_into_is_allocation_free_after_warm_up() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (product, originals) = workload();
    let top = product.top();
    let n = top.size();
    let kernel = ClosureKernel::new(top);
    let graph = FaultGraph::from_partitions(n, &originals);
    let weakest = graph.weakest_edges();
    assert!(!weakest.is_empty());

    let mut scratch = CloseScratch::new();
    let mut out = Partition::singletons(0);
    let current = Partition::singletons(n);

    // Warm-up: one full pass over every candidate pair grows the scratch
    // and output buffers to their steady-state sizes.
    let run_pass = |scratch: &mut CloseScratch, out: &mut Partition| {
        let mut covering = 0usize;
        for b1 in 0..n {
            for b2 in (b1 + 1)..n {
                kernel
                    .close_merged_into(scratch, &current, b1, b2, out)
                    .unwrap();
                if FaultGraph::covers_all(out, &weakest) {
                    covering += 1;
                }
            }
        }
        covering
    };
    let covering_warm = run_pass(&mut scratch, &mut out);

    // Steady state: the exact same candidate sweep must not allocate.
    let before = allocations();
    let covering_cold = run_pass(&mut scratch, &mut out);
    let after = allocations();
    assert_eq!(covering_warm, covering_cold);
    assert_eq!(
        after - before,
        0,
        "close_merged_into allocated in its steady state"
    );

    // The scratch result still matches the one-shot allocating API.
    for (b1, b2) in [(0usize, 1usize), (2, 5), (7, 11)] {
        kernel
            .close_merged_into(&mut scratch, &current, b1, b2, &mut out)
            .unwrap();
        assert_eq!(out, kernel.close_merged(&current, b1, b2).unwrap());
    }
}

#[test]
fn scratch_descent_from_a_coarser_partition_stays_allocation_free() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The descent does not only close singleton merges: re-run the sweep
    // from a coarser closed partition (fewer, larger blocks), which
    // exercises the first_of_block reuse across shrinking block counts.
    let (product, _originals) = workload();
    let top = product.top();
    let kernel = ClosureKernel::new(top);
    let mut scratch = CloseScratch::new();
    let mut out = Partition::singletons(0);
    // A closed coarsening to start from (close of one merge of ⊤).
    let start = kernel
        .close_merged(&Partition::singletons(top.size()), 0, 1)
        .unwrap();
    let k = start.num_blocks();
    assert!(k < top.size());
    // Warm up at this block count, then assert the steady state.
    for b1 in 0..k {
        for b2 in (b1 + 1)..k {
            kernel
                .close_merged_into(&mut scratch, &start, b1, b2, &mut out)
                .unwrap();
        }
    }
    let before = allocations();
    for b1 in 0..k {
        for b2 in (b1 + 1)..k {
            kernel
                .close_merged_into(&mut scratch, &start, b1, b2, &mut out)
                .unwrap();
        }
    }
    assert_eq!(allocations() - before, 0);
}
