//! Property tests pinning the incremental fault-graph trackers and the
//! parallel Algorithm-2 engine to their reference implementations.
//!
//! PR 2 established the pattern for the bitset kernels
//! (`tests/bitset_properties.rs`: optimized path vs. preserved element
//! scan); this suite extends it to the two new fast paths:
//!
//! * the incrementally maintained `dmin` / weakest-edge / speculation
//!   queries of `FaultGraph` against the full-rescan `*_scan` twins, under
//!   arbitrary interleavings of machine additions and queries,
//! * the crossbeam-backed parallel descent (`generate_fusion_par`) against
//!   the sequential engine (`generate_fusion_seq`), which must produce the
//!   same fusion machines *and* the same search statistics (everything but
//!   wall-clock time), and the pooled lattice enumeration against the
//!   sequential one.

use fsm_fusion::fusion::{
    enumerate_lattice, enumerate_lattice_par, generate_fusion_par, generate_fusion_seq,
    lower_cover, lower_cover_par, FaultGraph, Partition,
};
use fsm_fusion::machines::{random_dfsm, RandomDfsmConfig};
use fsm_fusion::prelude::*;
use proptest::prelude::*;

/// Deterministic SplitMix64, so failures reproduce from the case inputs.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A pseudo-random partition of `n` elements into at most `max_blocks`
/// blocks.
fn random_partition(seed: u64, n: usize, max_blocks: usize) -> Partition {
    let mut state = seed;
    let assignment: Vec<usize> = (0..n)
        .map(|_| (splitmix(&mut state) as usize) % max_blocks)
        .collect();
    Partition::from_assignment(&assignment)
}

/// A small random machine pair over the shared binary alphabet, as used by
/// the bitset property tests.
fn machine_family(seed: u64) -> Vec<Dfsm> {
    (0..2)
        .map(|i| {
            random_dfsm(
                &format!("M{i}"),
                &RandomDfsmConfig {
                    states: 2 + ((seed as usize + 3 * i) % 3),
                    alphabet: vec!["0".into(), "1".into()],
                    seed: seed.wrapping_add(i as u64 * 7919),
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental `dmin` / weakest-edge / speculation queries agree with
    /// the full rescans at every step of an interleaved add/query sequence,
    /// and a bulk build agrees with the same machines added one at a time.
    #[test]
    fn incremental_trackers_agree_with_rescans(
        seed in 0u64..100_000,
        n in 2usize..120,
        blocks in 1usize..9,
        adds in 1usize..6,
    ) {
        let machines: Vec<Partition> = (0..adds)
            .map(|i| random_partition(seed.wrapping_add(i as u64 * 101), n, blocks))
            .collect();
        let mut g = FaultGraph::new(n);
        prop_assert_eq!(g.dmin(), g.dmin_scan());
        for (step, p) in machines.iter().enumerate() {
            g.add_machine(p);
            prop_assert_eq!(g.dmin(), g.dmin_scan());
            prop_assert_eq!(g.weakest_edges(), g.weakest_edges_scan());
            // Speculation against a fresh random candidate and against a
            // machine already in the graph.
            let candidate = random_partition(seed ^ ((step as u64) << 7), n, blocks);
            for c in [&candidate, p] {
                prop_assert_eq!(g.speculate(c), g.addition_increases_dmin_scan(c));
                prop_assert_eq!(g.speculate(c), g.speculate_bitset(&c.to_bitset()));
            }
        }
        let bulk = FaultGraph::from_partitions(n, &machines);
        prop_assert_eq!(bulk.dmin(), g.dmin());
        prop_assert_eq!(bulk.weakest_edges(), g.weakest_edges());
        prop_assert_eq!(bulk.weight_histogram(), g.weight_histogram());
    }

    /// The parallel descent returns exactly the sequential engine's fusion:
    /// same partitions, same machines, same statistics (except wall-clock
    /// time), for every worker count.
    #[test]
    fn parallel_descent_matches_sequential(
        seed in 0u64..50_000,
        f in 1usize..3,
        workers in 1usize..5,
    ) {
        let machines = machine_family(seed);
        let product = ReachableProduct::new(&machines).unwrap();
        let originals = fsm_fusion::fusion::projection_partitions(&product);
        let seq = generate_fusion_seq(product.top(), &originals, f).unwrap();
        let par = generate_fusion_par(product.top(), &originals, f, workers).unwrap();
        prop_assert_eq!(&par.partitions, &seq.partitions);
        prop_assert_eq!(par.machine_sizes(), seq.machine_sizes());
        prop_assert_eq!(par.state_space(), seq.state_space());
        prop_assert_eq!(par.stats.initial_dmin, seq.stats.initial_dmin);
        prop_assert_eq!(par.stats.final_dmin, seq.stats.final_dmin);
        prop_assert_eq!(par.stats.outer_iterations, seq.stats.outer_iterations);
        prop_assert_eq!(par.stats.descent_steps, seq.stats.descent_steps);
        prop_assert_eq!(par.stats.candidates_examined, seq.stats.candidates_examined);
    }

    /// Pool reuse: the worker threads now persist across searches
    /// (`par::MergePool` attaches to a process-wide pool), so two
    /// back-to-back parallel searches on the warm pool must equal two fresh
    /// sequential searches — results and statistics — including when the
    /// second search runs at a different fault budget and worker count.
    #[test]
    fn back_to_back_pooled_searches_match_fresh_sequential_searches(
        seed in 0u64..50_000,
        workers in 2usize..5,
    ) {
        let machines = machine_family(seed);
        let product = ReachableProduct::new(&machines).unwrap();
        let originals = fsm_fusion::fusion::projection_partitions(&product);
        // First search warms the shared pool (it may already be warm from
        // other tests — that is the point), the second reuses it.
        let par1 = generate_fusion_par(product.top(), &originals, 1, workers).unwrap();
        let par2 = generate_fusion_par(product.top(), &originals, 2, workers + 1).unwrap();
        let seq1 = generate_fusion_seq(product.top(), &originals, 1).unwrap();
        let seq2 = generate_fusion_seq(product.top(), &originals, 2).unwrap();
        for (par, seq) in [(&par1, &seq1), (&par2, &seq2)] {
            prop_assert_eq!(&par.partitions, &seq.partitions);
            prop_assert_eq!(par.stats.initial_dmin, seq.stats.initial_dmin);
            prop_assert_eq!(par.stats.final_dmin, seq.stats.final_dmin);
            prop_assert_eq!(par.stats.outer_iterations, seq.stats.outer_iterations);
            prop_assert_eq!(par.stats.descent_steps, seq.stats.descent_steps);
            prop_assert_eq!(par.stats.candidates_examined, seq.stats.candidates_examined);
        }
        // Re-running the *same* search on the warm pool is also stable.
        let par1_again = generate_fusion_par(product.top(), &originals, 1, workers).unwrap();
        prop_assert_eq!(&par1_again.partitions, &par1.partitions);
        prop_assert_eq!(par1_again.stats.candidates_examined, par1.stats.candidates_examined);
    }

    /// Pooled lower covers and lattice enumeration return exactly the
    /// sequential results.
    #[test]
    fn parallel_lattice_matches_sequential(seed in 0u64..50_000, workers in 2usize..4) {
        let machines = machine_family(seed);
        let product = ReachableProduct::new(&machines).unwrap();
        let top = product.top();
        let top_partition = Partition::singletons(top.size());
        prop_assert_eq!(
            lower_cover_par(top, &top_partition, workers).unwrap(),
            lower_cover(top, &top_partition).unwrap()
        );
        let seq = enumerate_lattice(top, 500).unwrap();
        let par = enumerate_lattice_par(top, 500, workers).unwrap();
        prop_assert_eq!(par.elements, seq.elements);
        prop_assert_eq!(par.truncated, seq.truncated);
    }
}
