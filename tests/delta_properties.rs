//! Property tests pinning `FusionSession::update_top` bit-identical to a
//! cold session built on the post-delta `⊤`.
//!
//! A warm session installs an initial machine set, runs a generation (so
//! the closure cache and fault graph have state worth remapping), then
//! applies a random sequence of [`TopDelta`]s — adds, removes, extends —
//! through the incremental paths: product stride-extension, fault-graph
//! pullback/contraction, closure lift/push-forward.  A cold session is
//! built directly on the final machine set.  Everything observable must
//! match exactly, on every engine and cache policy:
//!
//! * the fusion partitions, machine sizes and state space,
//! * every `GenerationStats` field (dmin before/after, outer iterations,
//!   descent steps, candidates examined) — the cache may only change
//!   wall-clock time, never the walk,
//! * the product numbering itself (tuples and state names per `StateId`).

use fsm_fusion::fusion::{CachePolicy, Engine, FusionConfig, TopDelta};
use fsm_fusion::machines::{random_dfsm, RandomDfsmConfig};
use fsm_fusion::prelude::*;
use proptest::prelude::*;

/// A random machine over the shared binary alphabet (every event present,
/// so any machine is alphabet-compatible with any other).
fn rand_machine(name: &str, states: usize, seed: u64) -> Dfsm {
    random_dfsm(
        name,
        &RandomDfsmConfig {
            states,
            alphabet: vec!["0".into(), "1".into()],
            seed,
        },
    )
}

/// A delta drawn from a seed, resolved against the evolving machine list
/// when applied (`pick` wraps modulo the current length).
#[derive(Debug, Clone)]
enum DeltaSpec {
    Add {
        states: usize,
        seed: u64,
    },
    Remove {
        pick: usize,
    },
    Extend {
        pick: usize,
        extra: usize,
        seed: u64,
    },
}

/// SplitMix64 step — the offline proptest shim only draws integer ranges,
/// so delta sequences are expanded deterministically from one drawn seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn random_specs(seed: u64, count: usize) -> Vec<DeltaSpec> {
    let mut s = seed;
    (0..count)
        .map(|_| match splitmix(&mut s) % 3 {
            0 => DeltaSpec::Add {
                states: 2 + (splitmix(&mut s) as usize % 2),
                seed: splitmix(&mut s),
            },
            1 => DeltaSpec::Remove {
                pick: splitmix(&mut s) as usize % 8,
            },
            _ => DeltaSpec::Extend {
                pick: splitmix(&mut s) as usize % 8,
                extra: splitmix(&mut s) as usize % 2,
                seed: splitmix(&mut s),
            },
        })
        .collect()
}

/// Applies `spec` to both the shadow machine list and the warm session,
/// returning `false` when the spec is inapplicable (removing from a
/// single-machine top).
fn apply_spec(
    spec: &DeltaSpec,
    step: usize,
    machines: &mut Vec<Dfsm>,
    warm: &mut FusionSession,
) -> bool {
    match spec {
        DeltaSpec::Add { states, seed } => {
            let m = rand_machine(&format!("N{step}"), *states, *seed);
            machines.push(m.clone());
            warm.update_top(TopDelta::AddMachine(m)).unwrap();
        }
        DeltaSpec::Remove { pick } => {
            if machines.len() < 2 {
                return false;
            }
            let index = pick % machines.len();
            machines.remove(index);
            warm.update_top(TopDelta::RemoveMachine(index)).unwrap();
        }
        DeltaSpec::Extend { pick, extra, seed } => {
            let index = pick % machines.len();
            let m = rand_machine(&format!("E{step}"), machines[index].size() + extra, *seed);
            machines[index] = m.clone();
            warm.update_top(TopDelta::ExtendMachine { index, machine: m })
                .unwrap();
        }
    }
    true
}

/// Warm-after-deltas versus cold-on-final, on one engine/policy pair.
fn assert_delta_sequence_matches_cold(
    engine: Engine,
    policy: CachePolicy,
    initial: &[Dfsm],
    specs: &[DeltaSpec],
    max_f: usize,
) {
    let config = FusionConfig::new().engine(engine).workers(2).cache(policy);
    let mut warm = config.clone().build();
    let mut machines = initial.to_vec();
    warm.install_top(&machines).unwrap();
    // Populate cache and graph so the deltas have real state to remap.
    warm.generate_top_fusion(1).unwrap();
    for (step, spec) in specs.iter().enumerate() {
        apply_spec(spec, step, &mut machines, &mut warm);
    }

    let mut cold = config.build();
    cold.install_top(&machines).unwrap();
    let label = format!("{engine:?} {policy:?} {specs:?}");

    // Identical product numbering: size, tuples, state names.
    let (wp, cp) = (warm.top_product().unwrap(), cold.top_product().unwrap());
    assert_eq!(wp.size(), cp.size(), "{label}");
    assert_eq!(wp.arity(), cp.arity(), "{label}");
    for x in 0..wp.size() {
        let x = StateId(x);
        assert_eq!(wp.tuple(x), cp.tuple(x), "{label}");
        assert_eq!(wp.top().state_name(x), cp.top().state_name(x), "{label}");
    }

    // Identical generations, including the full statistics surface.
    for f in 1..=max_f {
        let w = warm.generate_top_fusion(f).unwrap();
        let c = cold.generate_top_fusion(f).unwrap();
        assert_eq!(w.partitions, c.partitions, "{label} f={f}");
        assert_eq!(w.machine_sizes(), c.machine_sizes(), "{label} f={f}");
        assert_eq!(w.state_space(), c.state_space(), "{label} f={f}");
        assert_eq!(w.stats.initial_dmin, c.stats.initial_dmin, "{label} f={f}");
        assert_eq!(w.stats.final_dmin, c.stats.final_dmin, "{label} f={f}");
        assert_eq!(
            w.stats.outer_iterations, c.stats.outer_iterations,
            "{label} f={f}"
        );
        assert_eq!(
            w.stats.descent_steps, c.stats.descent_steps,
            "{label} f={f}"
        );
        assert_eq!(
            w.stats.candidates_examined, c.stats.candidates_examined,
            "{label} f={f}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random delta sequences on the sequential engine, across every cache
    /// policy (disabled, default bound, and a tiny bound that forces
    /// evictions mid-remap).
    #[test]
    fn sequential_delta_sequences_match_cold_sessions(
        seed in 0u64..50_000,
        spec_seed in 0u64..1_000_000,
        nspecs in 1usize..=3,
    ) {
        let specs = random_specs(spec_seed, nspecs);
        let initial = vec![
            rand_machine("A", 2 + (seed as usize % 2), seed),
            rand_machine("B", 2 + (seed as usize / 2 % 2), seed.wrapping_add(7919)),
        ];
        for policy in [
            CachePolicy::Disabled,
            CachePolicy::default(),
            CachePolicy::Bounded(64),
        ] {
            assert_delta_sequence_matches_cold(Engine::Sequential, policy, &initial, &specs, 2);
        }
    }

    /// The pooled engine agrees too (fewer f values — the walk is pinned
    /// identical across engines elsewhere; this guards the delta plumbing
    /// around the pool handle).
    #[test]
    fn pooled_delta_sequences_match_cold_sessions(
        seed in 0u64..50_000,
        spec_seed in 0u64..1_000_000,
        nspecs in 1usize..=2,
    ) {
        let specs = random_specs(spec_seed, nspecs);
        let initial = vec![
            rand_machine("A", 2, seed),
            rand_machine("B", 3, seed.wrapping_add(104_729)),
        ];
        assert_delta_sequence_matches_cold(
            Engine::Pooled,
            CachePolicy::default(),
            &initial,
            &specs,
            1,
        );
    }
}

/// The spawn engine (private threads, joined on context replacement) takes
/// the same delta paths; one deterministic sequence suffices to guard the
/// pool-handle lifecycle across `install_context`.
#[test]
fn spawn_engine_delta_sequence_matches_cold_session() {
    let initial = vec![rand_machine("A", 3, 11), rand_machine("B", 2, 13)];
    let specs = [
        DeltaSpec::Add {
            states: 2,
            seed: 17,
        },
        DeltaSpec::Remove { pick: 0 },
        DeltaSpec::Extend {
            pick: 1,
            extra: 1,
            seed: 19,
        },
    ];
    assert_delta_sequence_matches_cold(Engine::Spawn, CachePolicy::default(), &initial, &specs, 2);
}
