//! Property-based tests of the paper's theory (Theorems 1–6) on randomly
//! generated machine families.
//!
//! Each property instantiates random DFSMs over a shared alphabet, builds
//! the reachable cross product, and checks that the executable forms of the
//! paper's definitions and theorems hold.

use fsm_fusion::fusion::{
    close, fusion_exists, generate_fusion, is_closed, is_fusion, lower_cover, minimum_backup_count,
    projection_partitions, quotient_machine, set_representation, subset_theorem_holds, FaultGraph,
    Partition,
};
use fsm_fusion::machines::{random_dfsm, RandomDfsmConfig};
use fsm_fusion::prelude::*;
use proptest::prelude::*;

/// A small random machine family over the shared binary alphabet.
fn machine_family(seed: u64, count: usize, max_states: usize) -> Vec<Dfsm> {
    (0..count)
        .map(|i| {
            random_dfsm(
                &format!("M{i}"),
                &RandomDfsmConfig {
                    states: 2 + ((seed as usize + 3 * i) % (max_states - 1)),
                    alphabet: vec!["0".into(), "1".into()],
                    seed: seed.wrapping_add(i as u64 * 7919),
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Closing any partition of ⊤ yields a closed partition that is coarser
    /// or equal, and closing is idempotent.
    #[test]
    fn close_produces_closed_coarser_idempotent(seed in 0u64..500, merges in 0usize..4) {
        let machines = machine_family(seed, 2, 4);
        let product = ReachableProduct::new(&machines).unwrap();
        let top = product.top();
        let n = top.size();
        // Random-ish partition: start from singletons and merge a few pairs.
        let mut p = Partition::singletons(n);
        for k in 0..merges {
            let x = (seed as usize + 13 * k) % n;
            let y = (seed as usize * 31 + 7 * k) % n;
            p = p.merge_elements(x, y);
        }
        let c = close(top, &p).unwrap();
        prop_assert!(is_closed(top, &c));
        prop_assert!(c.le(&p));
        prop_assert_eq!(close(top, &c).unwrap(), c);
    }

    /// Projection partitions of the cross product are closed, and Algorithm 1
    /// (set representation by lock-step simulation) reproduces them exactly.
    #[test]
    fn algorithm1_agrees_with_projection(seed in 0u64..500) {
        let machines = machine_family(seed, 3, 4);
        let product = ReachableProduct::new(&machines).unwrap();
        for (i, p) in projection_partitions(&product).into_iter().enumerate() {
            prop_assert!(is_closed(product.top(), &p));
            let via_alg1 = set_representation(product.top(), &machines[i]).unwrap();
            prop_assert_eq!(p, via_alg1);
        }
    }

    /// Theorem 1: the fault graph's dmin equals 1 + the number of crash
    /// faults the machine set tolerates; adding machines never decreases it.
    #[test]
    fn dmin_is_monotone_under_adding_machines(seed in 0u64..500) {
        let machines = machine_family(seed, 3, 4);
        let product = ReachableProduct::new(&machines).unwrap();
        let parts = projection_partitions(&product);
        let mut graph = FaultGraph::new(product.size());
        let mut last = graph.dmin();
        for p in &parts {
            graph.add_machine(p);
            let now = graph.dmin();
            if last != u32::MAX {
                prop_assert!(now >= last);
                prop_assert!(now <= last + 1);
            }
            last = now;
        }
        prop_assert_eq!(graph.max_crash_faults(), graph.dmin().saturating_sub(1) as usize);
    }

    /// Theorem 4 + Theorem 5: Algorithm 2 produces exactly
    /// `max(0, f + 1 - dmin)` machines, the result is an (f, m)-fusion, and
    /// an (f, m)-fusion exists iff `m + dmin > f`.
    #[test]
    fn generation_matches_existence_bound(seed in 0u64..200, f in 0usize..3) {
        let machines = machine_family(seed, 2, 4);
        let product = ReachableProduct::new(&machines).unwrap();
        let originals = projection_partitions(&product);
        let n = product.size();
        let fusion = generate_fusion(product.top(), &originals, f).unwrap();
        prop_assert!(is_fusion(n, &originals, &fusion.partitions, f));
        prop_assert_eq!(fusion.len(), minimum_backup_count(n, &originals, f));
        prop_assert!(fusion_exists(n, &originals, f, fusion.len()));
        if !fusion.is_empty() {
            prop_assert!(!fusion_exists(n, &originals, f, fusion.len() - 1));
        }
        // Every generated machine is a closed partition of ⊤ and its
        // quotient machine simulates ⊤ correctly on random words.
        for p in &fusion.partitions {
            prop_assert!(is_closed(product.top(), p));
            let q = quotient_machine(product.top(), p, "F").unwrap();
            let w = Workload::uniform(product.top().alphabet(), 30, seed);
            let t_final = product.top().run(w.iter());
            let q_final = q.run(w.iter());
            prop_assert_eq!(p.block_of(t_final.index()), q_final.index());
        }
    }

    /// Theorem 3: every subset of a generated fusion is itself a fusion of
    /// correspondingly lower strength.
    #[test]
    fn subset_theorem(seed in 0u64..200, f in 1usize..3) {
        let machines = machine_family(seed, 2, 3);
        let product = ReachableProduct::new(&machines).unwrap();
        let originals = projection_partitions(&product);
        let fusion = generate_fusion(product.top(), &originals, f).unwrap();
        prop_assert!(subset_theorem_holds(product.size(), &originals, &fusion.partitions, f));
    }

    /// The lower cover of any closed partition consists of pairwise
    /// incomparable closed partitions strictly below it.
    #[test]
    fn lower_cover_properties(seed in 0u64..200) {
        let machines = machine_family(seed, 2, 3);
        let product = ReachableProduct::new(&machines).unwrap();
        let top = product.top();
        let parts = projection_partitions(&product);
        for p in &parts {
            let cover = lower_cover(top, p).unwrap();
            for q in &cover {
                prop_assert!(is_closed(top, q));
                prop_assert!(q.lt(p));
            }
            for (i, q) in cover.iter().enumerate() {
                for (j, r) in cover.iter().enumerate() {
                    if i != j {
                        prop_assert!(q.incomparable(r));
                    }
                }
            }
        }
    }

    /// End-to-end crash recovery on random machine families: crash any f
    /// servers (originals or backups), recovery restores the exact states.
    #[test]
    fn random_crash_recovery_roundtrip(seed in 0u64..200, f in 1usize..3, workload_len in 1usize..80) {
        let machines = machine_family(seed, 3, 3);
        let mut system = FusedSystem::new(&machines, f, FaultModel::Crash).unwrap();
        let workload = Workload::uniform_over_machines(&machines, workload_len, seed);
        system.apply_workload(&workload);
        let truth: Vec<_> = (0..system.num_servers())
            .map(|i| system.server(i).current_state())
            .collect();
        // Crash f distinct servers chosen from the seed.
        let n = system.num_servers();
        let mut victims: Vec<usize> = (0..n).collect();
        victims.rotate_left(seed as usize % n);
        for &v in victims.iter().take(f.min(n)) {
            system.crash(v).unwrap();
        }
        let outcome = system.recover().unwrap();
        prop_assert!(outcome.matches_oracle);
        for (i, expected) in truth.iter().enumerate() {
            prop_assert_eq!(system.server(i).current_state(), *expected);
        }
    }

    /// End-to-end Byzantine recovery: one liar in a system provisioned for
    /// one Byzantine fault is always detected and corrected.
    #[test]
    fn random_byzantine_recovery_roundtrip(seed in 0u64..150, workload_len in 1usize..60) {
        let machines = machine_family(seed, 2, 3);
        let mut system = FusedSystem::new(&machines, 1, FaultModel::Byzantine).unwrap();
        let workload = Workload::uniform_over_machines(&machines, workload_len, seed);
        system.apply_workload(&workload);
        let liar = seed as usize % system.num_servers();
        if system.server(liar).machine().size() < 2 {
            return Ok(()); // a 1-state machine cannot lie
        }
        let truth = system.server(liar).current_state();
        system.corrupt_differently(liar).unwrap();
        let outcome = system.recover().unwrap();
        prop_assert!(outcome.matches_oracle);
        prop_assert_eq!(system.server(liar).current_state(), truth);
        prop_assert!(outcome.recovery.suspected_byzantine.contains(&liar));
    }

    /// The erasure-code analogy: dmin of the fault graph equals the minimum
    /// Hamming distance of the induced code words.
    #[test]
    fn dmin_equals_code_minimum_distance(seed in 0u64..300) {
        let machines = machine_family(seed, 3, 4);
        let product = ReachableProduct::new(&machines).unwrap();
        let parts = projection_partitions(&product);
        let graph = FaultGraph::from_partitions(product.size(), &parts);
        let assignments: Vec<Vec<usize>> = parts
            .iter()
            .map(|p| (0..product.size()).map(|t| p.block_of(t)).collect())
            .collect();
        let code_dmin = fsm_fusion::erasure::code_minimum_distance(&assignments);
        if product.size() >= 2 {
            prop_assert_eq!(graph.dmin() as usize, code_dmin.unwrap());
        }
    }
}
