//! Reproduction of the paper's Figures 1–5 (the running examples), as
//! integration tests spanning the machine library and the fusion core.

use fsm_fusion::dfsm::are_isomorphic;
use fsm_fusion::fusion::{
    basis, enumerate_lattice, generate_fusion, is_closed, set_representation, FaultGraph, Partition,
};
use fsm_fusion::machines::{
    fig1_fusion_f1, fig1_fusion_f2, fig1_machines, fig2_machines, fig3_top,
};
use fsm_fusion::prelude::*;

/// Figure 1: the mod-3 counters, their 9-state cross product and the
/// hand-derived fusions F1 = (n0+n1) mod 3 and F2 = (n0−n1) mod 3.
#[test]
fn figure1_counters_and_their_fusions() {
    let machines = fig1_machines();
    let product = ReachableProduct::new(&machines).unwrap();
    assert_eq!(product.size(), 9, "Fig. 1(iii): |R({{A,B}})| = 9");

    // Both hand-derived fusions are ≤ ⊤, have 3 states, and each alone forms
    // a (1,1)-fusion of {A, B}.
    let originals = fsm_fusion::fusion::projection_partitions(&product);
    for fusion_machine in [fig1_fusion_f1(), fig1_fusion_f2()] {
        let part = set_representation(product.top(), &fusion_machine).unwrap();
        assert_eq!(part.num_blocks(), 3);
        assert!(is_closed(product.top(), &part));
        let mut with_fusion = originals.clone();
        with_fusion.push(part);
        let g = FaultGraph::from_partitions(product.size(), &with_fusion);
        assert!(
            g.tolerates_crash_faults(1),
            "{} forms a (1,1)-fusion",
            fusion_machine.name()
        );
    }

    // {F1, F2} together form a (2,2)-fusion: the system then tolerates two
    // crash faults and one Byzantine fault.
    let mut all = originals.clone();
    all.push(set_representation(product.top(), &fig1_fusion_f1()).unwrap());
    all.push(set_representation(product.top(), &fig1_fusion_f2()).unwrap());
    let g = FaultGraph::from_partitions(product.size(), &all);
    assert!(g.tolerates_crash_faults(2));
    assert!(g.tolerates_byzantine_faults(1));

    // Algorithm 2 generates a 3-state machine for one fault — the same size
    // as the paper's hand-derived F1.
    let generated = generate_fusion(product.top(), &originals, 1).unwrap();
    assert_eq!(generated.machine_sizes(), vec![3]);
    // It is the sum counter, the difference counter, or isomorphic to one of
    // them (all minimal 3-state fusions of this pair).
    let gen_part = &generated.partitions[0];
    let f1_part = set_representation(product.top(), &fig1_fusion_f1()).unwrap();
    let f2_part = set_representation(product.top(), &fig1_fusion_f2()).unwrap();
    assert!(
        gen_part == &f1_part
            || gen_part == &f2_part
            || are_isomorphic(&generated.machines[0], &fig1_fusion_f1())
            || are_isomorphic(&generated.machines[0], &fig1_fusion_f2()),
        "generated fusion should match a Fig. 1 fusion"
    );
}

/// Figure 2: machines A and B with a 4-state reachable cross product, and
/// the order A ≤ R({A,B}).
#[test]
fn figure2_cross_product_and_order() {
    let machines = fig2_machines();
    let product = ReachableProduct::new(&machines).unwrap();
    assert_eq!(product.size(), 4);
    assert!(are_isomorphic(product.top(), &fig3_top()));

    // Both A and B are ≤ ⊤: their set representations are closed partitions
    // with 3 blocks each.
    for m in &machines {
        let part = set_representation(product.top(), m).unwrap();
        assert_eq!(part.num_blocks(), 3);
        assert!(is_closed(product.top(), &part));
    }
}

/// Figure 3: the closed partition lattice of the 4-state top machine.
#[test]
fn figure3_closed_partition_lattice() {
    let top = fig3_top();
    let lattice = enumerate_lattice(&top, 10_000).unwrap();
    assert!(!lattice.truncated);
    // ⊤ and ⊥ are present.
    assert!(lattice.top().is_singletons());
    assert!(lattice.bottom().is_single_block());
    // A and B (as partitions of the top's states) are elements of the
    // lattice, as Fig. 3 shows.
    let a = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
    let b = Partition::from_blocks(4, &[vec![0], vec![1], vec![2, 3]]).unwrap();
    assert!(lattice.elements.contains(&a));
    assert!(lattice.elements.contains(&b));
    // They belong to the basis (the lower cover of ⊤).
    let basis = basis(&top).unwrap();
    assert!(basis.contains(&a));
    assert!(basis.contains(&b));
    // Every element is closed and the Hasse diagram is non-trivial.
    for p in &lattice.elements {
        assert!(is_closed(&top, p));
    }
    assert!(!lattice.hasse_edges().is_empty());
}

/// Figure 4: fault graphs G({A}), G({A,B}) and the fused system.
#[test]
fn figure4_fault_graphs() {
    let top = fig3_top();
    let machines = fig2_machines();
    let a = set_representation(&top, &machines[0]).unwrap();
    let b = set_representation(&top, &machines[1]).unwrap();

    // G({A}): exactly one zero-weight edge (the pair A cannot distinguish).
    let g_a = FaultGraph::from_partitions(4, std::slice::from_ref(&a));
    assert_eq!(g_a.dmin(), 0);
    assert_eq!(g_a.edges_with_weight(0).len(), 1);
    assert_eq!(g_a.edges_with_weight(1).len(), 5);

    // G({A,B}): dmin = 1 — the pair cannot tolerate even one fault.
    let g_ab = FaultGraph::from_partitions(4, &[a.clone(), b.clone()]);
    assert_eq!(g_ab.dmin(), 1);
    assert_eq!(g_ab.max_crash_faults(), 0);

    // Adding a generated (2,2)-fusion raises dmin above 2 (Fig. 4(iii)):
    // the system then tolerates two crash faults and one Byzantine fault.
    let fusion = generate_fusion(&top, &[a.clone(), b.clone()], 2).unwrap();
    assert_eq!(fusion.len(), 2);
    let mut all = vec![a, b];
    all.extend(fusion.partitions);
    let g_all = FaultGraph::from_partitions(4, &all);
    assert!(g_all.dmin() >= 3);
    assert_eq!(g_all.max_crash_faults(), g_all.dmin() as usize - 1);
    assert!(g_all.max_byzantine_faults() >= 1);
}

/// Figure 5 / Algorithm 1: the set representation of machine A over the top
/// machine is {t0,t3}, {t1}, {t2}.
#[test]
fn figure5_set_representation() {
    let top = fig3_top();
    let machines = fig2_machines();
    let a = set_representation(&top, &machines[0]).unwrap();
    let expected = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
    assert_eq!(a, expected);
    // And the B machine groups {t2, t3} together.
    let b = set_representation(&top, &machines[1]).unwrap();
    assert!(b.same_block(2, 3));
    assert!(b.separates(0, 1));
}

/// The worked recovery examples of Section 5.2 on the Fig. 2 machines with a
/// generated (2,2)-fusion: two crashes, then one Byzantine fault.
#[test]
fn section52_recovery_walkthrough() {
    let machines = fig2_machines();
    let mut system = FusedSystem::new(&machines, 2, FaultModel::Crash).unwrap();
    assert_eq!(system.num_backups(), 2);

    system.apply_workload(&Workload::from_bits("0101101"));
    let truth: Vec<_> = (0..system.num_servers())
        .map(|i| system.server(i).current_state())
        .collect();

    // Crash both originals (two crash faults, the budget).
    system.crash(0).unwrap();
    system.crash(1).unwrap();
    let outcome = system.recover().unwrap();
    assert!(outcome.matches_oracle);
    for (i, expected) in truth.iter().enumerate() {
        assert_eq!(system.server(i).current_state(), *expected);
    }

    // The same backup set tolerates one Byzantine fault (f/2).
    let mut system = FusedSystem::new(&machines, 1, FaultModel::Byzantine).unwrap();
    system.apply_workload(&Workload::from_bits("0101101"));
    let liar = 0;
    let truth = system.server(liar).current_state();
    system.corrupt_differently(liar).unwrap();
    let outcome = system.recover().unwrap();
    assert!(outcome.matches_oracle);
    assert_eq!(system.server(liar).current_state(), truth);
    assert!(outcome.recovery.suspected_byzantine.contains(&liar));
}
