//! End-to-end reproduction of the paper's evaluation table (Section 6):
//! for every row, generate the backup machines, compare the fusion and
//! replication state spaces, and run a crash / recovery round trip on the
//! full machine set.
//!
//! Absolute numbers (|⊤|, backup sizes) differ from the paper because the
//! paper does not publish its exact event encodings; the *shape* — fusion
//! needs no more backup state than replication, the number of backup
//! machines equals `f + 1 − dmin`, and recovery is exact within the fault
//! budget — is asserted here.  EXPERIMENTS.md records the measured values
//! next to the paper's.

use fsm_fusion::fusion::{minimum_backup_count, projection_partitions, FusionReport};
use fsm_fusion::prelude::*;

fn paper_replication_column() -> [u128; 5] {
    [82_944, 2_097_152, 59_049, 396, 156_816]
}

#[test]
fn every_row_generates_a_fusion_no_larger_than_replication() {
    let rows = table1_rows();
    assert_eq!(rows.len(), 5);
    for (row, expected_replication) in rows.iter().zip(paper_replication_column()) {
        let report = FusionReport::measure(row.label.clone(), &row.machines, row.f)
            .expect("fusion generation succeeds for every table row");
        // The replication column is fully determined by machine sizes and f,
        // so it must match the paper exactly.
        assert_eq!(
            report.replication_state_space(),
            expected_replication,
            "row `{}`",
            row.label
        );
        // Fusion must never need more backup state than replication.
        assert!(
            report.fusion_state_space() <= report.replication_state_space(),
            "row `{}`: fusion {} > replication {}",
            row.label,
            report.fusion_state_space(),
            report.replication_state_space()
        );
        // And it must use at most as many backup machines.
        assert!(report.fusion_backup_machines() <= report.replication_backup_machines());
        // |⊤| never exceeds the full product of machine sizes.
        assert!(report.top_size as u128 <= row.size_product());
    }
}

#[test]
fn backup_machine_count_matches_the_minimum_from_theorem_4() {
    for row in table1_rows() {
        let product = ReachableProduct::new(&row.machines).expect("valid machines");
        let originals = projection_partitions(&product);
        let expected = minimum_backup_count(product.size(), &originals, row.f);
        let (_, fusion) =
            generate_fusion_for_machines(&row.machines, row.f).expect("fusion generation succeeds");
        assert_eq!(
            fusion.len(),
            expected,
            "row `{}`: Algorithm 2 must add exactly f + 1 - dmin machines",
            row.label
        );
        // The fused system tolerates f crash faults: dmin > f.
        let mut all = originals.clone();
        all.extend(fusion.partitions.iter().cloned());
        let graph = FaultGraph::from_partitions(product.size(), &all);
        assert!(graph.tolerates_crash_faults(row.f), "row `{}`", row.label);
        assert!(
            !graph.tolerates_crash_faults(row.f + fusion.len() + 1),
            "row `{}`: tolerance should not be unboundedly larger",
            row.label
        );
    }
}

#[test]
fn crash_recovery_round_trip_for_every_row() {
    for row in table1_rows() {
        let mut system = FusedSystem::new(&row.machines, row.f, FaultModel::Crash)
            .expect("fusion generation succeeds");
        let workload = Workload::uniform_over_machines(&row.machines, 300, 0xC0FFEE);
        system.apply_workload(&workload);

        // Record ground truth, crash `f` machines (the originals first), and
        // recover.
        let truth: Vec<_> = (0..system.num_servers())
            .map(|i| system.server(i).current_state())
            .collect();
        for i in 0..row.f.min(system.num_servers()) {
            system.crash(i).expect("server exists");
        }
        let outcome = system
            .recover()
            .expect("f crashes are within the fault budget");
        assert!(outcome.matches_oracle, "row `{}`", row.label);
        for (i, expected) in truth.iter().enumerate() {
            assert_eq!(
                system.server(i).current_state(),
                *expected,
                "row `{}`, server {i}",
                row.label
            );
        }
        assert!(system.consistent_with_oracle(), "row `{}`", row.label);
    }
}

#[test]
fn byzantine_recovery_round_trip_for_rows_with_enough_distance() {
    // Each row is provisioned for f crash faults; the same backup set
    // tolerates floor(f/2) Byzantine faults (Theorem 2).  Exercise the rows
    // with f >= 2.
    for row in table1_rows().into_iter().filter(|r| r.f >= 2) {
        let byz = row.f / 2;
        let mut system = FusedSystem::new(&row.machines, byz, FaultModel::Byzantine)
            .expect("fusion generation succeeds");
        let workload = Workload::uniform_over_machines(&row.machines, 200, 0xBEEF);
        system.apply_workload(&workload);
        let truth: Vec<_> = (0..system.num_servers())
            .map(|i| system.server(i).current_state())
            .collect();
        for i in 0..byz {
            system.corrupt_differently(i).expect("server exists");
        }
        let outcome = system
            .recover()
            .expect("byzantine faults within the budget");
        assert!(outcome.matches_oracle, "row `{}`", row.label);
        for (i, expected) in truth.iter().enumerate() {
            assert_eq!(
                system.server(i).current_state(),
                *expected,
                "row `{}`",
                row.label
            );
        }
    }
}

#[test]
fn fused_and_replicated_systems_recover_identical_states() {
    // Same machines, same workload, same primary crash: fusion and
    // replication must agree on every recovered state (they both recover
    // the truth).
    for row in table1_rows().into_iter().filter(|r| r.f == 1 || r.f == 2) {
        let f = 1; // compare single-fault recovery across strategies
        let mut fused =
            FusedSystem::new(&row.machines, f, FaultModel::Crash).expect("generation succeeds");
        let mut replicated =
            ReplicatedSystem::new(&row.machines, f, FaultModel::Crash).expect("valid machines");
        let workload = Workload::uniform_over_machines(&row.machines, 250, 0xABCD);
        fused.apply_workload(&workload);
        replicated.apply_workload(&workload);

        fused.crash(0).expect("server exists");
        replicated.crash(0, 0).expect("replica exists");

        let fused_outcome = fused.recover().expect("within budget");
        let replicated_states = replicated.recover().expect("within budget");
        assert!(fused_outcome.matches_oracle, "row `{}`", row.label);
        assert_eq!(
            replicated_states.len(),
            row.machines.len(),
            "row `{}`: one recovered state per machine",
            row.label
        );
        for (i, &replicated_state) in replicated_states.iter().enumerate() {
            assert_eq!(
                fused.server(i).current_state(),
                replicated_state,
                "row `{}`, machine {i}",
                row.label
            );
        }
        // Fusion never uses more backup state than replication.
        assert!(fused.fusion_state_space() <= replicated.backup_state_space());
    }
}
