//! The replication baseline as a running system (for side-by-side
//! comparison with [`crate::FusedSystem`]).
//!
//! Replication keeps `f` extra copies of every machine for crash faults and
//! `2f` copies for Byzantine faults (Section 1 of the paper).  Each copy is
//! an independent server consuming the same event stream; recovery of a
//! machine consults only its own replica group (any survivor for crash
//! faults, a majority for Byzantine faults).

use fsm_dfsm::{Dfsm, Event, StateId};
use fsm_fusion_core::{FaultModel, ReplicaSet};

use crate::error::{DistsysError, Result};
use crate::server::{Server, ServerStatus};
use crate::system::SystemMetrics;
use crate::workload::Workload;

/// One machine plus its replicas.
#[derive(Debug, Clone)]
pub struct ReplicaGroup {
    /// Index 0 is the primary; the rest are backups.
    servers: Vec<Server>,
    replica_set: ReplicaSet,
}

impl ReplicaGroup {
    fn new(machine: Dfsm, f: usize, model: FaultModel) -> Self {
        let copies = model.copies_per_machine(f);
        let servers = (0..=copies).map(|_| Server::new(machine.clone())).collect();
        ReplicaGroup {
            servers,
            replica_set: ReplicaSet::new(machine, f, model),
        }
    }

    /// The servers in this group (primary first).
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    fn apply(&mut self, event: &Event) {
        for s in &mut self.servers {
            s.apply(event);
        }
    }

    fn recover(&mut self) -> Result<StateId> {
        let reports: Vec<Option<usize>> = self
            .servers
            .iter()
            .map(|s| match s.status() {
                ServerStatus::Crashed => None,
                _ => Some(s.current_state().index()),
            })
            .collect();
        let state = self.replica_set.recover(&reports)?;
        for s in &mut self.servers {
            s.restore(StateId(state));
        }
        Ok(StateId(state))
    }
}

/// A replication-backed system of servers: the baseline the paper compares
/// fusion against.
#[derive(Debug, Clone)]
pub struct ReplicatedSystem {
    groups: Vec<ReplicaGroup>,
    f: usize,
    model: FaultModel,
    metrics: SystemMetrics,
}

impl ReplicatedSystem {
    /// Builds a replicated system tolerating `f` faults of the given model
    /// *per replica group* (which is stronger than fusion's system-wide
    /// budget — replication pays for that generality in state).
    pub fn new(machines: &[Dfsm], f: usize, model: FaultModel) -> Result<Self> {
        if machines.is_empty() {
            return Err(DistsysError::NoMachines);
        }
        Ok(ReplicatedSystem {
            groups: machines
                .iter()
                .map(|m| ReplicaGroup::new(m.clone(), f, model))
                .collect(),
            f,
            model,
            metrics: SystemMetrics::default(),
        })
    }

    /// Number of original machines.
    pub fn num_machines(&self) -> usize {
        self.groups.len()
    }

    /// Number of backup servers across all groups (`n · f` or `n · 2f`).
    pub fn num_backups(&self) -> usize {
        self.groups.iter().map(|g| g.servers.len() - 1).sum()
    }

    /// Total number of servers.
    pub fn num_servers(&self) -> usize {
        self.groups.iter().map(|g| g.servers.len()).sum()
    }

    /// The replica groups.
    pub fn groups(&self) -> &[ReplicaGroup] {
        &self.groups
    }

    /// Running metrics.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.metrics
    }

    /// The backup state space: each backup copy of machine `i` contributes a
    /// factor `|Mi|`, i.e. `∏ |Mi|^copies = (∏|Mi|)^copies`.
    pub fn backup_state_space(&self) -> u128 {
        let sizes: Vec<usize> = self
            .groups
            .iter()
            .map(|g| g.replica_set.machine().size())
            .collect();
        fsm_fusion_core::replication_state_space(&sizes, self.model.copies_per_machine(self.f))
    }

    /// Broadcasts one event to every server in every group.
    pub fn apply_event(&mut self, event: &Event) {
        for g in &mut self.groups {
            g.apply(event);
        }
        self.metrics.events_processed += 1;
    }

    /// Broadcasts a whole workload.
    pub fn apply_workload(&mut self, workload: &Workload) {
        for e in workload {
            self.apply_event(e);
        }
    }

    /// Crashes replica `replica` of machine `machine` (0 = the primary).
    pub fn crash(&mut self, machine: usize, replica: usize) -> Result<()> {
        self.check(machine, replica)?;
        self.groups[machine].servers[replica].crash();
        self.metrics.crashes_injected += 1;
        Ok(())
    }

    /// Injects a Byzantine fault into replica `replica` of machine
    /// `machine`, moving it to `state`.
    pub fn corrupt(&mut self, machine: usize, replica: usize, state: StateId) -> Result<()> {
        self.check(machine, replica)?;
        let size = self.groups[machine].servers[replica].machine().size();
        if state.index() >= size {
            return Err(DistsysError::InvalidState {
                server: replica,
                state: state.index(),
                size,
            });
        }
        self.groups[machine].servers[replica].corrupt(state);
        self.metrics.corruptions_injected += 1;
        Ok(())
    }

    /// Recovers every replica group and returns the recovered primary state
    /// of each machine.
    pub fn recover(&mut self) -> Result<Vec<StateId>> {
        let mut states = Vec::with_capacity(self.groups.len());
        for g in &mut self.groups {
            match g.recover() {
                Ok(s) => states.push(s),
                Err(e) => {
                    self.metrics.failed_recoveries += 1;
                    return Err(e);
                }
            }
        }
        self.metrics.recoveries += 1;
        Ok(states)
    }

    /// The primary state of machine `i`.
    pub fn primary_state(&self, i: usize) -> StateId {
        self.groups[i].servers[0].current_state()
    }

    fn check(&self, machine: usize, replica: usize) -> Result<()> {
        if machine >= self.groups.len() || replica >= self.groups[machine].servers.len() {
            return Err(DistsysError::NoSuchServer {
                server: replica,
                count: self
                    .groups
                    .get(machine)
                    .map(|g| g.servers.len())
                    .unwrap_or(0),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_machines::fig1_machines;

    #[test]
    fn replication_uses_f_copies_per_machine() {
        let sys = ReplicatedSystem::new(&fig1_machines(), 2, FaultModel::Crash).unwrap();
        assert_eq!(sys.num_machines(), 2);
        assert_eq!(sys.num_backups(), 4);
        assert_eq!(sys.num_servers(), 6);
        assert_eq!(sys.backup_state_space(), 81); // (3*3)^2
        assert_eq!(sys.groups().len(), 2);
    }

    #[test]
    fn byzantine_replication_uses_2f_copies() {
        let sys = ReplicatedSystem::new(&fig1_machines(), 1, FaultModel::Byzantine).unwrap();
        assert_eq!(sys.num_backups(), 4);
    }

    #[test]
    fn crash_recovery_copies_from_a_survivor() {
        let mut sys = ReplicatedSystem::new(&fig1_machines(), 1, FaultModel::Crash).unwrap();
        sys.apply_workload(&Workload::from_bits("00110"));
        let before = sys.primary_state(0);
        sys.crash(0, 0).unwrap();
        let states = sys.recover().unwrap();
        assert_eq!(states[0], before);
        assert_eq!(sys.primary_state(0), before);
        assert_eq!(sys.metrics().recoveries, 1);
    }

    #[test]
    fn byzantine_recovery_outvotes_a_liar() {
        let mut sys = ReplicatedSystem::new(&fig1_machines(), 1, FaultModel::Byzantine).unwrap();
        sys.apply_workload(&Workload::from_bits("010"));
        let truth = sys.primary_state(0);
        let lie = StateId((truth.index() + 1) % 3);
        sys.corrupt(0, 1, lie).unwrap();
        let states = sys.recover().unwrap();
        assert_eq!(states[0], truth);
    }

    #[test]
    fn too_many_crashes_in_one_group_fail() {
        let mut sys = ReplicatedSystem::new(&fig1_machines(), 1, FaultModel::Crash).unwrap();
        sys.apply_workload(&Workload::from_bits("01"));
        sys.crash(0, 0).unwrap();
        sys.crash(0, 1).unwrap();
        assert!(sys.recover().is_err());
        assert_eq!(sys.metrics().failed_recoveries, 1);
    }

    #[test]
    fn error_paths() {
        let mut sys = ReplicatedSystem::new(&fig1_machines(), 1, FaultModel::Crash).unwrap();
        assert!(sys.crash(9, 0).is_err());
        assert!(sys.crash(0, 9).is_err());
        assert!(sys.corrupt(0, 0, StateId(99)).is_err());
        assert!(ReplicatedSystem::new(&[], 1, FaultModel::Crash).is_err());
    }

    #[test]
    fn fusion_backup_state_space_is_smaller_than_replication() {
        // The headline comparison of the paper on the Fig. 1 counters.
        let machines = fig1_machines();
        let fused = crate::FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        let replicated = ReplicatedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        assert!(fused.fusion_state_space() < replicated.backup_state_space());
    }
}
