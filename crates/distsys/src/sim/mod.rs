//! Deterministic simulation of the distributed system, in the style of
//! FoundationDB's simulation testing: a virtual clock, a seeded generator,
//! and an in-memory message network with drop/delay/reorder/duplicate knobs
//! and scripted crash points — all advanced by a single-threaded cooperative
//! scheduler, so any workload × fault-schedule run replays **byte-identical**
//! from one `u64` seed.
//!
//! ```
//! use fsm_distsys::{Environment, GroupConfig, Seeded};
//! use fsm_machines::fig1_machines;
//!
//! let machines = fig1_machines();
//! let run = |seed: u64| {
//!     let env = Seeded(seed).sim().drop_probability(0.2).build();
//!     let mut group = env.spawn_group(&machines, &GroupConfig::new());
//!     let w = Seeded(seed).workload_over_machines(&machines, 40);
//!     group.apply_batch(w.events());
//!     let _ = group.collect_reports();
//!     env.trace_hash()
//! };
//! // Same seed, same world — bit for bit.
//! assert_eq!(run(7), run(7));
//! ```
//!
//! The module's pieces:
//!
//! * [`SimRng`] / [`Seeded`] — the seeded generator and the crate-wide
//!   seeded-construction convention.
//! * [`SimConfig`] — builder for a simulated world (delays, chaos
//!   probabilities, scripted crash points).
//! * [`SimEnvironment`] / [`SimServerGroup`] — the
//!   [`Environment`]/[`ServerGroup`] implementations
//!   backed by the virtual world.
//! * [`NetStats`] / [`TraceEvent`] — observability: what the network did,
//!   and the full replayable history.
//! * [`sweep`] — the scenario harness driving hundreds of seeded
//!   workload × fault-schedule runs and asserting recovery correctness.

mod net;
mod rng;
pub mod sweep;
mod trace;

pub use net::NetStats;
pub use rng::{Seeded, SimRng};
pub use trace::{Trace, TraceEvent};

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use fsm_dfsm::{Dfsm, Event, StateId};
use fsm_fusion_core::MachineReport;
use rand::RngCore;

use crate::env::{Environment, GroupConfig, ServerGroup};
use crate::error::Result;
use crate::recovery::ReplayStats;
use crate::server::Server;
use crate::storage::SharedStore;
use net::{Chaos, Payload, SimWorld};

/// Builder for a deterministic simulated world.
///
/// All knobs default to a quiet network: one-way delays of 0.5–5 virtual
/// milliseconds and no drops, duplicates, reorder jitter or crash points.
/// Probabilities are clamped to `[0, 0.9]` — a lossy network must still
/// eventually deliver, or report collection could never converge.
#[derive(Debug, Clone)]
pub struct SimConfig {
    seed: u64,
    min_delay: Duration,
    max_delay: Duration,
    drop: f64,
    duplicate: f64,
    reorder: f64,
    torn: f64,
    crash_points: Vec<(Duration, usize)>,
}

impl SimConfig {
    /// A quiet-network configuration for `seed`.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            min_delay: Duration::from_micros(500),
            max_delay: Duration::from_millis(5),
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            torn: 0.0,
            crash_points: Vec::new(),
        }
    }

    /// The seed this world is derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the one-way message delay range (virtual time).
    pub fn delay(mut self, min: Duration, max: Duration) -> Self {
        self.min_delay = min;
        self.max_delay = max.max(min);
        self
    }

    /// Probability that a report reply is dropped.
    pub fn drop_probability(mut self, p: f64) -> Self {
        self.drop = p.clamp(0.0, 0.9);
        self
    }

    /// Probability that a report reply is duplicated.
    pub fn duplicate_probability(mut self, p: f64) -> Self {
        self.duplicate = p.clamp(0.0, 0.9);
        self
    }

    /// Probability that a report reply gets extra jitter pushing it past
    /// later replies.
    pub fn reorder_probability(mut self, p: f64) -> Self {
        self.reorder = p.clamp(0.0, 0.9);
        self
    }

    /// Probability that killing a *durable* process tears the final
    /// write-ahead-log frame (a partial write at the moment of the power
    /// failure).  May go all the way to 1.0 — a torn tail never blocks
    /// recovery, it only drops the final unacknowledged event.
    pub fn torn_write_probability(mut self, p: f64) -> Self {
        self.torn = p.clamp(0.0, 1.0);
        self
    }

    /// Schedules a scripted process kill: server `server` of the first
    /// spawned group dies at virtual time `at` (a power failure — pending
    /// commands are lost with it).
    pub fn crash_point(mut self, at: Duration, server: usize) -> Self {
        self.crash_points.push((at, server));
        self
    }

    /// Builds the simulated environment.
    pub fn build(self) -> SimEnvironment {
        let chaos = Chaos {
            min_delay: self.min_delay.as_nanos() as u64,
            max_delay: self.max_delay.as_nanos() as u64,
            drop: self.drop,
            duplicate: self.duplicate,
            reorder: self.reorder,
            torn: self.torn,
        };
        let crash_points = self
            .crash_points
            .iter()
            .map(|(at, s)| (at.as_nanos() as u64, *s))
            .collect();
        SimEnvironment {
            world: Rc::new(RefCell::new(SimWorld::new(self.seed, chaos, crash_points))),
            seed: self.seed,
        }
    }
}

/// The deterministic environment: virtual clock, seeded randomness and
/// simulated server groups, all sharing one virtual world.
///
/// Single-threaded by construction (`Rc`/`RefCell`, no `Send`): every
/// spawned "process" is cooperatively scheduled by the world's message
/// queue, which is what makes replay exact.
#[derive(Debug)]
pub struct SimEnvironment {
    world: Rc<RefCell<SimWorld>>,
    seed: u64,
}

impl std::fmt::Debug for SimWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorld").finish_non_exhaustive()
    }
}

impl SimEnvironment {
    /// The seed this world was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The rolling hash over the world's full event trace so far.
    pub fn trace_hash(&self) -> u64 {
        self.world.borrow().trace.hash()
    }

    /// Number of trace events recorded so far.
    pub fn trace_len(&self) -> usize {
        self.world.borrow().trace.len()
    }

    /// A snapshot of the full event trace (cloned; meant for tests and
    /// debugging, not hot paths).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.world.borrow().trace.events().to_vec()
    }

    /// What the network did so far.
    pub fn net_stats(&self) -> NetStats {
        self.world.borrow().stats
    }

    /// Records a caller annotation into the trace (and its hash), so
    /// harnesses can fold decode outcomes into the replay-identity check.
    pub fn note(&self, code: u64, data: &[u64]) {
        self.world.borrow_mut().trace.record(TraceEvent::Note {
            code,
            data: data.to_vec(),
        });
    }

    /// Delivers every message still in flight, at any virtual time.
    pub fn run_until_idle(&self) {
        self.world.borrow_mut().run_until_idle();
    }
}

impl Environment for SimEnvironment {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.world.borrow().now())
    }

    fn sleep(&self, duration: Duration) {
        let mut w = self.world.borrow_mut();
        let target = w.now().saturating_add(duration.as_nanos() as u64);
        w.advance_to(target);
    }

    fn next_u64(&self) -> u64 {
        self.world.borrow_mut().user_rng.next_u64()
    }

    fn spawn_group(&self, machines: &[Dfsm], config: &GroupConfig) -> Box<dyn ServerGroup> {
        let group = self
            .world
            .borrow_mut()
            .spawn_group(machines, config.durability());
        Box::new(SimServerGroup {
            world: Rc::clone(&self.world),
            group,
            collect_timeout: config.resolved_collect_timeout().as_nanos() as u64,
        })
    }

    fn store(&self) -> SharedStore {
        self.world.borrow().store.clone()
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

/// A simulated server group: the [`ServerGroup`] implementation whose
/// processes live inside a [`SimEnvironment`]'s world.
pub struct SimServerGroup {
    world: Rc<RefCell<SimWorld>>,
    group: usize,
    collect_timeout: u64,
}

impl ServerGroup for SimServerGroup {
    fn len(&self) -> usize {
        self.world.borrow().group_len(self.group)
    }

    fn apply_event(&mut self, event: &Event) {
        let mut w = self.world.borrow_mut();
        w.broadcast(self.group, || Payload::Apply(event.clone()));
    }

    fn apply_event_to(&mut self, i: usize, event: &Event) {
        self.world
            .borrow_mut()
            .send_command(self.group, i, Payload::Apply(event.clone()));
    }

    fn apply_batch(&mut self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        let batch: Rc<[Event]> = events.into();
        let mut w = self.world.borrow_mut();
        w.broadcast(self.group, || Payload::Batch(Rc::clone(&batch)));
    }

    fn apply_batch_to(&mut self, i: usize, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        self.world
            .borrow_mut()
            .send_command(self.group, i, Payload::Batch(events.into()));
    }

    fn crash(&mut self, i: usize) {
        self.world
            .borrow_mut()
            .send_command(self.group, i, Payload::Crash);
    }

    fn corrupt(&mut self, i: usize, state: StateId) {
        self.world
            .borrow_mut()
            .send_command(self.group, i, Payload::Corrupt(state));
    }

    fn restore(&mut self, i: usize, state: StateId) {
        self.world
            .borrow_mut()
            .send_command(self.group, i, Payload::Restore(state));
    }

    fn kill_process(&mut self, i: usize) {
        self.world
            .borrow_mut()
            .send_command(self.group, i, Payload::Kill);
    }

    fn restart_process(&mut self, i: usize) -> Result<ReplayStats> {
        let mut world = self.world.borrow_mut();
        // Deliver everything in flight first: the kill that took the process
        // down — and any command racing it — must land before the revival,
        // exactly as an operator restarting a crashed node observes it.
        world.run_until_idle();
        world.restart(self.group, i)
    }

    fn resync(&mut self, i: usize, seq: u64, state: StateId) -> Result<()> {
        self.world
            .borrow_mut()
            .send_command(self.group, i, Payload::Resync(seq, state));
        Ok(())
    }

    fn try_collect_reports(&mut self) -> Vec<Option<MachineReport>> {
        self.world
            .borrow_mut()
            .collect(self.group, self.collect_timeout)
    }

    fn shutdown(self: Box<Self>) -> Vec<Server> {
        self.world.borrow_mut().shutdown_group(self.group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::DEFAULT_COLLECT_TIMEOUT;
    use fsm_machines::fig1_machines;

    fn bits(s: &str) -> Vec<Event> {
        s.chars().map(|c| Event::new(c.to_string())).collect()
    }

    #[test]
    fn quiet_sim_group_matches_direct_execution() {
        let machines = fig1_machines();
        let env = SimConfig::new(3).build();
        assert_eq!(env.seed(), 3);
        assert_eq!(env.name(), "sim");
        let mut group = env.spawn_group(&machines, &GroupConfig::new());
        assert_eq!(group.len(), 2);
        assert!(!group.is_empty());
        let events = bits("00110");
        group.apply_batch(&events);
        let reports = group.collect_reports().unwrap();
        assert_eq!(reports[0], MachineReport::State(0));
        assert_eq!(reports[1], MachineReport::State(2));
        let servers = group.shutdown();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[0].events_seen(), 5);
        assert!(env.trace_len() > 0);
    }

    #[test]
    fn same_seed_same_trace_different_seed_different_trace() {
        let run = |seed: u64| {
            let env = SimConfig::new(seed)
                .drop_probability(0.2)
                .duplicate_probability(0.2)
                .reorder_probability(0.3)
                .build();
            let mut group = env.spawn_group(&fig1_machines(), &GroupConfig::new());
            group.apply_batch(&bits("0110100101"));
            group.crash(0);
            let _ = group.try_collect_reports();
            let _ = group.shutdown();
            (env.trace_hash(), env.trace_events())
        };
        let (h1, t1) = run(99);
        let (h2, t2) = run(99);
        assert_eq!(h1, h2);
        assert_eq!(t1, t2);
        let (h3, _) = run(100);
        assert_ne!(h1, h3);
    }

    #[test]
    fn modeled_crash_reports_crashed_but_killed_process_goes_missing() {
        let env = SimConfig::new(5).build();
        let mut group = env.spawn_group(&fig1_machines(), &GroupConfig::new());
        group.apply_event(&Event::new("0"));
        group.crash(0);
        group.kill_process(1);
        let partial = group.try_collect_reports();
        assert_eq!(partial[0], Some(MachineReport::Crashed));
        assert_eq!(partial[1], None);
        match group.collect_reports() {
            Err(crate::DistsysError::MissingReports { servers }) => assert_eq!(servers, vec![1]),
            other => panic!("expected MissingReports, got {other:?}"),
        }
        // The killed process has no final value, like a dead thread.
        let servers = group.shutdown();
        assert_eq!(servers.len(), 1);
        assert_eq!(env.net_stats().killed, 1);
    }

    #[test]
    fn scripted_crash_point_kills_at_virtual_time() {
        let env = SimConfig::new(8)
            .crash_point(Duration::from_millis(1), 0)
            .build();
        let mut group = env.spawn_group(&fig1_machines(), &GroupConfig::new());
        // The kill fires at t=1ms regardless of the command FIFO.
        group.apply_batch(&bits("0101"));
        let partial = group.try_collect_reports();
        assert_eq!(partial[0], None);
        assert!(partial[1].is_some());
    }

    #[test]
    fn collection_timeout_advances_virtual_time_not_wall_time() {
        let env = SimConfig::new(4).build();
        let mut group = env.spawn_group(&fig1_machines(), &GroupConfig::new());
        group.kill_process(0);
        let wall = std::time::Instant::now();
        let partial = group.try_collect_reports();
        // The 30s default deadline elapsed virtually, nearly instantly in
        // wall time.
        assert!(wall.elapsed() < Duration::from_secs(5));
        assert!(env.now() >= DEFAULT_COLLECT_TIMEOUT);
        assert_eq!(partial[0], None);
    }

    #[test]
    fn sleep_and_user_rng_are_deterministic() {
        let env = SimConfig::new(12).build();
        let t0 = env.now();
        env.sleep(Duration::from_millis(7));
        assert_eq!(env.now() - t0, Duration::from_millis(7));
        let a = env.next_u64();
        let env2 = SimConfig::new(12).build();
        assert_eq!(env2.next_u64(), a);
        // Notes fold into the hash.
        let before = env.trace_hash();
        env.note(1, &[2, 3]);
        assert_ne!(env.trace_hash(), before);
    }
}
