//! Seeded randomness for deterministic simulation, and the [`Seeded`]
//! constructor convention that unifies the crate's scattered seeded entry
//! points.
//!
//! [`SimRng`] is SplitMix64 with exactly the same constants as the
//! workspace's `rand::rngs::StdRng`, so every legacy seeded constructor
//! (`Workload::uniform`, `FaultPlan::random_crashes`,
//! `SensorNetwork::observe_randomly`, …) can delegate here without changing
//! the event streams historical seeds produce.

use fsm_dfsm::{Alphabet, Dfsm, Event};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

use crate::fault::{FaultKind, FaultPlan, ScheduledFault};
use crate::workload::Workload;

/// The SplitMix64 finalizer (Steele, Lea, Flood 2014): a bijective mixing
/// function used both as the generator step and to derive substream seeds.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The simulation's pseudo-random generator: SplitMix64, bit-identical to
/// the workspace `StdRng` stream for the same seed.
///
/// Lives in this crate (rather than reusing `StdRng` directly) so the
/// deterministic runtime owns its generator: simulation replay depends on
/// this exact stream, which is pinned by tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// A generator whose stream is a deterministic function of `seed`.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }
}

impl SeedableRng for SimRng {
    fn seed_from_u64(state: u64) -> Self {
        SimRng::new(state)
    }
}

impl RngCore for SimRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix(self.state)
    }
}

/// A `u64` seed wrapped as the crate's one seeded-construction convention.
///
/// Every randomized artifact — workloads, fault plans, observation
/// sequences, whole simulated worlds — is derived from a `Seeded` value, so
/// "the run with seed 7" names one reproducible experiment end to end:
///
/// ```
/// use fsm_distsys::Seeded;
/// use fsm_machines::fig1_machines;
///
/// let machines = fig1_machines();
/// let w1 = Seeded(7).workload_over_machines(&machines, 50);
/// let w2 = Seeded(7).workload_over_machines(&machines, 50);
/// assert_eq!(w1.events(), w2.events());
/// ```
///
/// The legacy entry points (`Workload::uniform`, `FaultPlan::random_*`,
/// `SensorNetwork::observe_randomly`/`random_workload`) are thin shims over
/// these methods and keep producing the exact streams they always did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seeded(pub u64);

impl Seeded {
    /// The raw generator for this seed.
    pub fn rng(self) -> SimRng {
        SimRng::new(self.0)
    }

    /// Derives an independent substream: drawing from `split(0)` does not
    /// perturb what `split(1)` produces.  Used to give workload generation,
    /// fault schedules and network chaos their own streams within one
    /// scenario seed.
    pub fn split(self, stream: u64) -> Seeded {
        Seeded(mix(self.0
            ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ 0xA076_1D64_78BD_642F))
    }

    /// A [`SimConfig`](crate::sim::SimConfig) for this seed: the entry point
    /// for building a whole deterministic world from one number.
    pub fn sim(self) -> crate::sim::SimConfig {
        crate::sim::SimConfig::new(self.0)
    }

    /// `length` events drawn uniformly from `alphabet`
    /// ([`Workload::uniform`]'s stream).
    pub fn uniform_workload(self, alphabet: &Alphabet, length: usize) -> Workload {
        let mut rng = self.rng();
        Workload::scripted((0..length).map(|_| {
            let i = rng.gen_range(0..alphabet.len());
            alphabet.events()[i].clone()
        }))
    }

    /// `length` events drawn uniformly from the union alphabet of
    /// `machines` ([`Workload::uniform_over_machines`]'s stream).
    pub fn workload_over_machines(self, machines: &[Dfsm], length: usize) -> Workload {
        let alphabet = Alphabet::union_all(machines.iter().map(|m| m.alphabet()));
        self.uniform_workload(&alphabet, length)
    }

    /// `length` events drawn from `choices` with the given relative weights
    /// ([`Workload::weighted`]'s stream).
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty or all weights are zero.
    pub fn weighted_workload(self, choices: &[(Event, u32)], length: usize) -> Workload {
        assert!(!choices.is_empty(), "weighted workload needs choices");
        let total: u64 = choices.iter().map(|(_, w)| *w as u64).sum();
        assert!(total > 0, "weights must not all be zero");
        let mut rng = self.rng();
        Workload::scripted((0..length).map(|_| {
            let mut pick = rng.gen_range(0..total);
            for (e, w) in choices {
                if pick < *w as u64 {
                    return e.clone();
                }
                pick -= *w as u64;
            }
            choices.last().expect("non-empty").0.clone()
        }))
    }

    /// A plan crashing `count` distinct servers at random points of a
    /// `workload_len`-event run ([`FaultPlan::random_crashes`]'s stream).
    pub fn crash_plan(self, num_servers: usize, count: usize, workload_len: usize) -> FaultPlan {
        self.fault_plan(num_servers, count, workload_len, |_, _| FaultKind::Crash)
    }

    /// A plan corrupting `count` distinct servers with the placeholder
    /// "current state + 1" corruption that only
    /// [`FaultPlan::execute`] against a
    /// [`FusedSystem`](crate::FusedSystem) can resolve
    /// ([`FaultPlan::random_corruptions`]'s stream).
    pub fn corruption_plan(
        self,
        num_servers: usize,
        count: usize,
        workload_len: usize,
    ) -> FaultPlan {
        self.fault_plan(num_servers, count, workload_len, |_, _| {
            FaultKind::Corrupt(fsm_dfsm::StateId(usize::MAX))
        })
    }

    /// A plan corrupting `count` distinct servers to *explicit* in-range
    /// states (`machine_sizes[server]` states each), executable against any
    /// [`ServerGroup`](crate::ServerGroup) via [`FaultPlan::execute_in`] —
    /// no placeholder resolution needed.
    pub fn explicit_corruption_plan(
        self,
        machine_sizes: &[usize],
        count: usize,
        workload_len: usize,
    ) -> FaultPlan {
        self.fault_plan(machine_sizes.len(), count, workload_len, |rng, server| {
            FaultKind::Corrupt(fsm_dfsm::StateId(rng.gen_range(0..machine_sizes[server])))
        })
    }

    /// Shared fault-plan core: shuffle the servers, take `count` victims,
    /// draw an injection position (and a kind) for each, sort by position.
    fn fault_plan(
        self,
        num_servers: usize,
        count: usize,
        workload_len: usize,
        mut kind: impl FnMut(&mut SimRng, usize) -> FaultKind,
    ) -> FaultPlan {
        let mut rng = self.rng();
        let mut servers: Vec<usize> = (0..num_servers).collect();
        servers.shuffle(&mut rng);
        let mut faults: Vec<ScheduledFault> = servers
            .into_iter()
            .take(count)
            .map(|server| ScheduledFault {
                after_event: rng.gen_range(0..=workload_len),
                server,
                kind: kind(&mut rng, server),
            })
            .collect();
        faults.sort_by_key(|f| f.after_event);
        FaultPlan { faults }
    }

    /// `count` indices drawn uniformly from `0..num_choices` — the
    /// observation stream of
    /// [`SensorNetwork::observe_randomly`](crate::SensorNetwork::observe_randomly)
    /// and
    /// [`SensorNetwork::random_workload`](crate::SensorNetwork::random_workload).
    ///
    /// # Panics
    ///
    /// Panics if `num_choices` is zero and `count` is not.
    pub fn observations(self, num_choices: usize, count: usize) -> Vec<usize> {
        let mut rng = self.rng();
        (0..count).map(|_| rng.gen_range(0..num_choices)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn sim_rng_matches_the_workspace_std_rng_stream() {
        // The whole legacy-shim story rests on this: same seed, same bits.
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut a = SimRng::new(seed);
            let mut b = StdRng::seed_from_u64(seed);
            for _ in 0..200 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let s = Seeded(9);
        assert_eq!(s.split(0), s.split(0));
        assert_ne!(s.split(0), s.split(1));
        assert_ne!(s.split(0).0, s.0);
        // Different parent seeds keep substreams apart too.
        assert_ne!(Seeded(1).split(3), Seeded(2).split(3));
    }

    #[test]
    fn explicit_corruption_plan_stays_in_range() {
        let sizes = [3usize, 4, 5, 2];
        let plan = Seeded(11).explicit_corruption_plan(&sizes, 3, 40);
        assert_eq!(plan.len(), 3);
        for f in &plan.faults {
            match f.kind {
                FaultKind::Corrupt(s) => assert!(s.index() < sizes[f.server]),
                other => panic!("corruption plan produced {other:?}"),
            }
        }
    }

    #[test]
    fn observations_are_reproducible_and_in_range() {
        let a = Seeded(5).observations(7, 100);
        let b = Seeded(5).observations(7, 100);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 7));
    }
}
