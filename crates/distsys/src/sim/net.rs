//! The simulated world: virtual clock, message network and server
//! processes, all advanced deterministically from one seed.
//!
//! Every interaction between a driver and its servers goes through the
//! message queue: commands (events, faults, restores, report requests) and
//! report replies.  Commands model the paper's reliable totally-ordered
//! event broadcast, so they are delayed but never dropped or reordered
//! per-server; report *replies* travel the chaotic network and may be
//! dropped, delayed past other replies, or duplicated, according to the
//! configured knobs.  All of it is scheduled off one SplitMix64 stream, so
//! the same seed replays the same world byte for byte.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

use fsm_dfsm::{Dfsm, Event, StateId};
use fsm_fusion_core::MachineReport;
use rand::Rng;

use crate::error::{DistsysError, Result};
use crate::recovery::{DurabilityConfig, DurableServer, ProcessServer, ReplayStats};
use crate::server::Server;
use crate::sim::rng::SimRng;
use crate::sim::trace::{Trace, TraceEvent};
use crate::storage::{shared, MemStore, SharedStore};
use crate::wal;

/// Counters of what the simulated network did — used by tests to assert
/// chaos coverage ("this sweep actually dropped/reordered something").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the network (including ones then dropped).
    pub sent: u64,
    /// Messages delivered to a destination.
    pub delivered: u64,
    /// Messages dropped by the chaos knob.
    pub dropped: u64,
    /// Duplicate copies injected by the chaos knob.
    pub duplicated: u64,
    /// Replies delivered after a later-sent reply to the same collector.
    pub reordered: u64,
    /// Simulated processes killed.
    pub killed: u64,
    /// Kills that tore the final write-ahead-log frame (partial-write
    /// injection).
    pub torn_tails: u64,
    /// Killed durable processes brought back up from storage.
    pub restarts: u64,
}

impl NetStats {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &NetStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.killed += other.killed;
        self.torn_tails += other.torn_tails;
        self.restarts += other.restarts;
    }
}

/// Network chaos knobs, resolved from `SimConfig`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Chaos {
    /// Minimum one-way message delay, virtual nanoseconds.
    pub min_delay: u64,
    /// Maximum one-way message delay, virtual nanoseconds.
    pub max_delay: u64,
    /// Probability a report reply is dropped.
    pub drop: f64,
    /// Probability a report reply is duplicated.
    pub duplicate: f64,
    /// Probability a report reply gets extra jitter pushing it past later
    /// replies.
    pub reorder: f64,
    /// Probability a kill of a *durable* process tears the final
    /// write-ahead-log frame (partial write at power failure).
    pub torn: f64,
}

/// What a message carries.
pub(crate) enum Payload {
    Apply(Event),
    Batch(Rc<[Event]>),
    Crash,
    Corrupt(StateId),
    Restore(StateId),
    ReportRequest(u64),
    Reply {
        server: usize,
        generation: u64,
        report: MachineReport,
        /// Sequence number of the originating send (shared by duplicates),
        /// used for reorder accounting at the collector.
        sent_seq: u64,
    },
    Kill,
    /// Adopt a peer-decoded state at the group sequence number (the
    /// post-restart resync path; durable servers snapshot at `seq`).
    Resync(u64, StateId),
}

impl Payload {
    fn kind(&self) -> u8 {
        match self {
            Payload::Apply(_) => 0,
            Payload::Batch(_) => 1,
            Payload::Crash => 2,
            Payload::Corrupt(_) => 3,
            Payload::Restore(_) => 4,
            Payload::ReportRequest(_) => 5,
            Payload::Reply { .. } => 6,
            Payload::Kill => 7,
            Payload::Resync(..) => 8,
        }
    }
}

/// A message destination: a server's command queue, or a group's report
/// collector.
pub(crate) enum Dest {
    Server { group: usize, server: usize },
    Collector { group: usize },
}

/// A queued message.  Ordering (for the scheduler heap) is by delivery
/// time, tie-broken by the globally unique sequence number — which is what
/// makes the scheduler deterministic.
pub(crate) struct Msg {
    deliver_at: u64,
    seq: u64,
    dest: Dest,
    payload: Payload,
}

impl PartialEq for Msg {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Msg {}
impl PartialOrd for Msg {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Msg {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// One simulated process: a server (plain or durable) plus a liveness bit.
struct SimProcess {
    server: ProcessServer,
    alive: bool,
}

/// One spawned server group inside the world.
struct SimGroup {
    processes: Vec<SimProcess>,
    /// The machines the group runs, kept for restarting killed processes.
    machines: Vec<Dfsm>,
    /// Durability knobs if the group was spawned durable.
    durability: Option<DurabilityConfig>,
    /// Per-server FIFO floor: commands to a server are delivered strictly
    /// after every earlier command to it (reliable ordered delivery).
    fifo_floor: Vec<u64>,
    /// Replies received for this group's collector, drained by `collect`.
    inbox: Vec<(usize, u64, MachineReport)>,
    /// Current collection generation.
    generation: u64,
    /// Highest originating send-sequence delivered to the collector, for
    /// reorder accounting.
    last_reply_seq: u64,
}

/// The deterministic world: virtual clock, scheduler queue, processes,
/// chaos stream, trace.
pub(crate) struct SimWorld {
    now: u64,
    next_seq: u64,
    chaos: Chaos,
    chaos_rng: SimRng,
    /// A second, independent stream for user-facing draws
    /// (`Environment::next_u64`), so workload generation does not perturb
    /// network scheduling.
    pub(crate) user_rng: SimRng,
    queue: BinaryHeap<Reverse<Msg>>,
    groups: Vec<SimGroup>,
    /// Scripted kill times (virtual ns, server index), consumed by the
    /// first group spawned.
    pending_crash_points: Vec<(u64, usize)>,
    /// The world's durable store: a deterministic in-memory map shared by
    /// all durable groups.  Held as a separate `Arc` so process code can
    /// write through it without re-borrowing the world.
    pub(crate) store: SharedStore,
    pub(crate) trace: Trace,
    pub(crate) stats: NetStats,
}

impl SimWorld {
    pub(crate) fn new(seed: u64, chaos: Chaos, crash_points: Vec<(u64, usize)>) -> Self {
        SimWorld {
            now: 0,
            next_seq: 0,
            chaos,
            chaos_rng: SimRng::new(seed ^ 0xC4A5_EED0_0000_0001),
            user_rng: SimRng::new(seed ^ 0x0B5E_55ED_0000_0002),
            queue: BinaryHeap::new(),
            groups: Vec::new(),
            pending_crash_points: crash_points,
            store: shared(MemStore::new()),
            trace: Trace::new(),
            stats: NetStats::default(),
        }
    }

    pub(crate) fn now(&self) -> u64 {
        self.now
    }

    pub(crate) fn group_len(&self, group: usize) -> usize {
        self.groups[group].processes.len()
    }

    /// Spawns a group of simulated processes; scripted crash points (if this
    /// is the first group) are scheduled as absolute-time kill messages that
    /// bypass the command FIFO — a power failure, not a graceful stop.
    pub(crate) fn spawn_group(
        &mut self,
        machines: &[Dfsm],
        durability: Option<&DurabilityConfig>,
    ) -> usize {
        let id = self.groups.len();
        let processes = machines
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let server = match durability {
                    None => ProcessServer::Plain(Server::new(m.clone())),
                    Some(cfg) => ProcessServer::Durable(
                        DurableServer::fresh(
                            m.clone(),
                            self.store.clone(),
                            format!("sim-g{id}-s{i}"),
                            cfg,
                        )
                        .expect("in-memory store cannot fail on fresh spawn"),
                    ),
                };
                SimProcess {
                    server,
                    alive: true,
                }
            })
            .collect();
        self.groups.push(SimGroup {
            processes,
            machines: machines.to_vec(),
            durability: durability.cloned(),
            fifo_floor: vec![0; machines.len()],
            inbox: Vec::new(),
            generation: 0,
            last_reply_seq: 0,
        });
        self.trace.record(TraceEvent::Spawn {
            group: id,
            servers: machines.len(),
        });
        if id == 0 {
            for (at, server) in std::mem::take(&mut self.pending_crash_points) {
                if server >= machines.len() {
                    continue;
                }
                let seq = self.bump_seq();
                self.trace.record(TraceEvent::Send {
                    seq,
                    at: self.now,
                    group: id,
                    server,
                    kind: Payload::Kill.kind(),
                    deliver_at: at,
                });
                self.stats.sent += 1;
                self.queue.push(Reverse(Msg {
                    deliver_at: at.max(self.now),
                    seq,
                    dest: Dest::Server { group: id, server },
                    payload: Payload::Kill,
                }));
            }
        }
        id
    }

    fn bump_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    fn sample_delay(&mut self) -> u64 {
        let Chaos {
            min_delay,
            max_delay,
            ..
        } = self.chaos;
        if max_delay <= min_delay {
            min_delay
        } else {
            self.chaos_rng.gen_range(min_delay..=max_delay)
        }
    }

    /// Sends a command to one server: reliable, per-server FIFO, delayed.
    pub(crate) fn send_command(&mut self, group: usize, server: usize, payload: Payload) {
        let seq = self.bump_seq();
        let delay = self.sample_delay();
        let floor = self.groups[group].fifo_floor[server];
        let deliver_at = (self.now + delay).max(floor + 1);
        self.groups[group].fifo_floor[server] = deliver_at;
        self.stats.sent += 1;
        self.trace.record(TraceEvent::Send {
            seq,
            at: self.now,
            group,
            server,
            kind: payload.kind(),
            deliver_at,
        });
        self.queue.push(Reverse(Msg {
            deliver_at,
            seq,
            dest: Dest::Server { group, server },
            payload,
        }));
    }

    /// Broadcasts a command to every server of a group.
    pub(crate) fn broadcast(&mut self, group: usize, mut payload: impl FnMut() -> Payload) {
        for server in 0..self.groups[group].processes.len() {
            self.send_command(group, server, payload());
        }
    }

    /// Sends a report reply back to the group's collector through the
    /// chaotic network: it may be dropped, jittered past later replies, or
    /// duplicated.
    fn send_reply(&mut self, group: usize, server: usize, generation: u64, report: MachineReport) {
        let seq = self.bump_seq();
        let mut delay = self.sample_delay();
        if self.chaos.reorder > 0.0 && self.chaos_rng.gen_bool(self.chaos.reorder) {
            // Extra jitter of up to 4 max-delays: enough to land after
            // replies sent later.
            delay += self
                .chaos_rng
                .gen_range(0..=self.chaos.max_delay.saturating_mul(4));
        }
        let deliver_at = self.now + delay;
        self.stats.sent += 1;
        self.trace.record(TraceEvent::Send {
            seq,
            at: self.now,
            group,
            server,
            kind: 6,
            deliver_at,
        });
        if self.chaos.drop > 0.0 && self.chaos_rng.gen_bool(self.chaos.drop) {
            self.stats.dropped += 1;
            self.trace.record(TraceEvent::Drop { seq });
        } else {
            self.queue.push(Reverse(Msg {
                deliver_at,
                seq,
                dest: Dest::Collector { group },
                payload: Payload::Reply {
                    server,
                    generation,
                    report: report.clone(),
                    sent_seq: seq,
                },
            }));
        }
        if self.chaos.duplicate > 0.0 && self.chaos_rng.gen_bool(self.chaos.duplicate) {
            let dup = self.bump_seq();
            let dup_delay = self.sample_delay();
            self.stats.duplicated += 1;
            self.trace.record(TraceEvent::Duplicate { orig: seq, dup });
            self.queue.push(Reverse(Msg {
                deliver_at: self.now + dup_delay,
                seq: dup,
                dest: Dest::Collector { group },
                payload: Payload::Reply {
                    server,
                    generation,
                    report,
                    sent_seq: seq,
                },
            }));
        }
    }

    /// Delivers the next due message, if any is scheduled at or before
    /// `limit`.  Returns whether a message was delivered.
    pub(crate) fn step(&mut self, limit: u64) -> bool {
        match self.queue.peek() {
            Some(Reverse(m)) if m.deliver_at <= limit => {}
            _ => return false,
        }
        let Reverse(msg) = self.queue.pop().expect("peeked");
        self.now = self.now.max(msg.deliver_at);
        self.stats.delivered += 1;
        self.trace.record(TraceEvent::Deliver {
            seq: msg.seq,
            at: self.now,
        });
        match msg.dest {
            Dest::Server { group, server } => {
                // Compute any reply outside the borrow of the process table.
                let mut reply = None;
                {
                    let g = &mut self.groups[group];
                    let Some(p) = g.processes.get_mut(server) else {
                        return true;
                    };
                    if !p.alive {
                        // A dead process consumes nothing; the message is
                        // lost at its door.
                        return true;
                    }
                    match msg.payload {
                        Payload::Apply(e) => {
                            p.server.apply(&e);
                            self.trace.record(TraceEvent::Apply {
                                group,
                                server,
                                state: p.server.server().current_state().index() as u64,
                            });
                        }
                        Payload::Batch(events) => {
                            for e in events.iter() {
                                p.server.apply(e);
                                self.trace.record(TraceEvent::Apply {
                                    group,
                                    server,
                                    state: p.server.server().current_state().index() as u64,
                                });
                            }
                        }
                        Payload::Crash => {
                            p.server.server_mut().crash();
                            self.trace.record(TraceEvent::Crash { group, server });
                        }
                        Payload::Corrupt(s) => {
                            p.server.server_mut().corrupt(s);
                            self.trace.record(TraceEvent::Corrupt {
                                group,
                                server,
                                state: s.index() as u64,
                            });
                        }
                        Payload::Restore(s) => {
                            p.server.server_mut().restore(s);
                            self.trace.record(TraceEvent::Restore {
                                group,
                                server,
                                state: s.index() as u64,
                            });
                        }
                        Payload::Resync(seq, s) => {
                            match p.server.resync(seq, s) {
                                Ok(()) => {}
                                Err(DistsysError::NotDurable { .. }) => {
                                    p.server.server_mut().restore(s)
                                }
                                Err(e) => panic!("sim resync failed: {e}"),
                            }
                            self.trace.record(TraceEvent::Resync {
                                group,
                                server,
                                seq,
                                state: s.index() as u64,
                            });
                        }
                        Payload::ReportRequest(generation) => {
                            let report = p.server.server().report();
                            self.trace.record(TraceEvent::Report {
                                group,
                                server,
                                generation,
                                state: match &report {
                                    MachineReport::Crashed => u64::MAX,
                                    MachineReport::State(s) => *s as u64,
                                },
                            });
                            reply = Some((generation, report));
                        }
                        Payload::Kill => {
                            p.alive = false;
                            self.stats.killed += 1;
                            self.trace.record(TraceEvent::Kill { group, server });
                            // Torn-write injection: with probability `torn`
                            // the power failure interrupts an in-flight WAL
                            // append, leaving a partial final frame on
                            // storage.  Only durable processes draw from the
                            // chaos stream here, so plain-group seeds replay
                            // exactly as before this knob existed.
                            if self.chaos.torn > 0.0
                                && p.server.is_durable()
                                && self.chaos_rng.gen_bool(self.chaos.torn)
                            {
                                if let Some(id) = p.server.durable_id() {
                                    let name = wal::wal_name(id);
                                    let dropped =
                                        tear_wal_tail(&self.store, &name, &mut self.chaos_rng);
                                    if dropped > 0 {
                                        self.stats.torn_tails += 1;
                                        self.trace.record(TraceEvent::TornTail {
                                            group,
                                            server,
                                            dropped: dropped as u64,
                                        });
                                    }
                                }
                            }
                        }
                        Payload::Reply { .. } => unreachable!("replies go to collectors"),
                    }
                }
                if let Some((generation, report)) = reply {
                    self.send_reply(group, server, generation, report);
                }
            }
            Dest::Collector { group } => {
                if let Payload::Reply {
                    server,
                    generation,
                    report,
                    sent_seq,
                } = msg.payload
                {
                    let g = &mut self.groups[group];
                    if sent_seq < g.last_reply_seq {
                        self.stats.reordered += 1;
                        self.trace.record(TraceEvent::Reorder { seq: sent_seq });
                    } else {
                        g.last_reply_seq = sent_seq;
                    }
                    g.inbox.push((server, generation, report));
                }
            }
        }
        true
    }

    /// Delivers everything currently scheduled, at any time.
    pub(crate) fn run_until_idle(&mut self) {
        while self.step(u64::MAX) {}
    }

    /// Advances the clock to `target`, delivering everything due on the
    /// way.
    pub(crate) fn advance_to(&mut self, target: u64) {
        while self.step(target) {}
        self.now = self.now.max(target);
    }

    /// One full report collection for a group: request a report from every
    /// server, run the world until all have answered or nothing more can
    /// arrive before the (virtual) deadline.  Servers that never answered —
    /// dead processes, or every reply copy dropped — yield `None`.
    ///
    /// Stale replies (from a previous collection that gave up) and
    /// duplicate replies are discarded, exactly like the threaded runner's
    /// generation filter.
    pub(crate) fn collect(&mut self, group: usize, timeout: u64) -> Vec<Option<MachineReport>> {
        let n = self.groups[group].processes.len();
        self.groups[group].generation += 1;
        let generation = self.groups[group].generation;
        self.trace.record(TraceEvent::CollectStart {
            group,
            generation,
            at: self.now,
        });
        for server in 0..n {
            self.send_command(group, server, Payload::ReportRequest(generation));
        }
        let deadline = self.now.saturating_add(timeout);
        let mut out: Vec<Option<MachineReport>> = vec![None; n];
        let mut received = 0usize;
        loop {
            let replies: Vec<(usize, u64, MachineReport)> =
                self.groups[group].inbox.drain(..).collect();
            for (server, gen, report) in replies {
                if gen == generation && out[server].is_none() {
                    out[server] = Some(report);
                    received += 1;
                }
            }
            if received == n {
                break;
            }
            if !self.step(deadline) {
                // Nothing else can arrive in time: the collection waits out
                // its deadline (virtual time is free) and gives up on the
                // missing servers.
                self.now = self.now.max(deadline);
                break;
            }
        }
        self.trace.record(TraceEvent::CollectDone {
            group,
            generation,
            missing: n - received,
            at: self.now,
        });
        out
    }

    /// Restarts a killed durable process from its durable state: snapshot +
    /// WAL-suffix replay (torn tail dropped), then the process is alive
    /// again at the returned [`ReplayStats::acked_seq`].
    pub(crate) fn restart(&mut self, group: usize, server: usize) -> Result<ReplayStats> {
        let (machine, id) = {
            let g = &self.groups[group];
            let Some(p) = g.processes.get(server) else {
                return Err(DistsysError::NoSuchServer {
                    server,
                    count: g.processes.len(),
                });
            };
            if p.alive {
                return Err(DistsysError::ServerUp { server });
            }
            let Some(id) = p.server.durable_id() else {
                return Err(DistsysError::NotDurable { server });
            };
            (g.machines[server].clone(), id.to_string())
        };
        let cfg = self.groups[group]
            .durability
            .clone()
            .expect("durable process implies durable group");
        let (recovered, stats) = DurableServer::recover(machine, self.store.clone(), id, &cfg)?;
        let p = &mut self.groups[group].processes[server];
        p.server = ProcessServer::Durable(recovered);
        p.alive = true;
        self.stats.restarts += 1;
        self.trace.record(TraceEvent::Restart {
            group,
            server,
            acked: stats.acked_seq,
        });
        Ok(stats)
    }

    /// Tears a group down after draining the queue; processes still alive
    /// yield their final `Server` values.
    pub(crate) fn shutdown_group(&mut self, group: usize) -> Vec<Server> {
        self.run_until_idle();
        self.groups[group]
            .processes
            .drain(..)
            .filter(|p| p.alive)
            .map(|p| p.server.into_server())
            .collect()
    }
}

/// Chops a seeded number of bytes off the final valid WAL frame (at least
/// one, possibly the whole frame), modeling a power failure mid-append.
/// Returns how many bytes were dropped (0 if the log has no frames).
fn tear_wal_tail(store: &SharedStore, name: &str, rng: &mut SimRng) -> usize {
    let bytes = crate::storage::with_store(store, |s| s.read(name))
        .expect("in-memory store cannot fail")
        .unwrap_or_default();
    let scan = wal::scan(&bytes);
    let Some(start) = scan.last_frame_start else {
        return 0;
    };
    // Keep anywhere from none to all-but-one byte of the final frame.
    let cut = rng.gen_range(start..bytes.len());
    wal::truncate(store, name, cut).expect("in-memory store cannot fail");
    bytes.len() - cut
}
