//! The simulation sweep harness: hundreds of seeded scenarios — workload ×
//! fault schedule × network chaos — each run deterministically and checked
//! for recovery correctness.
//!
//! One `u64` seed fully determines a [`Scenario`]: which machine set runs,
//! whether fusion or plain replication backs it up, the fault model and
//! budget `f`, the workload, which servers suffer modeled crashes /
//! Byzantine corruptions / outright process kills and when, and how hostile
//! the network is.  [`run_scenario`] plays the scenario inside a
//! [`SimEnvironment`], decodes the surviving
//! reports with the same machinery the paper prescribes (Algorithm 3 for
//! fusion, survivor-copy / majority vote for replication), restores the
//! group, and re-verifies — recording every divergence from the oracle as a
//! violation.  [`sweep`] aggregates a seed range into a [`SweepReport`],
//! which CI runs over ≥200 seeds in release mode.

use std::collections::HashSet;
use std::time::Duration;

use fsm_dfsm::{Dfsm, Executor, StateId};
use fsm_fusion_core::{FaultModel, MachineReport, ReplicaSet};
use rand::Rng;

use crate::env::{Environment, GroupConfig, ServerGroup};
use crate::fault::FaultKind;
use crate::recovery::{DurabilityConfig, RejoinPath};
use crate::scenario::{replay_oracle, SensorNetwork};
use crate::sim::{NetStats, Seeded, SimEnvironment, TraceEvent};
use crate::system::FusedSystem;

/// Substream of the scenario seed that draws the scenario parameters.
const STREAM_PARAMS: u64 = 0;
/// Substream that generates the workload.
const STREAM_WORKLOAD: u64 = 1;
/// Substream that generates the fault schedule.
const STREAM_FAULTS: u64 = 2;
/// Substream that draws the kill/rejoin schedule of recovery scenarios.
const STREAM_RECOVERY: u64 = 3;

/// How often a collection is retried when replies to live servers keep
/// getting dropped.  With per-reply drop probability ≤ 0.3 the chance of a
/// seed exhausting this is ≈ 0.3³² — and being deterministic, any seed that
/// did would fail reproducibly rather than flakily.
const MAX_COLLECT_ATTEMPTS: usize = 32;

/// Trace-note code recording the scenario parameters.
const NOTE_SCENARIO: u64 = 0x5CE0;
/// Trace-note code recording the decode outcome.
const NOTE_VERDICT: u64 = 0xFA57;
/// Trace-note code recording each rejoin decision of a recovery scenario.
const NOTE_REJOIN: u64 = 0x4E10;

/// Which backup strategy a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Fused backups (Algorithm 2 generation, Algorithm 3 recovery).
    Fusion,
    /// Plain replication (`f` or `2f` extra copies per machine).
    Replication,
}

/// The machine sets scenarios draw from.
#[derive(Debug, Clone, Copy)]
enum MachineSet {
    /// The paper's Figure 1 pair of mod-3 counters.
    Fig1,
    /// A heterogeneous pair: MESI cache-line protocol + mod-3 counter.
    MesiZc3,
    /// A 3-sensor network of mod-3 counters (the motivating scenario).
    Sensors3,
}

impl MachineSet {
    fn machines(self) -> Vec<Dfsm> {
        match self {
            MachineSet::Fig1 => fsm_machines::fig1_machines(),
            MachineSet::MesiZc3 => vec![fsm_machines::mesi(), fsm_machines::zero_counter_mod3()],
            MachineSet::Sensors3 => SensorNetwork::sensor_machines(3),
        }
    }
}

/// The preset table: every (machine set, backend, model, budget) combination
/// the sweep draws from.  Crash presets must satisfy `dmin > f`, Byzantine
/// presets `dmin > 2f`, for the fusion that Algorithm 2 generates.
const PRESETS: &[(&str, MachineSet, Backend, FaultModel, usize)] = &[
    (
        "fig1/fusion/crash/f1",
        MachineSet::Fig1,
        Backend::Fusion,
        FaultModel::Crash,
        1,
    ),
    (
        "fig1/fusion/crash/f2",
        MachineSet::Fig1,
        Backend::Fusion,
        FaultModel::Crash,
        2,
    ),
    (
        "fig1/fusion/byz/f1",
        MachineSet::Fig1,
        Backend::Fusion,
        FaultModel::Byzantine,
        1,
    ),
    (
        "mesi+zc3/fusion/crash/f1",
        MachineSet::MesiZc3,
        Backend::Fusion,
        FaultModel::Crash,
        1,
    ),
    (
        "mesi+zc3/fusion/byz/f1",
        MachineSet::MesiZc3,
        Backend::Fusion,
        FaultModel::Byzantine,
        1,
    ),
    (
        "sensors3/fusion/crash/f1",
        MachineSet::Sensors3,
        Backend::Fusion,
        FaultModel::Crash,
        1,
    ),
    (
        "fig1/replication/crash/f1",
        MachineSet::Fig1,
        Backend::Replication,
        FaultModel::Crash,
        1,
    ),
    (
        "mesi+zc3/replication/crash/f2",
        MachineSet::MesiZc3,
        Backend::Replication,
        FaultModel::Crash,
        2,
    ),
    (
        "sensors3/replication/byz/f1",
        MachineSet::Sensors3,
        Backend::Replication,
        FaultModel::Byzantine,
        1,
    ),
];

/// One fully specified simulation scenario, derived deterministically from a
/// seed by [`Scenario::from_seed`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed the scenario (and its simulated world) is derived from.
    pub seed: u64,
    /// Human-readable preset name (`"fig1/fusion/crash/f1"`, …).
    pub preset: &'static str,
    /// Fusion or replication.
    pub backend: Backend,
    /// Crash or Byzantine faults.
    pub fault_model: FaultModel,
    /// The fault budget the system is provisioned for.
    pub f: usize,
    /// The original machines.
    pub machines: Vec<Dfsm>,
    /// Number of workload events.
    pub workload_len: usize,
    /// Modeled crash faults to inject (server answers `Crashed`).
    pub modeled_crashes: usize,
    /// Process kills to inject (server stops answering entirely).
    pub kills: usize,
    /// Byzantine corruptions to inject (explicit in-range lies).
    pub corruptions: usize,
    /// Reply drop probability.
    pub drop: f64,
    /// Reply duplication probability.
    pub duplicate: f64,
    /// Reply reorder-jitter probability.
    pub reorder: f64,
}

impl Scenario {
    /// Derives the full scenario from one seed.  Fault counts never exceed
    /// the preset's budget `f`; crash budgets are split between modeled
    /// crashes and process kills, Byzantine budgets go entirely to explicit
    /// corruptions (a kill would *add* a crash fault on top of `f` lies).
    pub fn from_seed(seed: u64) -> Scenario {
        let mut rng = Seeded(seed).split(STREAM_PARAMS).rng();
        let (preset, set, backend, fault_model, f) = PRESETS[rng.gen_range(0..PRESETS.len())];
        let workload_len = rng.gen_range(20..=100usize);
        let budget = rng.gen_range(0..=f);
        let (modeled_crashes, kills, corruptions) = match fault_model {
            FaultModel::Crash => {
                let kills = rng.gen_range(0..=budget);
                (budget - kills, kills, 0)
            }
            FaultModel::Byzantine => (0, 0, budget),
        };
        let drop = rng.gen_range(0..=30u32) as f64 / 100.0;
        let duplicate = rng.gen_range(0..=20u32) as f64 / 100.0;
        let reorder = rng.gen_range(0..=30u32) as f64 / 100.0;
        Scenario {
            seed,
            preset,
            backend,
            fault_model,
            f,
            machines: set.machines(),
            workload_len,
            modeled_crashes,
            kills,
            corruptions,
            drop,
            duplicate,
            reorder,
        }
    }

    /// Total faults the scenario injects.
    pub fn total_faults(&self) -> usize {
        self.modeled_crashes + self.kills + self.corruptions
    }
}

/// What one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario seed.
    pub seed: u64,
    /// The preset that ran.
    pub preset: &'static str,
    /// Fusion or replication.
    pub backend: Backend,
    /// Crash or Byzantine.
    pub fault_model: FaultModel,
    /// The world's rolling trace hash at the end of the run — the replay
    /// identity: running the same seed again must reproduce it bit for bit.
    pub trace_hash: u64,
    /// Number of trace events recorded.
    pub trace_len: usize,
    /// What the network did.
    pub stats: NetStats,
    /// Faults actually injected.
    pub injected: usize,
    /// Process kills among them.
    pub kills: usize,
    /// Killed processes brought back up from durable state (recovery
    /// scenarios only; plain scenarios leave killed processes dark).
    pub restarts: usize,
    /// Rejoins that caught up by replaying the missed workload suffix.
    pub replays: usize,
    /// Rejoins that adopted a peer-decoded state (Algorithm 3 resync).
    pub peer_resyncs: usize,
    /// Virtual nanoseconds the world had consumed when the run finished.
    pub virtual_nanos: u64,
    /// Every detected divergence from the oracle (empty = correct run).
    pub violations: Vec<String>,
}

impl ScenarioOutcome {
    /// Whether the run recovered correctly end to end.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Collects reports, retrying while replies to *live* servers are missing
/// (dropped); killed servers are expected to stay silent.  Attempts are
/// merged: the servers are quiescent during collection, so a report heard
/// in any attempt is the server's final answer.
fn collect_until_settled(
    group: &mut dyn ServerGroup,
    killed: &HashSet<usize>,
) -> Vec<Option<MachineReport>> {
    let mut merged = group.try_collect_reports();
    for _ in 1..MAX_COLLECT_ATTEMPTS {
        let settled = merged
            .iter()
            .enumerate()
            .all(|(i, r)| r.is_some() || killed.contains(&i));
        if settled {
            break;
        }
        for (slot, heard) in merged.iter_mut().zip(group.try_collect_reports()) {
            if slot.is_none() {
                *slot = heard;
            }
        }
    }
    merged
}

/// Runs one scenario inside a fresh simulated world and checks it end to
/// end: inject the schedule, collect the surviving reports, decode (fusion's
/// Algorithm 3 or replication's per-group vote), restore every live server,
/// and re-verify against the oracle.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let env = Seeded(scenario.seed)
        .sim()
        .drop_probability(scenario.drop)
        .duplicate_probability(scenario.duplicate)
        .reorder_probability(scenario.reorder)
        .build();
    let mut violations: Vec<String> = Vec::new();

    let w = Seeded(scenario.seed)
        .split(STREAM_WORKLOAD)
        .workload_over_machines(&scenario.machines, scenario.workload_len);

    // The server roster the group runs, the oracle state every server must
    // end at, and (for fusion) the system holding Algorithm 3.
    let mut fusion_sys: Option<FusedSystem> = None;
    let (roster, expected): (Vec<Dfsm>, Vec<usize>) = match scenario.backend {
        Backend::Fusion => {
            match FusedSystem::new(&scenario.machines, scenario.f, scenario.fault_model) {
                Ok(mut sys) => {
                    sys.apply_workload(&w);
                    let roster = sys.all_machines();
                    let expected = (0..sys.num_servers())
                        .map(|i| sys.oracle_state_of(i).index())
                        .collect();
                    fusion_sys = Some(sys);
                    (roster, expected)
                }
                Err(e) => {
                    return failed_outcome(scenario, &env, format!("construction failed: {e}"));
                }
            }
        }
        Backend::Replication => {
            let per = scenario.fault_model.copies_per_machine(scenario.f) + 1;
            let mut roster = Vec::new();
            let mut expected = Vec::new();
            for m in &scenario.machines {
                let truth = replay_oracle(m, &w).index();
                for _ in 0..per {
                    roster.push(m.clone());
                    expected.push(truth);
                }
            }
            (roster, expected)
        }
    };
    let n = roster.len();

    env.note(
        NOTE_SCENARIO,
        &[
            matches!(scenario.backend, Backend::Replication) as u64,
            matches!(scenario.fault_model, FaultModel::Byzantine) as u64,
            scenario.f as u64,
            scenario.workload_len as u64,
            scenario.modeled_crashes as u64,
            scenario.kills as u64,
            scenario.corruptions as u64,
        ],
    );

    // Collections stay short: virtual time is free, but there is no point
    // waiting 30 virtual seconds per retry.
    let config = GroupConfig::new().collect_timeout(Duration::from_secs(2));
    let mut group = env.spawn_group(&roster, &config);

    // The fault schedule: distinct victims at seeded workload positions.
    // Crash budgets reuse the crash-plan stream with the first `kills`
    // entries escalated from modeled crash to process kill; Byzantine
    // budgets draw explicit in-range lies.
    let faults = Seeded(scenario.seed).split(STREAM_FAULTS);
    let plan = match scenario.fault_model {
        FaultModel::Crash => {
            faults.crash_plan(n, scenario.modeled_crashes + scenario.kills, w.len())
        }
        FaultModel::Byzantine => {
            let sizes: Vec<usize> = roster.iter().map(|m| m.size()).collect();
            faults.explicit_corruption_plan(&sizes, scenario.corruptions, w.len())
        }
    };
    let mut killed: HashSet<usize> = HashSet::new();
    let mut kill_budget = scenario.kills;
    let mut next_fault = 0usize;
    let mut fire = |group: &mut dyn ServerGroup, upto: usize| {
        while next_fault < plan.faults.len() && plan.faults[next_fault].after_event <= upto {
            let f = plan.faults[next_fault];
            match f.kind {
                FaultKind::Crash if kill_budget > 0 => {
                    kill_budget -= 1;
                    killed.insert(f.server);
                    group.kill_process(f.server);
                }
                FaultKind::Crash => group.crash(f.server),
                FaultKind::Corrupt(state) => group.corrupt(f.server, state),
                FaultKind::Kill => {
                    killed.insert(f.server);
                    group.kill_process(f.server);
                }
                FaultKind::Restart => {
                    if group.restart_process(f.server).is_ok() {
                        killed.remove(&f.server);
                    }
                }
            }
            next_fault += 1;
        }
    };
    fire(&mut *group, 0);
    for (i, e) in w.iter().enumerate() {
        group.apply_event(e);
        fire(&mut *group, i + 1);
    }
    let injected = plan.faults.len();

    // Collect the surviving reports and decode them.
    let partial = collect_until_settled(&mut *group, &killed);
    let mut restore_to: Vec<StateId> = vec![StateId(0); n];
    match scenario.backend {
        Backend::Fusion => {
            let sys = fusion_sys.as_mut().expect("fusion backend keeps a system");
            // A silent server is indistinguishable from a crashed one — the
            // decoder treats both as erasures.
            let reports: Vec<MachineReport> = partial
                .iter()
                .map(|r| r.clone().unwrap_or(MachineReport::Crashed))
                .collect();
            match sys.recover_external(&reports) {
                Ok(ext) => {
                    if !ext.matches_oracle {
                        violations.push("recovered top state diverges from oracle".into());
                    }
                    for (i, want) in expected.iter().enumerate() {
                        if ext.states[i].index() != *want {
                            violations.push(format!(
                                "server {i}: recovered state {} != oracle {want}",
                                ext.states[i].index()
                            ));
                        }
                    }
                    restore_to = ext.states;
                }
                Err(e) => violations.push(format!("fusion recovery failed: {e}")),
            }
        }
        Backend::Replication => {
            let per = scenario.fault_model.copies_per_machine(scenario.f) + 1;
            for (mi, m) in scenario.machines.iter().enumerate() {
                let replica_set = ReplicaSet::new(m.clone(), scenario.f, scenario.fault_model);
                let reports: Vec<Option<usize>> = (0..per)
                    .map(|j| match &partial[mi * per + j] {
                        Some(MachineReport::State(s)) => Some(*s),
                        _ => None,
                    })
                    .collect();
                match replica_set.recover(&reports) {
                    Ok(state) => {
                        if state != expected[mi * per] {
                            violations.push(format!(
                                "machine {mi}: recovered state {state} != oracle {}",
                                expected[mi * per]
                            ));
                        }
                        for j in 0..per {
                            restore_to[mi * per + j] = StateId(state);
                        }
                    }
                    Err(e) => violations.push(format!("replication recovery failed: {e}")),
                }
            }
        }
    }

    // Restore every live server and re-verify the whole group against the
    // oracle (killed processes stay dark, as a real power failure would).
    if violations.is_empty() {
        for (i, state) in restore_to.iter().enumerate() {
            if !killed.contains(&i) {
                group.restore(i, *state);
            }
        }
        let verify = collect_until_settled(&mut *group, &killed);
        for (i, r) in verify.iter().enumerate() {
            match r {
                Some(MachineReport::State(s)) if *s == expected[i] => {}
                None if killed.contains(&i) => {}
                other => violations.push(format!(
                    "server {i} after restore: reported {other:?}, expected state {}",
                    expected[i]
                )),
            }
        }
    }

    env.note(NOTE_VERDICT, &[violations.len() as u64, injected as u64]);
    ScenarioOutcome {
        seed: scenario.seed,
        preset: scenario.preset,
        backend: scenario.backend,
        fault_model: scenario.fault_model,
        trace_hash: env.trace_hash(),
        trace_len: env.trace_len(),
        stats: env.net_stats(),
        injected,
        kills: killed.len(),
        restarts: 0,
        replays: 0,
        peer_resyncs: 0,
        virtual_nanos: env.now().as_nanos() as u64,
        violations,
    }
}

/// An outcome for a scenario that could not even be constructed.
fn failed_outcome(scenario: &Scenario, env: &SimEnvironment, violation: String) -> ScenarioOutcome {
    env.note(NOTE_VERDICT, &[u64::MAX]);
    ScenarioOutcome {
        seed: scenario.seed,
        preset: scenario.preset,
        backend: scenario.backend,
        fault_model: scenario.fault_model,
        trace_hash: env.trace_hash(),
        trace_len: env.trace_len(),
        stats: env.net_stats(),
        injected: 0,
        kills: 0,
        restarts: 0,
        replays: 0,
        peer_resyncs: 0,
        virtual_nanos: env.now().as_nanos() as u64,
        violations: vec![violation],
    }
}

/// Aggregate results of a seed sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Scenarios run.
    pub scenarios: usize,
    /// Scenarios with no violations.
    pub passed: usize,
    /// Runs on the fusion backend.
    pub fusion_runs: usize,
    /// Runs on the replication backend.
    pub replication_runs: usize,
    /// Runs under the crash fault model.
    pub crash_runs: usize,
    /// Runs under the Byzantine fault model.
    pub byzantine_runs: usize,
    /// Faults injected across all runs.
    pub faults_injected: usize,
    /// Process kills among them.
    pub kills: usize,
    /// Killed processes brought back from durable state.
    pub restarts: usize,
    /// Rejoins that replayed the missed workload suffix from the log.
    pub replays: usize,
    /// Rejoins that adopted a peer-decoded state (Algorithm 3 resync).
    pub peer_resyncs: usize,
    /// Network chaos counters summed over all runs.
    pub stats: NetStats,
    /// Every violation, tagged with its seed.
    pub violations: Vec<(u64, String)>,
}

impl SweepReport {
    /// Whether every scenario recovered correctly.
    pub fn all_passed(&self) -> bool {
        self.violations.is_empty() && self.passed == self.scenarios
    }

    /// Whether the sweep actually exercised the chaos it is meant to cover:
    /// drops, reorders, kills, and both backends under both fault models.
    pub fn chaos_covered(&self) -> bool {
        self.stats.dropped > 0
            && self.stats.reordered > 0
            && self.stats.duplicated > 0
            && self.kills > 0
            && self.fusion_runs > 0
            && self.replication_runs > 0
            && self.crash_runs > 0
            && self.byzantine_runs > 0
    }

    /// Whether a recovery sweep exercised every rejoin mechanism it gates:
    /// restarts from durable state, log-replay catch-up, peer-decode resync,
    /// and at least one torn final WAL frame survived.
    pub fn recovery_covered(&self) -> bool {
        self.restarts > 0 && self.replays > 0 && self.peer_resyncs > 0 && self.stats.torn_tails > 0
    }

    fn absorb(&mut self, outcome: &ScenarioOutcome) {
        self.scenarios += 1;
        if outcome.is_ok() {
            self.passed += 1;
        }
        match outcome.backend {
            Backend::Fusion => self.fusion_runs += 1,
            Backend::Replication => self.replication_runs += 1,
        }
        match outcome.fault_model {
            FaultModel::Crash => self.crash_runs += 1,
            FaultModel::Byzantine => self.byzantine_runs += 1,
        }
        self.faults_injected += outcome.injected;
        self.kills += outcome.kills;
        self.restarts += outcome.restarts;
        self.replays += outcome.replays;
        self.peer_resyncs += outcome.peer_resyncs;
        self.stats.absorb(&outcome.stats);
        for v in &outcome.violations {
            self.violations.push((outcome.seed, v.clone()));
        }
    }
}

/// Runs `count` scenarios for the seeds `first_seed..first_seed + count` and
/// aggregates the results.
pub fn sweep(first_seed: u64, count: usize) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in first_seed..first_seed + count as u64 {
        let scenario = Scenario::from_seed(seed);
        let outcome = run_scenario(&scenario);
        report.absorb(&outcome);
    }
    report
}

/// The recovery preset table: machine set, crash budget, and whether the
/// scenario rolls kills across `f` victims in sequence or kills once.
/// Recovery scenarios run fusion under the crash model only — a rejoining
/// server trusts its own log, which a Byzantine server cannot.
const RECOVERY_PRESETS: &[(&str, MachineSet, usize, bool)] = &[
    ("fig1/fusion/crash/f1/rejoin", MachineSet::Fig1, 1, false),
    ("fig1/fusion/crash/f2/rolling", MachineSet::Fig1, 2, true),
    (
        "mesi+zc3/fusion/crash/f1/rejoin",
        MachineSet::MesiZc3,
        1,
        false,
    ),
    (
        "sensors3/fusion/crash/f1/rejoin",
        MachineSet::Sensors3,
        1,
        false,
    ),
];

/// One fully specified crash-recovery scenario: a durable fusion group whose
/// processes get killed under load and rejoin from their write-ahead logs
/// and snapshots.  Derived deterministically from a seed by
/// [`RecoveryScenario::from_seed`].
#[derive(Debug, Clone)]
pub struct RecoveryScenario {
    /// The seed the scenario (and its simulated world) is derived from.
    pub seed: u64,
    /// Human-readable preset name (`"fig1/fusion/crash/f1/rejoin"`, …).
    pub preset: &'static str,
    /// The crash budget the fusion is provisioned for.
    pub f: usize,
    /// The original machines.
    pub machines: Vec<Dfsm>,
    /// Whether kills roll across `f` victims in sequence (one at a time)
    /// instead of killing a single victim once.
    pub rolling: bool,
    /// Number of workload events.
    pub workload_len: usize,
    /// Snapshot cadence of the durable servers.
    pub snapshot_every: u64,
    /// Probability that a kill tears the final WAL frame.
    pub torn: f64,
    /// Reply drop probability.
    pub drop: f64,
    /// Reply duplication probability.
    pub duplicate: f64,
    /// Reply reorder-jitter probability.
    pub reorder: f64,
}

impl RecoveryScenario {
    /// Derives the full recovery scenario from one seed.
    pub fn from_seed(seed: u64) -> RecoveryScenario {
        let mut rng = Seeded(seed).split(STREAM_PARAMS).rng();
        let (preset, set, f, rolling) = RECOVERY_PRESETS[rng.gen_range(0..RECOVERY_PRESETS.len())];
        let workload_len = rng.gen_range(40..=120usize);
        let snapshot_every = rng.gen_range(1..=48u64);
        let torn = rng.gen_range(0..=60u32) as f64 / 100.0;
        let drop = rng.gen_range(0..=20u32) as f64 / 100.0;
        let duplicate = rng.gen_range(0..=15u32) as f64 / 100.0;
        let reorder = rng.gen_range(0..=20u32) as f64 / 100.0;
        RecoveryScenario {
            seed,
            preset,
            f,
            machines: set.machines(),
            rolling,
            workload_len,
            snapshot_every,
            torn,
            drop,
            duplicate,
            reorder,
        }
    }

    /// Kills the scenario schedules (1, or `f` when rolling).
    pub fn kills(&self) -> usize {
        if self.rolling {
            self.f.max(1)
        } else {
            1
        }
    }
}

/// Runs one crash-recovery scenario: spawn a durable fusion group, kill
/// processes at seeded positions under load, bring each back with
/// [`ServerGroup::restart_process`], catch it up via the cheaper of log
/// replay or peer decode ([`RejoinPath::choose`]), and assert the recovery
/// invariants — no acked event lost (the acknowledged sequence number equals
/// the kill position, one less only when the final frame was torn),
/// sequence numbers never regress, the replayed state matches an
/// uninterrupted run of the log prefix, and the whole group converges on
/// the oracle at the end.
pub fn run_recovery_scenario(scenario: &RecoveryScenario) -> ScenarioOutcome {
    let env = Seeded(scenario.seed)
        .sim()
        .drop_probability(scenario.drop)
        .duplicate_probability(scenario.duplicate)
        .reorder_probability(scenario.reorder)
        .torn_write_probability(scenario.torn)
        .build();
    let mut violations: Vec<String> = Vec::new();

    let w = Seeded(scenario.seed)
        .split(STREAM_WORKLOAD)
        .workload_over_machines(&scenario.machines, scenario.workload_len);

    let fake = Scenario {
        seed: scenario.seed,
        preset: scenario.preset,
        backend: Backend::Fusion,
        fault_model: FaultModel::Crash,
        f: scenario.f,
        machines: scenario.machines.clone(),
        workload_len: scenario.workload_len,
        modeled_crashes: 0,
        kills: scenario.kills(),
        corruptions: 0,
        drop: scenario.drop,
        duplicate: scenario.duplicate,
        reorder: scenario.reorder,
    };
    let mut sys = match FusedSystem::new(&scenario.machines, scenario.f, FaultModel::Crash) {
        Ok(sys) => sys,
        Err(e) => return failed_outcome(&fake, &env, format!("construction failed: {e}")),
    };
    let roster = sys.all_machines();
    let n = roster.len();

    env.note(
        NOTE_SCENARIO,
        &[
            2, // recovery-scenario marker (0/1 are the plain backends)
            scenario.f as u64,
            scenario.workload_len as u64,
            scenario.rolling as u64,
            scenario.snapshot_every,
        ],
    );

    let config = GroupConfig::new()
        .collect_timeout(Duration::from_secs(2))
        .durable_with(DurabilityConfig::new().snapshot_every(scenario.snapshot_every));
    let mut group = env.spawn_group(&roster, &config);

    // The kill/rejoin schedule: each kill gets its own disjoint window of
    // the workload, so at most one process is ever down at a time and every
    // victim rejoins before the run ends.
    let mut rng = Seeded(scenario.seed).split(STREAM_RECOVERY).rng();
    let kills = scenario.kills();
    let span = (scenario.workload_len - 1) / kills;
    // (kill_pos, rejoin_pos, victim): kill after `kill_pos` events, rejoin
    // after `rejoin_pos` events.  Victims may repeat across windows — a
    // server crashing twice is exactly how sequence regression would show.
    let schedule: Vec<(usize, usize, usize)> = (0..kills)
        .map(|k| {
            let lo = 1 + k * span;
            let hi = lo + span - 1;
            let kill_pos = rng.gen_range(lo..hi);
            let rejoin_pos = rng.gen_range(kill_pos + 1..=hi);
            (kill_pos, rejoin_pos, rng.gen_range(0..n))
        })
        .collect();

    let mut restarts = 0usize;
    let mut replays = 0usize;
    let mut peer_resyncs = 0usize;
    let mut last_acked: Vec<u64> = vec![0; n];
    let mut torn_seen: Vec<usize> = vec![0; n];
    let mut next = 0usize;
    let mut down: Option<(usize, usize, usize)> = None; // (victim, kill_pos, rejoin_pos)

    for pos in 0..w.len() {
        if down.is_none() && next < schedule.len() && schedule[next].0 == pos {
            let (kill_pos, rejoin_pos, victim) = schedule[next];
            group.kill_process(victim);
            down = Some((victim, kill_pos, rejoin_pos));
            next += 1;
        }
        if let Some((victim, kill_pos, rejoin_pos)) = down {
            if rejoin_pos == pos {
                // Drain the world first: apply commands queued to the dead
                // process must be dropped *before* it comes back, exactly as
                // a real network flushes in-flight packets to a dead port.
                env.run_until_idle();
                // A torn tail may cut exactly at the final frame's start,
                // leaving a *clean* shorter log — `ReplayStats` then reports
                // no torn bytes, so tears are detected from the trace.
                let torn_now = env
                    .trace_events()
                    .iter()
                    .filter(
                        |ev| matches!(ev, TraceEvent::TornTail { server, .. } if *server == victim),
                    )
                    .count();
                let torn_fired = torn_now > torn_seen[victim];
                torn_seen[victim] = torn_now;
                match group.restart_process(victim) {
                    Ok(stats) => {
                        restarts += 1;
                        let acked = stats.acked_seq;
                        let kp = kill_pos as u64;
                        // No acked event may be lost.  A torn final frame
                        // loses exactly the one in-flight write.
                        if !(acked == kp || (torn_fired && acked + 1 == kp)) {
                            violations.push(format!(
                                "server {victim}: recovered acked {acked} after kill at {kp} \
                                 (torn {} bytes)",
                                stats.torn_tail_bytes
                            ));
                        }
                        if acked < last_acked[victim] {
                            violations.push(format!(
                                "server {victim}: acked regressed {} -> {acked}",
                                last_acked[victim]
                            ));
                        }
                        // Snapshot + replay must equal an uninterrupted run
                        // of the acked prefix.
                        let mut ex = Executor::new(roster[victim].clone());
                        for e in w.iter().take(acked as usize) {
                            ex.apply(e);
                        }
                        if stats.state != ex.current() {
                            violations.push(format!(
                                "server {victim}: replayed state {} != prefix oracle {}",
                                stats.state.index(),
                                ex.current().index()
                            ));
                        }
                        // Catch up to the group: replay the missed suffix
                        // from the shared event stream, or decode the
                        // current state from live peers when the gap is too
                        // wide (Algorithm 3).
                        let path = RejoinPath::choose(acked, pos as u64);
                        env.note(
                            NOTE_REJOIN,
                            &[
                                victim as u64,
                                acked,
                                pos as u64,
                                match path {
                                    RejoinPath::Current => 0,
                                    RejoinPath::Replay { .. } => 1,
                                    RejoinPath::PeerDecode { .. } => 2,
                                },
                            ],
                        );
                        match path {
                            RejoinPath::Current => {}
                            RejoinPath::Replay { .. } => {
                                replays += 1;
                                for e in &w.events()[acked as usize..pos] {
                                    group.apply_event_to(victim, e);
                                }
                            }
                            RejoinPath::PeerDecode { .. } => {
                                peer_resyncs += 1;
                                let stale: HashSet<usize> = [victim].into_iter().collect();
                                let partial = collect_until_settled(&mut *group, &stale);
                                let reports: Vec<MachineReport> = partial
                                    .iter()
                                    .enumerate()
                                    .map(|(i, r)| {
                                        if i == victim {
                                            MachineReport::Crashed
                                        } else {
                                            r.clone().unwrap_or(MachineReport::Crashed)
                                        }
                                    })
                                    .collect();
                                match sys.recover_external(&reports) {
                                    Ok(ext) => {
                                        if !ext.matches_oracle {
                                            violations
                                                .push("peer decode diverged from oracle".into());
                                        }
                                        if let Err(e) =
                                            group.resync(victim, pos as u64, ext.states[victim])
                                        {
                                            violations
                                                .push(format!("resync of {victim} failed: {e}"));
                                        }
                                    }
                                    Err(e) => {
                                        violations.push(format!("peer decode failed: {e}"));
                                    }
                                }
                            }
                        }
                        last_acked[victim] = pos as u64;
                    }
                    Err(e) => violations.push(format!("restart of {victim} failed: {e}")),
                }
                down = None;
            }
        }
        let e = &w.events()[pos];
        group.apply_event(e);
        sys.apply_event(e);
    }

    // Everyone — including every rejoined process — must converge on the
    // oracle once the stream ends.
    env.run_until_idle();
    let verify = collect_until_settled(&mut *group, &HashSet::new());
    for (i, r) in verify.iter().enumerate() {
        let want = sys.oracle_state_of(i).index();
        match r {
            Some(MachineReport::State(s)) if *s == want => {}
            other => violations.push(format!(
                "server {i} after recovery sweep: reported {other:?}, expected state {want}"
            )),
        }
    }

    env.note(NOTE_VERDICT, &[violations.len() as u64, kills as u64]);
    ScenarioOutcome {
        seed: scenario.seed,
        preset: scenario.preset,
        backend: Backend::Fusion,
        fault_model: FaultModel::Crash,
        trace_hash: env.trace_hash(),
        trace_len: env.trace_len(),
        stats: env.net_stats(),
        injected: kills,
        kills,
        restarts,
        replays,
        peer_resyncs,
        virtual_nanos: env.now().as_nanos() as u64,
        violations,
    }
}

/// Runs `count` crash-recovery scenarios for the seeds
/// `first_seed..first_seed + count` and aggregates the results.
pub fn sweep_recovery(first_seed: u64, count: usize) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in first_seed..first_seed + count as u64 {
        let scenario = RecoveryScenario::from_seed(seed);
        let outcome = run_recovery_scenario(&scenario);
        report.absorb(&outcome);
    }
    report
}

/// Cost counters for one backend across a comparison run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackendCost {
    /// Scenarios run on this backend.
    pub runs: usize,
    /// Servers spawned across all runs (originals + backups / replicas).
    pub servers: usize,
    /// Messages handed to the simulated network.
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Virtual nanoseconds consumed.
    pub virtual_nanos: u64,
    /// Runs that violated recovery.
    pub violations: usize,
}

impl BackendCost {
    fn absorb(&mut self, outcome: &ScenarioOutcome, servers: usize) {
        self.runs += 1;
        self.servers += servers;
        self.messages_sent += outcome.stats.sent;
        self.messages_delivered += outcome.stats.delivered;
        self.virtual_nanos += outcome.virtual_nanos;
        self.violations += usize::from(!outcome.is_ok());
    }
}

/// Runs the same seeds — identical machine sets, workloads, chaos knobs and
/// one modeled crash — once fused and once replicated, and returns the
/// accumulated cost of each backend (message counts and virtual latency).
/// The paper's overhead argument, measured instead of asserted.
pub fn compare_backends(first_seed: u64, count: usize) -> (BackendCost, BackendCost) {
    let mut fusion = BackendCost::default();
    let mut replication = BackendCost::default();
    for seed in first_seed..first_seed + count as u64 {
        let mut rng = Seeded(seed).split(STREAM_PARAMS).rng();
        let set =
            [MachineSet::Fig1, MachineSet::MesiZc3, MachineSet::Sensors3][rng.gen_range(0..3usize)];
        let workload_len = rng.gen_range(20..=100usize);
        let drop = rng.gen_range(0..=20u32) as f64 / 100.0;
        let duplicate = rng.gen_range(0..=15u32) as f64 / 100.0;
        let reorder = rng.gen_range(0..=20u32) as f64 / 100.0;
        for backend in [Backend::Fusion, Backend::Replication] {
            let scenario = Scenario {
                seed,
                preset: "compare/crash/f1",
                backend,
                fault_model: FaultModel::Crash,
                f: 1,
                machines: set.machines(),
                workload_len,
                modeled_crashes: 1,
                kills: 0,
                corruptions: 0,
                drop,
                duplicate,
                reorder,
            };
            let servers = match backend {
                Backend::Fusion => FusedSystem::new(&scenario.machines, 1, FaultModel::Crash)
                    .map(|s| s.num_servers())
                    .unwrap_or(0),
                Backend::Replication => {
                    scenario.machines.len() * (FaultModel::Crash.copies_per_machine(1) + 1)
                }
            };
            let outcome = run_scenario(&scenario);
            match backend {
                Backend::Fusion => fusion.absorb(&outcome, servers),
                Backend::Replication => replication.absorb(&outcome, servers),
            }
        }
    }
    (fusion, replication)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_reproducible_and_within_budget() {
        for seed in 0..50u64 {
            let a = Scenario::from_seed(seed);
            let b = Scenario::from_seed(seed);
            assert_eq!(a.preset, b.preset);
            assert_eq!(a.workload_len, b.workload_len);
            assert_eq!(
                (a.modeled_crashes, a.kills, a.corruptions),
                (b.modeled_crashes, b.kills, b.corruptions)
            );
            assert!(a.total_faults() <= a.f, "seed {seed}");
            assert!((20..=100).contains(&a.workload_len));
            assert!(a.drop <= 0.30 && a.duplicate <= 0.20 && a.reorder <= 0.30);
        }
    }

    #[test]
    fn same_seed_replays_the_identical_world() {
        for seed in [3u64, 17, 40] {
            let s = Scenario::from_seed(seed);
            let a = run_scenario(&s);
            let b = run_scenario(&s);
            assert_eq!(a.trace_hash, b.trace_hash, "seed {seed}");
            assert_eq!(a.trace_len, b.trace_len, "seed {seed}");
            assert_eq!(a.stats, b.stats, "seed {seed}");
        }
    }

    #[test]
    fn mini_sweep_recovers_every_scenario() {
        let report = sweep(100, 30);
        assert_eq!(report.scenarios, 30);
        assert!(
            report.all_passed(),
            "violations: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
    }

    #[test]
    fn a_larger_sweep_covers_all_chaos_modes() {
        let report = sweep(0, 60);
        assert!(report.all_passed(), "violations: {:?}", report.violations);
        assert!(report.chaos_covered(), "coverage gap: {report:?}");
        assert!(report.faults_injected > 0);
    }

    #[test]
    fn recovery_scenarios_are_reproducible_and_bounded() {
        for seed in 0..50u64 {
            let a = RecoveryScenario::from_seed(seed);
            let b = RecoveryScenario::from_seed(seed);
            assert_eq!(a.preset, b.preset);
            assert_eq!(a.workload_len, b.workload_len);
            assert_eq!(a.snapshot_every, b.snapshot_every);
            assert!((40..=120).contains(&a.workload_len));
            assert!((1..=48).contains(&a.snapshot_every));
            assert!(a.kills() >= 1 && a.kills() <= a.f.max(1));
            assert!(a.torn <= 0.60 && a.drop <= 0.20 && a.reorder <= 0.20);
        }
    }

    #[test]
    fn recovery_scenarios_replay_the_identical_world() {
        for seed in [2u64, 19, 41] {
            let s = RecoveryScenario::from_seed(seed);
            let a = run_recovery_scenario(&s);
            let b = run_recovery_scenario(&s);
            assert_eq!(a.trace_hash, b.trace_hash, "seed {seed}");
            assert_eq!(a.trace_len, b.trace_len, "seed {seed}");
            assert_eq!(a.stats, b.stats, "seed {seed}");
            assert_eq!(a.restarts, b.restarts, "seed {seed}");
        }
    }

    #[test]
    fn mini_recovery_sweep_loses_no_acked_events() {
        let report = sweep_recovery(0, 40);
        assert_eq!(report.scenarios, 40);
        assert!(
            report.all_passed(),
            "violations: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
        assert!(report.restarts > 0);
        assert!(
            report.recovery_covered(),
            "coverage gap: restarts {} replays {} peer_resyncs {} torn {}",
            report.restarts,
            report.replays,
            report.peer_resyncs,
            report.stats.torn_tails
        );
    }

    #[test]
    fn backend_comparison_runs_clean_and_counts_costs() {
        let (fusion, replication) = compare_backends(0, 6);
        assert_eq!(fusion.runs, 6);
        assert_eq!(replication.runs, 6);
        assert_eq!(fusion.violations, 0, "fusion runs must recover");
        assert_eq!(replication.violations, 0, "replication runs must recover");
        assert!(fusion.messages_sent > 0 && replication.messages_sent > 0);
        assert!(fusion.virtual_nanos > 0 && replication.virtual_nanos > 0);
        // The whole point of fusion: fewer backup servers than replication
        // for the same budget, hence less report traffic per recovery.
        assert!(fusion.servers <= replication.servers);
    }
}
