//! The simulation sweep harness: hundreds of seeded scenarios — workload ×
//! fault schedule × network chaos — each run deterministically and checked
//! for recovery correctness.
//!
//! One `u64` seed fully determines a [`Scenario`]: which machine set runs,
//! whether fusion or plain replication backs it up, the fault model and
//! budget `f`, the workload, which servers suffer modeled crashes /
//! Byzantine corruptions / outright process kills and when, and how hostile
//! the network is.  [`run_scenario`] plays the scenario inside a
//! [`SimEnvironment`], decodes the surviving
//! reports with the same machinery the paper prescribes (Algorithm 3 for
//! fusion, survivor-copy / majority vote for replication), restores the
//! group, and re-verifies — recording every divergence from the oracle as a
//! violation.  [`sweep`] aggregates a seed range into a [`SweepReport`],
//! which CI runs over ≥200 seeds in release mode.

use std::collections::HashSet;
use std::time::Duration;

use fsm_dfsm::{Dfsm, StateId};
use fsm_fusion_core::{FaultModel, MachineReport, ReplicaSet};
use rand::Rng;

use crate::env::{Environment, GroupConfig, ServerGroup};
use crate::fault::FaultKind;
use crate::scenario::{replay_oracle, SensorNetwork};
use crate::sim::{NetStats, Seeded, SimEnvironment};
use crate::system::FusedSystem;

/// Substream of the scenario seed that draws the scenario parameters.
const STREAM_PARAMS: u64 = 0;
/// Substream that generates the workload.
const STREAM_WORKLOAD: u64 = 1;
/// Substream that generates the fault schedule.
const STREAM_FAULTS: u64 = 2;

/// How often a collection is retried when replies to live servers keep
/// getting dropped.  With per-reply drop probability ≤ 0.3 the chance of a
/// seed exhausting this is ≈ 0.3³² — and being deterministic, any seed that
/// did would fail reproducibly rather than flakily.
const MAX_COLLECT_ATTEMPTS: usize = 32;

/// Trace-note code recording the scenario parameters.
const NOTE_SCENARIO: u64 = 0x5CE0;
/// Trace-note code recording the decode outcome.
const NOTE_VERDICT: u64 = 0xFA57;

/// Which backup strategy a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Fused backups (Algorithm 2 generation, Algorithm 3 recovery).
    Fusion,
    /// Plain replication (`f` or `2f` extra copies per machine).
    Replication,
}

/// The machine sets scenarios draw from.
#[derive(Debug, Clone, Copy)]
enum MachineSet {
    /// The paper's Figure 1 pair of mod-3 counters.
    Fig1,
    /// A heterogeneous pair: MESI cache-line protocol + mod-3 counter.
    MesiZc3,
    /// A 3-sensor network of mod-3 counters (the motivating scenario).
    Sensors3,
}

impl MachineSet {
    fn machines(self) -> Vec<Dfsm> {
        match self {
            MachineSet::Fig1 => fsm_machines::fig1_machines(),
            MachineSet::MesiZc3 => vec![fsm_machines::mesi(), fsm_machines::zero_counter_mod3()],
            MachineSet::Sensors3 => SensorNetwork::sensor_machines(3),
        }
    }
}

/// The preset table: every (machine set, backend, model, budget) combination
/// the sweep draws from.  Crash presets must satisfy `dmin > f`, Byzantine
/// presets `dmin > 2f`, for the fusion that Algorithm 2 generates.
const PRESETS: &[(&str, MachineSet, Backend, FaultModel, usize)] = &[
    (
        "fig1/fusion/crash/f1",
        MachineSet::Fig1,
        Backend::Fusion,
        FaultModel::Crash,
        1,
    ),
    (
        "fig1/fusion/crash/f2",
        MachineSet::Fig1,
        Backend::Fusion,
        FaultModel::Crash,
        2,
    ),
    (
        "fig1/fusion/byz/f1",
        MachineSet::Fig1,
        Backend::Fusion,
        FaultModel::Byzantine,
        1,
    ),
    (
        "mesi+zc3/fusion/crash/f1",
        MachineSet::MesiZc3,
        Backend::Fusion,
        FaultModel::Crash,
        1,
    ),
    (
        "mesi+zc3/fusion/byz/f1",
        MachineSet::MesiZc3,
        Backend::Fusion,
        FaultModel::Byzantine,
        1,
    ),
    (
        "sensors3/fusion/crash/f1",
        MachineSet::Sensors3,
        Backend::Fusion,
        FaultModel::Crash,
        1,
    ),
    (
        "fig1/replication/crash/f1",
        MachineSet::Fig1,
        Backend::Replication,
        FaultModel::Crash,
        1,
    ),
    (
        "mesi+zc3/replication/crash/f2",
        MachineSet::MesiZc3,
        Backend::Replication,
        FaultModel::Crash,
        2,
    ),
    (
        "sensors3/replication/byz/f1",
        MachineSet::Sensors3,
        Backend::Replication,
        FaultModel::Byzantine,
        1,
    ),
];

/// One fully specified simulation scenario, derived deterministically from a
/// seed by [`Scenario::from_seed`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The seed the scenario (and its simulated world) is derived from.
    pub seed: u64,
    /// Human-readable preset name (`"fig1/fusion/crash/f1"`, …).
    pub preset: &'static str,
    /// Fusion or replication.
    pub backend: Backend,
    /// Crash or Byzantine faults.
    pub fault_model: FaultModel,
    /// The fault budget the system is provisioned for.
    pub f: usize,
    /// The original machines.
    pub machines: Vec<Dfsm>,
    /// Number of workload events.
    pub workload_len: usize,
    /// Modeled crash faults to inject (server answers `Crashed`).
    pub modeled_crashes: usize,
    /// Process kills to inject (server stops answering entirely).
    pub kills: usize,
    /// Byzantine corruptions to inject (explicit in-range lies).
    pub corruptions: usize,
    /// Reply drop probability.
    pub drop: f64,
    /// Reply duplication probability.
    pub duplicate: f64,
    /// Reply reorder-jitter probability.
    pub reorder: f64,
}

impl Scenario {
    /// Derives the full scenario from one seed.  Fault counts never exceed
    /// the preset's budget `f`; crash budgets are split between modeled
    /// crashes and process kills, Byzantine budgets go entirely to explicit
    /// corruptions (a kill would *add* a crash fault on top of `f` lies).
    pub fn from_seed(seed: u64) -> Scenario {
        let mut rng = Seeded(seed).split(STREAM_PARAMS).rng();
        let (preset, set, backend, fault_model, f) = PRESETS[rng.gen_range(0..PRESETS.len())];
        let workload_len = rng.gen_range(20..=100usize);
        let budget = rng.gen_range(0..=f);
        let (modeled_crashes, kills, corruptions) = match fault_model {
            FaultModel::Crash => {
                let kills = rng.gen_range(0..=budget);
                (budget - kills, kills, 0)
            }
            FaultModel::Byzantine => (0, 0, budget),
        };
        let drop = rng.gen_range(0..=30u32) as f64 / 100.0;
        let duplicate = rng.gen_range(0..=20u32) as f64 / 100.0;
        let reorder = rng.gen_range(0..=30u32) as f64 / 100.0;
        Scenario {
            seed,
            preset,
            backend,
            fault_model,
            f,
            machines: set.machines(),
            workload_len,
            modeled_crashes,
            kills,
            corruptions,
            drop,
            duplicate,
            reorder,
        }
    }

    /// Total faults the scenario injects.
    pub fn total_faults(&self) -> usize {
        self.modeled_crashes + self.kills + self.corruptions
    }
}

/// What one scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario seed.
    pub seed: u64,
    /// The preset that ran.
    pub preset: &'static str,
    /// Fusion or replication.
    pub backend: Backend,
    /// Crash or Byzantine.
    pub fault_model: FaultModel,
    /// The world's rolling trace hash at the end of the run — the replay
    /// identity: running the same seed again must reproduce it bit for bit.
    pub trace_hash: u64,
    /// Number of trace events recorded.
    pub trace_len: usize,
    /// What the network did.
    pub stats: NetStats,
    /// Faults actually injected.
    pub injected: usize,
    /// Process kills among them.
    pub kills: usize,
    /// Every detected divergence from the oracle (empty = correct run).
    pub violations: Vec<String>,
}

impl ScenarioOutcome {
    /// Whether the run recovered correctly end to end.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Collects reports, retrying while replies to *live* servers are missing
/// (dropped); killed servers are expected to stay silent.  Attempts are
/// merged: the servers are quiescent during collection, so a report heard
/// in any attempt is the server's final answer.
fn collect_until_settled(
    group: &mut dyn ServerGroup,
    killed: &HashSet<usize>,
) -> Vec<Option<MachineReport>> {
    let mut merged = group.try_collect_reports();
    for _ in 1..MAX_COLLECT_ATTEMPTS {
        let settled = merged
            .iter()
            .enumerate()
            .all(|(i, r)| r.is_some() || killed.contains(&i));
        if settled {
            break;
        }
        for (slot, heard) in merged.iter_mut().zip(group.try_collect_reports()) {
            if slot.is_none() {
                *slot = heard;
            }
        }
    }
    merged
}

/// Runs one scenario inside a fresh simulated world and checks it end to
/// end: inject the schedule, collect the surviving reports, decode (fusion's
/// Algorithm 3 or replication's per-group vote), restore every live server,
/// and re-verify against the oracle.
pub fn run_scenario(scenario: &Scenario) -> ScenarioOutcome {
    let env = Seeded(scenario.seed)
        .sim()
        .drop_probability(scenario.drop)
        .duplicate_probability(scenario.duplicate)
        .reorder_probability(scenario.reorder)
        .build();
    let mut violations: Vec<String> = Vec::new();

    let w = Seeded(scenario.seed)
        .split(STREAM_WORKLOAD)
        .workload_over_machines(&scenario.machines, scenario.workload_len);

    // The server roster the group runs, the oracle state every server must
    // end at, and (for fusion) the system holding Algorithm 3.
    let mut fusion_sys: Option<FusedSystem> = None;
    let (roster, expected): (Vec<Dfsm>, Vec<usize>) = match scenario.backend {
        Backend::Fusion => {
            match FusedSystem::new(&scenario.machines, scenario.f, scenario.fault_model) {
                Ok(mut sys) => {
                    sys.apply_workload(&w);
                    let roster = sys.all_machines();
                    let expected = (0..sys.num_servers())
                        .map(|i| sys.oracle_state_of(i).index())
                        .collect();
                    fusion_sys = Some(sys);
                    (roster, expected)
                }
                Err(e) => {
                    return failed_outcome(scenario, &env, format!("construction failed: {e}"));
                }
            }
        }
        Backend::Replication => {
            let per = scenario.fault_model.copies_per_machine(scenario.f) + 1;
            let mut roster = Vec::new();
            let mut expected = Vec::new();
            for m in &scenario.machines {
                let truth = replay_oracle(m, &w).index();
                for _ in 0..per {
                    roster.push(m.clone());
                    expected.push(truth);
                }
            }
            (roster, expected)
        }
    };
    let n = roster.len();

    env.note(
        NOTE_SCENARIO,
        &[
            matches!(scenario.backend, Backend::Replication) as u64,
            matches!(scenario.fault_model, FaultModel::Byzantine) as u64,
            scenario.f as u64,
            scenario.workload_len as u64,
            scenario.modeled_crashes as u64,
            scenario.kills as u64,
            scenario.corruptions as u64,
        ],
    );

    // Collections stay short: virtual time is free, but there is no point
    // waiting 30 virtual seconds per retry.
    let config = GroupConfig::new().collect_timeout(Duration::from_secs(2));
    let mut group = env.spawn_group(&roster, &config);

    // The fault schedule: distinct victims at seeded workload positions.
    // Crash budgets reuse the crash-plan stream with the first `kills`
    // entries escalated from modeled crash to process kill; Byzantine
    // budgets draw explicit in-range lies.
    let faults = Seeded(scenario.seed).split(STREAM_FAULTS);
    let plan = match scenario.fault_model {
        FaultModel::Crash => {
            faults.crash_plan(n, scenario.modeled_crashes + scenario.kills, w.len())
        }
        FaultModel::Byzantine => {
            let sizes: Vec<usize> = roster.iter().map(|m| m.size()).collect();
            faults.explicit_corruption_plan(&sizes, scenario.corruptions, w.len())
        }
    };
    let mut killed: HashSet<usize> = HashSet::new();
    let mut kill_budget = scenario.kills;
    let mut next_fault = 0usize;
    let mut fire = |group: &mut dyn ServerGroup, upto: usize| {
        while next_fault < plan.faults.len() && plan.faults[next_fault].after_event <= upto {
            let f = plan.faults[next_fault];
            match f.kind {
                FaultKind::Crash if kill_budget > 0 => {
                    kill_budget -= 1;
                    killed.insert(f.server);
                    group.kill_process(f.server);
                }
                FaultKind::Crash => group.crash(f.server),
                FaultKind::Corrupt(state) => group.corrupt(f.server, state),
            }
            next_fault += 1;
        }
    };
    fire(&mut *group, 0);
    for (i, e) in w.iter().enumerate() {
        group.apply_event(e);
        fire(&mut *group, i + 1);
    }
    let injected = plan.faults.len();

    // Collect the surviving reports and decode them.
    let partial = collect_until_settled(&mut *group, &killed);
    let mut restore_to: Vec<StateId> = vec![StateId(0); n];
    match scenario.backend {
        Backend::Fusion => {
            let sys = fusion_sys.as_mut().expect("fusion backend keeps a system");
            // A silent server is indistinguishable from a crashed one — the
            // decoder treats both as erasures.
            let reports: Vec<MachineReport> = partial
                .iter()
                .map(|r| r.clone().unwrap_or(MachineReport::Crashed))
                .collect();
            match sys.recover_external(&reports) {
                Ok(ext) => {
                    if !ext.matches_oracle {
                        violations.push("recovered top state diverges from oracle".into());
                    }
                    for (i, want) in expected.iter().enumerate() {
                        if ext.states[i].index() != *want {
                            violations.push(format!(
                                "server {i}: recovered state {} != oracle {want}",
                                ext.states[i].index()
                            ));
                        }
                    }
                    restore_to = ext.states;
                }
                Err(e) => violations.push(format!("fusion recovery failed: {e}")),
            }
        }
        Backend::Replication => {
            let per = scenario.fault_model.copies_per_machine(scenario.f) + 1;
            for (mi, m) in scenario.machines.iter().enumerate() {
                let replica_set = ReplicaSet::new(m.clone(), scenario.f, scenario.fault_model);
                let reports: Vec<Option<usize>> = (0..per)
                    .map(|j| match &partial[mi * per + j] {
                        Some(MachineReport::State(s)) => Some(*s),
                        _ => None,
                    })
                    .collect();
                match replica_set.recover(&reports) {
                    Ok(state) => {
                        if state != expected[mi * per] {
                            violations.push(format!(
                                "machine {mi}: recovered state {state} != oracle {}",
                                expected[mi * per]
                            ));
                        }
                        for j in 0..per {
                            restore_to[mi * per + j] = StateId(state);
                        }
                    }
                    Err(e) => violations.push(format!("replication recovery failed: {e}")),
                }
            }
        }
    }

    // Restore every live server and re-verify the whole group against the
    // oracle (killed processes stay dark, as a real power failure would).
    if violations.is_empty() {
        for (i, state) in restore_to.iter().enumerate() {
            if !killed.contains(&i) {
                group.restore(i, *state);
            }
        }
        let verify = collect_until_settled(&mut *group, &killed);
        for (i, r) in verify.iter().enumerate() {
            match r {
                Some(MachineReport::State(s)) if *s == expected[i] => {}
                None if killed.contains(&i) => {}
                other => violations.push(format!(
                    "server {i} after restore: reported {other:?}, expected state {}",
                    expected[i]
                )),
            }
        }
    }

    env.note(NOTE_VERDICT, &[violations.len() as u64, injected as u64]);
    ScenarioOutcome {
        seed: scenario.seed,
        preset: scenario.preset,
        backend: scenario.backend,
        fault_model: scenario.fault_model,
        trace_hash: env.trace_hash(),
        trace_len: env.trace_len(),
        stats: env.net_stats(),
        injected,
        kills: killed.len(),
        violations,
    }
}

/// An outcome for a scenario that could not even be constructed.
fn failed_outcome(scenario: &Scenario, env: &SimEnvironment, violation: String) -> ScenarioOutcome {
    env.note(NOTE_VERDICT, &[u64::MAX]);
    ScenarioOutcome {
        seed: scenario.seed,
        preset: scenario.preset,
        backend: scenario.backend,
        fault_model: scenario.fault_model,
        trace_hash: env.trace_hash(),
        trace_len: env.trace_len(),
        stats: env.net_stats(),
        injected: 0,
        kills: 0,
        violations: vec![violation],
    }
}

/// Aggregate results of a seed sweep.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Scenarios run.
    pub scenarios: usize,
    /// Scenarios with no violations.
    pub passed: usize,
    /// Runs on the fusion backend.
    pub fusion_runs: usize,
    /// Runs on the replication backend.
    pub replication_runs: usize,
    /// Runs under the crash fault model.
    pub crash_runs: usize,
    /// Runs under the Byzantine fault model.
    pub byzantine_runs: usize,
    /// Faults injected across all runs.
    pub faults_injected: usize,
    /// Process kills among them.
    pub kills: usize,
    /// Network chaos counters summed over all runs.
    pub stats: NetStats,
    /// Every violation, tagged with its seed.
    pub violations: Vec<(u64, String)>,
}

impl SweepReport {
    /// Whether every scenario recovered correctly.
    pub fn all_passed(&self) -> bool {
        self.violations.is_empty() && self.passed == self.scenarios
    }

    /// Whether the sweep actually exercised the chaos it is meant to cover:
    /// drops, reorders, kills, and both backends under both fault models.
    pub fn chaos_covered(&self) -> bool {
        self.stats.dropped > 0
            && self.stats.reordered > 0
            && self.stats.duplicated > 0
            && self.kills > 0
            && self.fusion_runs > 0
            && self.replication_runs > 0
            && self.crash_runs > 0
            && self.byzantine_runs > 0
    }

    fn absorb(&mut self, outcome: &ScenarioOutcome) {
        self.scenarios += 1;
        if outcome.is_ok() {
            self.passed += 1;
        }
        match outcome.backend {
            Backend::Fusion => self.fusion_runs += 1,
            Backend::Replication => self.replication_runs += 1,
        }
        match outcome.fault_model {
            FaultModel::Crash => self.crash_runs += 1,
            FaultModel::Byzantine => self.byzantine_runs += 1,
        }
        self.faults_injected += outcome.injected;
        self.kills += outcome.kills;
        self.stats.absorb(&outcome.stats);
        for v in &outcome.violations {
            self.violations.push((outcome.seed, v.clone()));
        }
    }
}

/// Runs `count` scenarios for the seeds `first_seed..first_seed + count` and
/// aggregates the results.
pub fn sweep(first_seed: u64, count: usize) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in first_seed..first_seed + count as u64 {
        let scenario = Scenario::from_seed(seed);
        let outcome = run_scenario(&scenario);
        report.absorb(&outcome);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_reproducible_and_within_budget() {
        for seed in 0..50u64 {
            let a = Scenario::from_seed(seed);
            let b = Scenario::from_seed(seed);
            assert_eq!(a.preset, b.preset);
            assert_eq!(a.workload_len, b.workload_len);
            assert_eq!(
                (a.modeled_crashes, a.kills, a.corruptions),
                (b.modeled_crashes, b.kills, b.corruptions)
            );
            assert!(a.total_faults() <= a.f, "seed {seed}");
            assert!((20..=100).contains(&a.workload_len));
            assert!(a.drop <= 0.30 && a.duplicate <= 0.20 && a.reorder <= 0.30);
        }
    }

    #[test]
    fn same_seed_replays_the_identical_world() {
        for seed in [3u64, 17, 40] {
            let s = Scenario::from_seed(seed);
            let a = run_scenario(&s);
            let b = run_scenario(&s);
            assert_eq!(a.trace_hash, b.trace_hash, "seed {seed}");
            assert_eq!(a.trace_len, b.trace_len, "seed {seed}");
            assert_eq!(a.stats, b.stats, "seed {seed}");
        }
    }

    #[test]
    fn mini_sweep_recovers_every_scenario() {
        let report = sweep(100, 30);
        assert_eq!(report.scenarios, 30);
        assert!(
            report.all_passed(),
            "violations: {:?}",
            &report.violations[..report.violations.len().min(5)]
        );
    }

    #[test]
    fn a_larger_sweep_covers_all_chaos_modes() {
        let report = sweep(0, 60);
        assert!(report.all_passed(), "violations: {:?}", report.violations);
        assert!(report.chaos_covered(), "coverage gap: {report:?}");
        assert!(report.faults_injected > 0);
    }
}
