//! The simulation's event trace: every scheduling decision, message
//! delivery and state change, recorded in order with a rolling hash.
//!
//! Byte-identical replay is *asserted* through this trace: two runs of the
//! same seed must produce equal [`TraceEvent`] sequences (and therefore
//! equal [`Trace::hash`] values), which tests pin.  The hash folds every
//! event as it is recorded, so comparing two 64-bit hashes compares the
//! entire histories.

/// One recorded simulation event.
///
/// Times are virtual nanoseconds, `seq` numbers are global send sequence
/// numbers, and `kind` codes are the message payload discriminants (see the
/// network module).  The variants are deliberately plain data: equality of
/// two traces is equality of two runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A server group came up.
    Spawn {
        /// Group index.
        group: usize,
        /// Number of servers spawned.
        servers: usize,
    },
    /// A message was handed to the network.
    Send {
        /// Global sequence number of this send.
        seq: u64,
        /// Virtual time of the send.
        at: u64,
        /// Destination group.
        group: usize,
        /// Destination server (or the reporting server, for replies).
        server: usize,
        /// Payload discriminant.
        kind: u8,
        /// Scheduled delivery time.
        deliver_at: u64,
    },
    /// The network dropped a message instead of queueing it.
    Drop {
        /// Sequence number of the dropped send.
        seq: u64,
    },
    /// The network queued a duplicate copy of a message.
    Duplicate {
        /// Sequence number of the original send.
        orig: u64,
        /// Sequence number of the duplicate.
        dup: u64,
    },
    /// A queued message reached its destination.
    Deliver {
        /// Sequence number of the delivered send.
        seq: u64,
        /// Virtual delivery time.
        at: u64,
    },
    /// A delivered reply overtook an earlier one to the same collector.
    Reorder {
        /// Sequence number of the late-overtaken send.
        seq: u64,
    },
    /// A server applied one event.
    Apply {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
        /// The server's state after applying.
        state: u64,
    },
    /// A server received a modeled crash fault.
    Crash {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
    },
    /// A server received a Byzantine corruption.
    Corrupt {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
        /// The state it was moved to.
        state: u64,
    },
    /// A server was restored to a state.
    Restore {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
        /// The restored state.
        state: u64,
    },
    /// A server's process died (scripted crash point or
    /// `kill_process`).
    Kill {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
    },
    /// A server produced a state report.
    Report {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
        /// Collection generation being answered.
        generation: u64,
        /// Reported state, or `u64::MAX` for a crash report.
        state: u64,
    },
    /// A report collection started.
    CollectStart {
        /// Group index.
        group: usize,
        /// Collection generation.
        generation: u64,
        /// Virtual start time.
        at: u64,
    },
    /// A report collection finished (possibly with missing servers).
    CollectDone {
        /// Group index.
        group: usize,
        /// Collection generation.
        generation: u64,
        /// How many servers never answered.
        missing: usize,
        /// Virtual completion time.
        at: u64,
    },
    /// A caller-recorded annotation (decode outcomes, assertions), folded
    /// into the hash like any other event.
    Note {
        /// Caller-chosen code.
        code: u64,
        /// Caller-chosen payload words.
        data: Vec<u64>,
    },
    /// A durable server adopted a peer-decoded state at the group sequence
    /// number (peer resync).
    Resync {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
        /// Group sequence number adopted.
        seq: u64,
        /// The adopted state.
        state: u64,
    },
    /// A killed durable process came back up from its durable state.
    Restart {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
        /// Acknowledged sequence number after snapshot + WAL replay.
        acked: u64,
    },
    /// A kill tore the final write-ahead-log frame (partial-write
    /// injection): the listed byte count was chopped off the log tail.
    TornTail {
        /// Group index.
        group: usize,
        /// Server index.
        server: usize,
        /// Bytes removed from the log tail.
        dropped: u64,
    },
}

impl TraceEvent {
    /// Folds this event into a running FNV-style word hash.
    fn fold(&self, h: &mut u64) {
        // Word-wise FNV-1a: good mixing, trivially deterministic, and fast
        // enough to run on every recorded event.
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut put = |w: u64| *h = (*h ^ w).wrapping_mul(PRIME);
        match self {
            TraceEvent::Spawn { group, servers } => {
                put(0);
                put(*group as u64);
                put(*servers as u64);
            }
            TraceEvent::Send {
                seq,
                at,
                group,
                server,
                kind,
                deliver_at,
            } => {
                put(1);
                put(*seq);
                put(*at);
                put(*group as u64);
                put(*server as u64);
                put(*kind as u64);
                put(*deliver_at);
            }
            TraceEvent::Drop { seq } => {
                put(2);
                put(*seq);
            }
            TraceEvent::Duplicate { orig, dup } => {
                put(3);
                put(*orig);
                put(*dup);
            }
            TraceEvent::Deliver { seq, at } => {
                put(4);
                put(*seq);
                put(*at);
            }
            TraceEvent::Reorder { seq } => {
                put(5);
                put(*seq);
            }
            TraceEvent::Apply {
                group,
                server,
                state,
            } => {
                put(6);
                put(*group as u64);
                put(*server as u64);
                put(*state);
            }
            TraceEvent::Crash { group, server } => {
                put(7);
                put(*group as u64);
                put(*server as u64);
            }
            TraceEvent::Corrupt {
                group,
                server,
                state,
            } => {
                put(8);
                put(*group as u64);
                put(*server as u64);
                put(*state);
            }
            TraceEvent::Restore {
                group,
                server,
                state,
            } => {
                put(9);
                put(*group as u64);
                put(*server as u64);
                put(*state);
            }
            TraceEvent::Kill { group, server } => {
                put(10);
                put(*group as u64);
                put(*server as u64);
            }
            TraceEvent::Report {
                group,
                server,
                generation,
                state,
            } => {
                put(11);
                put(*group as u64);
                put(*server as u64);
                put(*generation);
                put(*state);
            }
            TraceEvent::CollectStart {
                group,
                generation,
                at,
            } => {
                put(12);
                put(*group as u64);
                put(*generation);
                put(*at);
            }
            TraceEvent::CollectDone {
                group,
                generation,
                missing,
                at,
            } => {
                put(13);
                put(*group as u64);
                put(*generation);
                put(*missing as u64);
                put(*at);
            }
            TraceEvent::Note { code, data } => {
                put(14);
                put(*code);
                put(data.len() as u64);
                for w in data {
                    put(*w);
                }
            }
            TraceEvent::Resync {
                group,
                server,
                seq,
                state,
            } => {
                put(15);
                put(*group as u64);
                put(*server as u64);
                put(*seq);
                put(*state);
            }
            TraceEvent::Restart {
                group,
                server,
                acked,
            } => {
                put(16);
                put(*group as u64);
                put(*server as u64);
                put(*acked);
            }
            TraceEvent::TornTail {
                group,
                server,
                dropped,
            } => {
                put(17);
                put(*group as u64);
                put(*server as u64);
                put(*dropped);
            }
        }
    }
}

/// An ordered record of everything a simulated world did, with a rolling
/// hash over the full history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    hash: u64,
}

impl Trace {
    /// FNV-1a offset basis: the hash of an empty trace.
    const SEED: u64 = 0xCBF2_9CE4_8422_2325;

    /// An empty trace.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            hash: Self::SEED,
        }
    }

    /// Appends one event, folding it into the hash.
    pub fn record(&mut self, event: TraceEvent) {
        event.fold(&mut self.hash);
        self.events.push(event);
    }

    /// The rolling hash over every event recorded so far.  Equal hashes of
    /// two runs mean (up to hash collisions) byte-identical histories;
    /// tests additionally compare [`Trace::events`] outright.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_tracks_events_and_order() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        assert_eq!(a.hash(), b.hash());
        assert!(a.is_empty());

        a.record(TraceEvent::Deliver { seq: 1, at: 10 });
        a.record(TraceEvent::Drop { seq: 2 });
        b.record(TraceEvent::Deliver { seq: 1, at: 10 });
        b.record(TraceEvent::Drop { seq: 2 });
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 2);

        // Different order, different hash.
        let mut c = Trace::new();
        c.record(TraceEvent::Drop { seq: 2 });
        c.record(TraceEvent::Deliver { seq: 1, at: 10 });
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn every_field_feeds_the_hash() {
        let base = TraceEvent::Report {
            group: 0,
            server: 1,
            generation: 2,
            state: 3,
        };
        let tweaked = TraceEvent::Report {
            group: 0,
            server: 1,
            generation: 2,
            state: 4,
        };
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.record(base);
        b.record(tweaked);
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn notes_fold_their_payload() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.record(TraceEvent::Note {
            code: 7,
            data: vec![1, 2],
        });
        b.record(TraceEvent::Note {
            code: 7,
            data: vec![2, 1],
        });
        assert_ne!(a.hash(), b.hash());
    }
}
