//! # fsm-distsys — the simulated distributed system of the paper's model
//!
//! The paper (Section 2) assumes a set of independent servers, each running
//! one DFSM, all consuming a common totally-ordered event stream from the
//! environment; faults erase (crash) or corrupt (Byzantine) the execution
//! state of up to `f` servers, after which the environment pauses and the
//! surviving states are combined to recover the lost ones.
//!
//! This crate turns that model into runnable infrastructure:
//!
//! * [`Server`] — one DFSM execution with injectable crash/Byzantine faults.
//! * [`Workload`] — scripted or seeded-random event streams (the
//!   environment).
//! * [`FusedSystem`] — originals + Algorithm-2 backups + Algorithm-3
//!   recovery, end to end, with an oracle for verification.
//! * [`ReplicatedSystem`] — the replication baseline for side-by-side
//!   comparison.
//! * [`FaultPlan`] — reproducible randomized fault injection.
//! * [`SensorNetwork`] — the paper's motivating sensor-network scenario,
//!   including the 100-sensor configuration.
//! * [`ParallelServerGroup`] — servers on OS threads with channel-based
//!   event broadcast and report collection.
//! * [`Environment`] / [`ServerGroup`] — the execution-environment
//!   abstraction (time, randomness, spawning) with two implementations:
//!   [`OsEnvironment`] (threads, wall clock) and
//!   [`sim::SimEnvironment`] (virtual time, seeded chaos, byte-identical
//!   replay).
//! * [`sim`] — the deterministic simulation runtime and its
//!   [`sweep`](sim::sweep) scenario harness.
//! * [`ingest`] — the batched ingestion front-end: bounded client queues
//!   with backpressure, size/time-triggered batch flushing, and per-server
//!   fault isolation with exponential-backoff rejoin (the serving path
//!   measured by `ingest_bench`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod env;
mod error;
pub mod fault;
pub mod ingest;
pub mod parallel;
pub mod recovery;
pub mod replicated;
pub mod scenario;
pub mod server;
pub mod sim;
pub mod snapshot;
pub mod storage;
pub mod system;
pub mod wal;
pub mod workload;

pub use env::{Environment, GroupConfig, OsClock, OsEnvironment, ServerGroup};
pub use error::{DistsysError, Result};
pub use fault::{FaultKind, FaultPlan, ScheduledFault};
pub use ingest::{ClientHandle, IngestConfig, IngestMetrics, IngestPipeline, LaneStatus};
pub use parallel::ParallelServerGroup;
pub use recovery::{DurabilityConfig, DurableServer, RejoinPath, ReplayStats, REPLAY_CUTOVER};
pub use replicated::{ReplicaGroup, ReplicatedSystem};
pub use scenario::{replay_oracle, SensorBackupMode, SensorNetwork, ServeReport};
pub use server::{Server, ServerStatus};
pub use sim::{NetStats, Seeded, SimConfig, SimEnvironment, SimRng, TraceEvent};
pub use storage::{shared, DirStore, MemStore, SharedStore, Store};
pub use system::{ExternalRecovery, FusedSystem, RecoveryOutcome, SystemMetrics};
pub use workload::Workload;
