//! Periodic state snapshots: a checksummed word vector written atomically
//! through a [`Store`](crate::storage::Store).
//!
//! Layout (all little-endian u64): `[count][words...][crc]` where `crc` is
//! FNV-1a over the count and the words.  Snapshots are always written via
//! `write_atomic`, so a snapshot is either the complete previous version or
//! the complete new one — torn-write injection applies only to WAL appends.
//! A snapshot that fails its checksum is reported as a storage error rather
//! than silently ignored: recovery must know it is falling back to genesis.

use crate::error::{DistsysError, Result};
use crate::storage::{with_store, SharedStore};

/// The snapshot blob name for a durable-server id.
pub fn snapshot_name(id: &str) -> String {
    format!("{id}.snap")
}

fn fnv1a_words(words: &[u64]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// Atomically replaces the snapshot `name` with the word vector `words`.
pub fn save_words(store: &SharedStore, name: &str, words: &[u64]) -> Result<()> {
    let mut buf = Vec::with_capacity((words.len() + 2) * 8);
    buf.extend_from_slice(&(words.len() as u64).to_le_bytes());
    for &w in words {
        buf.extend_from_slice(&w.to_le_bytes());
    }
    let mut checked = Vec::with_capacity(words.len() + 1);
    checked.push(words.len() as u64);
    checked.extend_from_slice(words);
    buf.extend_from_slice(&fnv1a_words(&checked).to_le_bytes());
    with_store(store, |s| s.write_atomic(name, &buf))
}

/// Loads and verifies the snapshot `name`.  Returns `Ok(None)` if no
/// snapshot exists, and a storage error if one exists but is malformed.
pub fn load_words(store: &SharedStore, name: &str) -> Result<Option<Vec<u64>>> {
    let Some(bytes) = with_store(store, |s| s.read(name))? else {
        return Ok(None);
    };
    let malformed = |why: &str| DistsysError::Storage {
        message: format!("snapshot {name}: {why}"),
    };
    if bytes.len() < 16 || bytes.len() % 8 != 0 {
        return Err(malformed("truncated"));
    }
    let mut words: Vec<u64> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect();
    let crc = words.pop().expect("len checked above");
    let count = words[0] as usize;
    if count != words.len() - 1 {
        return Err(malformed("word count mismatch"));
    }
    if fnv1a_words(&words) != crc {
        return Err(malformed("checksum mismatch"));
    }
    words.remove(0);
    Ok(Some(words))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{shared, MemStore};

    #[test]
    fn save_load_roundtrip() {
        let store = shared(MemStore::new());
        assert_eq!(load_words(&store, "x.snap").unwrap(), None);
        save_words(&store, "x.snap", &[7, 0, u64::MAX]).unwrap();
        assert_eq!(
            load_words(&store, "x.snap").unwrap(),
            Some(vec![7, 0, u64::MAX])
        );
        // Overwrite replaces wholesale.
        save_words(&store, "x.snap", &[]).unwrap();
        assert_eq!(load_words(&store, "x.snap").unwrap(), Some(vec![]));
    }

    #[test]
    fn corrupt_snapshot_is_an_error_not_none() {
        let store = shared(MemStore::new());
        save_words(&store, "x.snap", &[1, 2, 3]).unwrap();
        with_store(&store, |s| {
            let mut bytes = s.read("x.snap")?.unwrap();
            bytes[9] ^= 0xFF; // flip a word byte
            s.write_atomic("x.snap", &bytes)
        })
        .unwrap();
        assert!(matches!(
            load_words(&store, "x.snap"),
            Err(DistsysError::Storage { .. })
        ));
        // Truncated blob too.
        with_store(&store, |s| s.write_atomic("x.snap", &[1, 2, 3])).unwrap();
        assert!(load_words(&store, "x.snap").is_err());
    }
}
