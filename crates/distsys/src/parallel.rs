//! Threaded execution of a server group.
//!
//! The paper's servers are independent processes; this module runs each
//! server on its own OS thread, broadcasting events over channels and
//! collecting state reports on demand — a small-scale but faithful model of
//! the deployment the paper assumes (independent servers, no shared state,
//! communication only for recovery).
//!
//! The implementation uses `crossbeam-channel` for the per-server command
//! queues and a shared response channel for reports.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use fsm_dfsm::{Dfsm, Event, StateId};
use fsm_fusion_core::MachineReport;

use crate::env::{GroupConfig, OsClock, ServerGroup};
use crate::error::{DistsysError, Result};
use crate::recovery::{DurabilityConfig, DurableServer, ProcessServer, ReplayStats};
use crate::server::Server;
use crate::storage::SharedStore;

/// Commands sent to a server thread.
enum Command {
    /// Apply an event.
    Apply(Event),
    /// Apply a whole shared batch of events in order.  One channel send per
    /// server per batch (the `Arc` is cloned, not the events), instead of
    /// one send per event per server.
    ApplyBatch(Arc<[Event]>),
    /// Crash the server.
    Crash,
    /// Corrupt the server to the given state.
    Corrupt(StateId),
    /// Restore the server to the given state (post-recovery).
    Restore(StateId),
    /// Adopt a peer-decoded state at the group sequence number
    /// (post-recovery resync; snapshots durably on durable servers).
    Resync(u64, StateId),
    /// Ask for a state report for the given collection generation.
    Report(u64),
    /// Shut the thread down.
    Stop,
}

/// The command loop every server thread runs; returns the final `Server`
/// value when stopped.
fn run_server(
    index: usize,
    mut ps: ProcessServer,
    rx: Receiver<Command>,
    report_tx: Sender<(usize, u64, MachineReport)>,
) -> Server {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Command::Apply(e) => ps.apply(&e),
            Command::ApplyBatch(batch) => {
                for e in batch.iter() {
                    ps.apply(e);
                }
            }
            Command::Crash => ps.server_mut().crash(),
            Command::Corrupt(s) => {
                ps.server_mut().corrupt(s);
            }
            Command::Restore(s) => ps.server_mut().restore(s),
            Command::Resync(seq, state) => match ps.resync(seq, state) {
                Ok(()) => {}
                Err(DistsysError::NotDurable { .. }) => ps.server_mut().restore(state),
                Err(e) => panic!("resync failed: {e}"),
            },
            Command::Report(generation) => {
                let _ = report_tx.send((index, generation, ps.server().report()));
            }
            Command::Stop => break,
        }
    }
    ps.into_server()
}

/// A server running on its own thread.
struct ServerHandle {
    commands: Sender<Command>,
    join: Option<thread::JoinHandle<Server>>,
}

/// A group of servers, each on its own thread, driven by broadcast events.
///
/// This type mirrors the event-application and fault-injection API of
/// [`crate::FusedSystem`] but performs the work concurrently.  Recovery
/// logic is intentionally not duplicated here: callers collect reports with
/// [`ParallelServerGroup::collect_reports`] and feed them to a
/// [`fsm_fusion_core::RecoveryEngine`], then push the corrected states back
/// with [`ParallelServerGroup::restore`].
pub struct ParallelServerGroup {
    handles: Vec<ServerHandle>,
    reports: Receiver<(usize, u64, MachineReport)>,
    report_sender: Sender<(usize, u64, MachineReport)>,
    /// Current report-collection generation; replies tagged with an older
    /// generation are stale (a previous collection gave up on them) and are
    /// discarded on receipt.
    generation: std::sync::atomic::AtomicU64,
    /// How often collection re-checks the liveness of servers that have not
    /// reported yet (resolved from [`GroupConfig`]).
    report_poll: Duration,
    /// Hard ceiling on one report collection: even a server thread that is
    /// alive but wedged cannot block the caller past this.  A healthy
    /// server that cannot drain its backlog within the deadline is reported
    /// missing, and its late answer is discarded by the generation filter.
    /// The default is sized orders of magnitude above any broadcast backlog
    /// the workloads here produce, so only a genuinely wedged (or dead)
    /// thread hits it.
    collect_timeout: Duration,
    /// The environment clock all deadline math goes through — never raw
    /// `Instant::now()`, so the collection logic reads identically to the
    /// virtual-time implementation in the simulator.
    clock: OsClock,
    /// The machines the group runs, kept for restarting killed processes.
    roster: Vec<Dfsm>,
    /// Durable-group info (store, id prefix, knobs); `None` for plain
    /// groups, which cannot restart.
    durable: Option<DurableGroupInfo>,
    /// Which servers' processes were killed (and not yet restarted).
    /// Mutex-guarded so the `&self` inherent API can keep its signatures.
    down: Mutex<Vec<bool>>,
}

/// What a durable group needs to rebuild a killed server from storage.
struct DurableGroupInfo {
    store: SharedStore,
    prefix: String,
    config: DurabilityConfig,
}

impl DurableGroupInfo {
    fn server_id(&self, i: usize) -> String {
        format!("{}-s{i}", self.prefix)
    }
}

impl ParallelServerGroup {
    /// Spawns one thread per machine with the environment-variable
    /// configuration ([`GroupConfig::from_env`]).
    pub fn spawn(machines: &[Dfsm]) -> Self {
        Self::spawn_with(machines, &GroupConfig::from_env())
    }

    /// Spawns one thread per machine with an explicit [`GroupConfig`].
    pub fn spawn_with(machines: &[Dfsm], config: &GroupConfig) -> Self {
        Self::spawn_clocked(machines, config, OsClock::new())
    }

    /// [`ParallelServerGroup::spawn_with`] on a caller-owned clock, so all
    /// groups of one [`OsEnvironment`](crate::OsEnvironment) share its
    /// timeline.
    pub fn spawn_clocked(machines: &[Dfsm], config: &GroupConfig, clock: OsClock) -> Self {
        let servers = machines
            .iter()
            .map(|m| ProcessServer::Plain(Server::new(m.clone())))
            .collect();
        Self::spawn_processes(machines, servers, config, clock, None)
    }

    /// Spawns a *durable* group: each server keeps a write-ahead log and
    /// periodic snapshots under `prefix`-derived ids in `store`, and killed
    /// processes can be brought back with
    /// [`ParallelServerGroup::restart_process`].  Any leftover durable
    /// state under the same ids is wiped first (this is a fresh group, not
    /// a recovery).
    pub fn spawn_durable(
        machines: &[Dfsm],
        config: &GroupConfig,
        clock: OsClock,
        store: SharedStore,
        prefix: &str,
        durability: DurabilityConfig,
    ) -> Result<Self> {
        let info = DurableGroupInfo {
            store,
            prefix: prefix.to_string(),
            config: durability,
        };
        let servers = machines
            .iter()
            .enumerate()
            .map(|(i, m)| {
                Ok(ProcessServer::Durable(DurableServer::fresh(
                    m.clone(),
                    info.store.clone(),
                    info.server_id(i),
                    &info.config,
                )?))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::spawn_processes(
            machines,
            servers,
            config,
            clock,
            Some(info),
        ))
    }

    fn spawn_processes(
        machines: &[Dfsm],
        servers: Vec<ProcessServer>,
        config: &GroupConfig,
        clock: OsClock,
        durable: Option<DurableGroupInfo>,
    ) -> Self {
        let (report_sender, reports) = unbounded();
        let n = servers.len();
        let handles = servers
            .into_iter()
            .enumerate()
            .map(|(index, ps)| Self::spawn_thread(index, ps, report_sender.clone()))
            .collect();
        ParallelServerGroup {
            handles,
            reports,
            report_sender,
            generation: std::sync::atomic::AtomicU64::new(0),
            report_poll: config.resolved_report_poll(),
            collect_timeout: config.resolved_collect_timeout(),
            clock,
            roster: machines.to_vec(),
            durable,
            down: Mutex::new(vec![false; n]),
        }
    }

    fn spawn_thread(
        index: usize,
        ps: ProcessServer,
        report_tx: Sender<(usize, u64, MachineReport)>,
    ) -> ServerHandle {
        let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
        let join = thread::spawn(move || run_server(index, ps, rx, report_tx));
        ServerHandle {
            commands: tx,
            join: Some(join),
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Broadcasts an event to every server.
    ///
    /// The reference per-event path (one channel send per server per
    /// event); stream callers should prefer
    /// [`ParallelServerGroup::apply_batch`], which is pinned equivalent by
    /// a test.
    pub fn apply_event(&self, event: &Event) {
        for h in &self.handles {
            let _ = h.commands.send(Command::Apply(event.clone()));
        }
    }

    /// Sends one event to server `i` only — the rejoin-replay path.
    pub fn apply_event_to(&self, i: usize, event: &Event) {
        let _ = self.handles[i].commands.send(Command::Apply(event.clone()));
    }

    /// Clones a sequence of events into the shared `Arc<[Event]>` every
    /// batch command hands around — or `None` for an empty sequence, so no
    /// batch path allocates an `Arc` (or sends a single command) for
    /// nothing.  The one clone-into-Arc site shared by
    /// [`ParallelServerGroup::apply_batch`],
    /// [`ParallelServerGroup::apply_all`] and
    /// [`ParallelServerGroup::apply_batch_to`].
    fn shared_batch<'a, I: IntoIterator<Item = &'a Event>>(events: I) -> Option<Arc<[Event]>> {
        let batch: Vec<Event> = events.into_iter().cloned().collect();
        if batch.is_empty() {
            None
        } else {
            Some(Arc::from(batch))
        }
    }

    /// Broadcasts a whole batch of events with **one channel send per
    /// server**: the events are cloned once into a shared `Arc<[Event]>`
    /// and every server thread walks the same slice in order.  Command
    /// ordering per server is unchanged, so the observable behavior equals
    /// the same events sent through [`ParallelServerGroup::apply_event`]
    /// one at a time.
    pub fn apply_batch(&self, events: &[Event]) {
        if let Some(batch) = Self::shared_batch(events) {
            self.send_batch(batch);
        }
    }

    /// Broadcasts a sequence of events, batched: the whole sequence is
    /// submitted per server as one shared batch (events borrowed from the
    /// iterator are cloned exactly once, into the `Arc` slice itself).
    pub fn apply_all<'a, I: IntoIterator<Item = &'a Event>>(&self, events: I) {
        if let Some(batch) = Self::shared_batch(events) {
            self.send_batch(batch);
        }
    }

    /// Sends a whole batch of events to server `i` only, as one command —
    /// the degraded-mode ingestion and rejoin-replay path.
    pub fn apply_batch_to(&self, i: usize, events: &[Event]) {
        if let Some(batch) = Self::shared_batch(events) {
            let _ = self.handles[i].commands.send(Command::ApplyBatch(batch));
        }
    }

    fn send_batch(&self, batch: Arc<[Event]>) {
        for h in &self.handles {
            let _ = h.commands.send(Command::ApplyBatch(Arc::clone(&batch)));
        }
    }

    /// Crashes server `i`.
    pub fn crash(&self, i: usize) {
        let _ = self.handles[i].commands.send(Command::Crash);
    }

    /// Corrupts server `i` to `state`.
    pub fn corrupt(&self, i: usize, state: StateId) {
        let _ = self.handles[i].commands.send(Command::Corrupt(state));
    }

    /// Restores server `i` to `state` (after recovery).
    pub fn restore(&self, i: usize, state: StateId) {
        let _ = self.handles[i].commands.send(Command::Restore(state));
    }

    /// Kills server `i`'s *thread* (distinct from the modeled crash fault,
    /// which keeps answering): pending commands are processed first, then
    /// the thread exits and the server's reports go missing.
    pub fn kill_process(&self, i: usize) {
        let _ = self.handles[i].commands.send(Command::Stop);
        self.down.lock().expect("down lock")[i] = true;
    }

    /// Restarts server `i`'s killed thread from durable state: joins the
    /// old thread, runs [`DurableServer::recover`] against the group's
    /// store (snapshot + WAL-suffix replay, torn tail dropped), and spawns
    /// a fresh thread hosting the recovered server.
    ///
    /// Fails with [`DistsysError::NotDurable`] on plain groups,
    /// [`DistsysError::ServerUp`] if the process was never killed, and
    /// [`DistsysError::NoSuchServer`] for an out-of-range index.
    pub fn restart_process(&mut self, i: usize) -> Result<ReplayStats> {
        if i >= self.handles.len() {
            return Err(DistsysError::NoSuchServer {
                server: i,
                count: self.handles.len(),
            });
        }
        let Some(info) = &self.durable else {
            return Err(DistsysError::NotDurable { server: i });
        };
        if !self.down.lock().expect("down lock")[i] {
            return Err(DistsysError::ServerUp { server: i });
        }
        // The Stop behind the `down` flag guarantees the old thread exits
        // once it drains its queue; join it so its final WAL writes are
        // visible before recovery reads the store.
        if let Some(join) = self.handles[i].join.take() {
            let _ = join.join();
        }
        let (recovered, stats) = DurableServer::recover(
            self.roster[i].clone(),
            info.store.clone(),
            info.server_id(i),
            &info.config,
        )?;
        self.handles[i] = Self::spawn_thread(
            i,
            ProcessServer::Durable(recovered),
            self.report_sender.clone(),
        );
        self.down.lock().expect("down lock")[i] = false;
        Ok(stats)
    }

    /// Sends server `i` a peer-decoded state to adopt at group sequence
    /// `seq` (durable servers snapshot at `seq`; plain servers just
    /// restore).
    pub fn resync(&self, i: usize, seq: u64, state: StateId) {
        let _ = self.handles[i].commands.send(Command::Resync(seq, state));
    }

    /// Collects a state report from every server.  This is the
    /// synchronization point of the recovery protocol: it waits until every
    /// server has answered, which also guarantees all previously broadcast
    /// events have been applied (commands are processed in order).
    ///
    /// A server whose thread has died (e.g. panicked in `Server::apply`)
    /// can never answer; the group's own clone of the report sender keeps
    /// the channel open, so a plain blocking `recv` would wait forever.
    /// Instead the drain polls with a timeout and re-checks the join
    /// handles of the servers still outstanding: once every missing server's
    /// thread is finished — or the overall deadline passes — collection
    /// gives up and returns [`DistsysError::MissingReports`] naming them.
    /// Each collection runs under a fresh generation tag, so a reply that
    /// arrives *after* its collection gave up (a slow-but-alive server) is
    /// recognized as stale and discarded by the next collection instead of
    /// being mistaken for its answer.
    pub fn collect_reports(&self) -> Result<Vec<MachineReport>> {
        let out = self.try_collect_reports();
        let missing: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            Ok(out.into_iter().map(|r| r.expect("all received")).collect())
        } else {
            Err(DistsysError::MissingReports { servers: missing })
        }
    }

    /// The partial form of [`ParallelServerGroup::collect_reports`]:
    /// servers that never answered before the deadline yield `None` at
    /// their index instead of failing the whole collection.
    ///
    /// All deadline math runs on the group's environment clock
    /// ([`OsClock`]) — the collection loop never consults `Instant::now()`
    /// directly, mirroring how the simulated runner computes the same
    /// deadline on virtual time.
    pub fn try_collect_reports(&self) -> Vec<Option<MachineReport>> {
        let generation = self
            .generation
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        for h in &self.handles {
            // A send to a dead server's queue fails; its absence is
            // detected below rather than here, so the one error path covers
            // threads that die before *and* after the request lands.
            let _ = h.commands.send(Command::Report(generation));
        }
        let n = self.handles.len();
        let mut out: Vec<Option<MachineReport>> = vec![None; n];
        let mut received = 0;
        let deadline = self.clock.now() + self.collect_timeout;
        while received < n {
            match self.reports.recv_timeout(self.report_poll) {
                Ok((_, gen, _)) if gen != generation => {
                    // Stale reply from a collection that already gave up.
                }
                Ok((i, _, r)) => {
                    if out[i].is_none() {
                        received += 1;
                    }
                    out[i] = Some(r);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    let all_dead = (0..n).filter(|&i| out[i].is_none()).all(|i| {
                        self.handles[i]
                            .join
                            .as_ref()
                            .map_or(true, |j| j.is_finished())
                    });
                    if all_dead || self.clock.now() >= deadline {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Posts a report request to every server under a fresh generation tag
    /// and returns the tag *without waiting* — the asynchronous half of
    /// report collection.  Because commands are applied in per-server FIFO
    /// order, once every live server has answered this generation (drain
    /// with [`ParallelServerGroup::try_recv_report`] /
    /// [`ParallelServerGroup::recv_report_timeout`]), every command sent
    /// before the request has been applied.  The ingestion benchmark uses
    /// this as a batch marker to measure enqueue-to-apply latency without
    /// blocking the aggregator.
    ///
    /// Do not interleave with [`ParallelServerGroup::collect_reports`]:
    /// each call bumps the shared generation, and a collection discards
    /// replies from older tags as stale.
    pub fn request_reports(&self) -> u64 {
        let generation = self
            .generation
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        for h in &self.handles {
            let _ = h.commands.send(Command::Report(generation));
        }
        generation
    }

    /// Receives one `(server, generation, report)` reply if one is already
    /// waiting (non-blocking half of [`request_reports`]).
    ///
    /// [`request_reports`]: ParallelServerGroup::request_reports
    pub fn try_recv_report(&self) -> Option<(usize, u64, MachineReport)> {
        self.reports.try_recv().ok()
    }

    /// Receives one `(server, generation, report)` reply, waiting at most
    /// `timeout` for it.
    pub fn recv_report_timeout(&self, timeout: Duration) -> Option<(usize, u64, MachineReport)> {
        self.reports.recv_timeout(timeout).ok()
    }

    /// Stops all threads and returns the final `Server` values (for
    /// inspection in tests).  Servers whose threads panicked have no final
    /// value and are omitted, matching the recoverable-error contract of
    /// [`ParallelServerGroup::collect_reports`] — a caller that handled
    /// [`DistsysError::MissingReports`] can still tear the group down.
    pub fn shutdown(mut self) -> Vec<Server> {
        self.handles
            .iter()
            .for_each(|h| drop(h.commands.send(Command::Stop)));
        self.handles
            .iter_mut()
            .filter_map(|h| h.join.take().expect("joined once").join().ok())
            .collect()
    }
}

/// The [`ServerGroup`] view of the threaded runner, delegating to the
/// inherent methods (which remain available, `&self`, for existing
/// callers).
impl ServerGroup for ParallelServerGroup {
    fn len(&self) -> usize {
        ParallelServerGroup::len(self)
    }

    fn apply_event(&mut self, event: &Event) {
        ParallelServerGroup::apply_event(self, event);
    }

    fn apply_event_to(&mut self, i: usize, event: &Event) {
        ParallelServerGroup::apply_event_to(self, i, event);
    }

    fn apply_batch(&mut self, events: &[Event]) {
        ParallelServerGroup::apply_batch(self, events);
    }

    fn apply_batch_to(&mut self, i: usize, events: &[Event]) {
        ParallelServerGroup::apply_batch_to(self, i, events);
    }

    fn crash(&mut self, i: usize) {
        ParallelServerGroup::crash(self, i);
    }

    fn corrupt(&mut self, i: usize, state: StateId) {
        ParallelServerGroup::corrupt(self, i, state);
    }

    fn restore(&mut self, i: usize, state: StateId) {
        ParallelServerGroup::restore(self, i, state);
    }

    fn kill_process(&mut self, i: usize) {
        ParallelServerGroup::kill_process(self, i);
    }

    fn restart_process(&mut self, i: usize) -> Result<ReplayStats> {
        ParallelServerGroup::restart_process(self, i)
    }

    fn resync(&mut self, i: usize, seq: u64, state: StateId) -> Result<()> {
        ParallelServerGroup::resync(self, i, seq, state);
        Ok(())
    }

    fn try_collect_reports(&mut self) -> Vec<Option<MachineReport>> {
        ParallelServerGroup::try_collect_reports(self)
    }

    fn collect_reports(&mut self) -> Result<Vec<MachineReport>> {
        ParallelServerGroup::collect_reports(self)
    }

    fn shutdown(self: Box<Self>) -> Vec<Server> {
        ParallelServerGroup::shutdown(*self)
    }
}

impl Drop for ParallelServerGroup {
    fn drop(&mut self) {
        for h in &self.handles {
            let _ = h.commands.send(Command::Stop);
        }
        for h in &mut self.handles {
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
        // Keep the report sender alive until here so late reports do not
        // panic the threads.
        let _ = &self.report_sender;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_fusion_core::{projection_partitions, FaultModel, RecoveryEngine};
    use fsm_machines::fig1_machines;

    #[test]
    fn parallel_group_applies_events_concurrently() {
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        assert_eq!(group.len(), 2);
        assert!(!group.is_empty());
        let events: Vec<Event> = "00110".chars().map(|c| Event::new(c.to_string())).collect();
        group.apply_all(events.iter());
        let reports = group.collect_reports().unwrap();
        // 3 zeros → 0-counter at 0; 2 ones → 1-counter at 2.
        assert_eq!(reports[0], MachineReport::State(0));
        assert_eq!(reports[1], MachineReport::State(2));
        let servers = group.shutdown();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[0].events_seen(), 5);
    }

    #[test]
    fn apply_batch_matches_per_event_reference_path() {
        // The batched submission (one channel send per server) must leave
        // every server in exactly the state the per-event reference path
        // produces, including interleavings with fault commands.
        let machines = fig1_machines();
        let batched = ParallelServerGroup::spawn(&machines);
        let reference = ParallelServerGroup::spawn(&machines);
        let events: Vec<Event> = "0110100101101"
            .chars()
            .map(|c| Event::new(c.to_string()))
            .collect();
        batched.apply_batch(&events);
        for e in &events {
            reference.apply_event(e);
        }
        // A second batch after a crash command keeps the per-server command
        // order intact on both paths.
        batched.crash(1);
        reference.crash(1);
        batched.apply_batch(&events[..4]);
        for e in &events[..4] {
            reference.apply_event(e);
        }
        assert_eq!(
            batched.collect_reports().unwrap(),
            reference.collect_reports().unwrap()
        );
        // Empty batches are a no-op, not a command.
        batched.apply_batch(&[]);
        let b = batched.shutdown();
        let r = reference.shutdown();
        for (bs, rs) in b.iter().zip(r.iter()) {
            assert_eq!(bs.current_state(), rs.current_state());
            assert_eq!(bs.events_seen(), rs.events_seen());
        }
    }

    #[test]
    fn batch_to_one_server_and_async_report_markers() {
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        let events: Vec<Event> = "01101".chars().map(|c| Event::new(c.to_string())).collect();
        // The single-lane batch path: one command, one server.
        group.apply_batch_to(0, &events);
        // Empty batches are a no-op on every batch path (no Arc, no send).
        group.apply_batch_to(0, &[]);
        group.apply_batch(&[]);
        group.apply_all([].iter());
        // The async marker: request now, drain replies later.  FIFO order
        // guarantees the batch above is applied once server 0 answers.
        assert!(group.try_recv_report().is_none());
        let generation = group.request_reports();
        let mut got: Vec<Option<MachineReport>> = vec![None; 2];
        let mut received = 0;
        while received < 2 {
            let (i, g, r) = group
                .recv_report_timeout(Duration::from_secs(5))
                .expect("live servers answer the marker");
            if g == generation && got[i].is_none() {
                got[i] = Some(r);
                received += 1;
            }
        }
        let expected = machines[0].run(events.iter()).index();
        assert_eq!(got[0], Some(MachineReport::State(expected)));
        assert_eq!(
            got[1],
            Some(MachineReport::State(0)),
            "server 1 saw nothing"
        );
        let _ = group.shutdown();
    }

    #[test]
    fn parallel_group_matches_sequential_execution() {
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        let word = "0101101001";
        let events: Vec<Event> = word.chars().map(|c| Event::new(c.to_string())).collect();
        group.apply_all(events.iter());
        let reports = group.collect_reports().unwrap();
        for (i, m) in machines.iter().enumerate() {
            let expected = m.run(events.iter()).index();
            assert_eq!(reports[i], MachineReport::State(expected));
        }
        drop(group);
    }

    #[test]
    fn parallel_crash_and_recovery_roundtrip() {
        // Full distributed recovery: originals + fusion backup on threads,
        // crash one, rebuild its state with the recovery engine, push the
        // restored state back.
        let machines = fig1_machines();
        let sys = crate::FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        let mut all_machines = machines.clone();
        all_machines.extend(sys.fusion().machines.iter().cloned());
        let group = ParallelServerGroup::spawn(&all_machines);

        let events: Vec<Event> = "011010011"
            .chars()
            .map(|c| Event::new(c.to_string()))
            .collect();
        group.apply_all(events.iter());
        group.crash(0);

        let reports = group.collect_reports().unwrap();
        assert_eq!(reports[0], MachineReport::Crashed);

        let product = sys.product();
        let mut engine = RecoveryEngine::new(product.size());
        for (i, p) in projection_partitions(product).into_iter().enumerate() {
            engine
                .add_machine(machines[i].name().to_string(), p)
                .unwrap();
        }
        for (i, p) in sys.fusion().partitions.iter().enumerate() {
            engine.add_machine(format!("F{i}"), p.clone()).unwrap();
        }
        let recovery = engine.recover(&reports).unwrap();
        let expected = machines[0].run(events.iter()).index();
        assert_eq!(recovery.machine_states[0], expected);

        group.restore(0, StateId(recovery.machine_states[0]));
        let reports = group.collect_reports().unwrap();
        assert_eq!(reports[0], MachineReport::State(expected));
        let _ = group.shutdown();
    }

    #[test]
    fn collect_reports_errors_when_a_server_thread_dies() {
        // Regression test for the report-collection deadlock: the group
        // holds its own clone of the report sender, so before the liveness
        // tracking a dead server thread made `collect_reports` block on
        // `recv` forever.  Kill server 0's *thread* out-of-band (not the
        // modeled crash fault, which still answers) and the collection must
        // return an error naming it.
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        group.apply_event(&Event::new("0"));
        group.kill_process(0);
        match group.collect_reports() {
            Err(crate::DistsysError::MissingReports { servers }) => {
                assert_eq!(servers, vec![0])
            }
            other => panic!("expected MissingReports, got {other:?}"),
        }
        // The surviving servers still shut down cleanly and the dead
        // thread's final state is still collectable.
        let servers = group.shutdown();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[1].events_seen(), 1);
    }

    #[test]
    fn try_collect_reports_returns_partial_results_with_configured_timeout() {
        // The GroupConfig knobs replace the old hardcoded constants: a
        // short explicit deadline keeps the partial collection fast, and
        // the surviving server still answers.
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn_with(
            &machines,
            &GroupConfig::new()
                .report_poll(Duration::from_millis(1))
                .collect_timeout(Duration::from_millis(250)),
        );
        group.apply_event(&Event::new("1"));
        group.kill_process(1);
        let partial = group.try_collect_reports();
        assert!(partial[0].is_some());
        assert_eq!(partial[1], None);
        // A Stop-killed thread exits its loop gracefully, so its final
        // Server value is still collectable (unlike a panicked thread).
        let servers = group.shutdown();
        assert_eq!(servers.len(), 2);
    }

    #[test]
    fn durable_restart_replays_the_log_and_rejoins() {
        let machines = fig1_machines();
        let store = crate::storage::shared(crate::storage::MemStore::new());
        let mut group = ParallelServerGroup::spawn_durable(
            &machines,
            &GroupConfig::new(),
            OsClock::new(),
            store,
            "t",
            DurabilityConfig::new().snapshot_every(3),
        )
        .unwrap();
        let events: Vec<Event> = "011010011"
            .chars()
            .map(|c| Event::new(c.to_string()))
            .collect();
        for e in &events[..5] {
            group.apply_event(e);
        }
        // Stop drains the queue first, so all five events hit the log
        // before the thread exits.
        group.kill_process(0);
        // Events broadcast while a process is down are lost to it — the
        // missed suffix the rejoin replay has to make up.
        for e in &events[5..] {
            group.apply_event(e);
        }
        let stats = group.restart_process(0).unwrap();
        assert_eq!(stats.acked_seq, 5);
        assert_eq!(stats.snapshot_seq, 3); // snapshot_every = 3
        assert_eq!(stats.frames_replayed, 2);
        assert_eq!(stats.state, machines[0].run(events[..5].iter()));
        // Catch the rejoiner up on what it missed.
        for e in &events[5..] {
            group.apply_event_to(0, e);
        }
        let reports = group.collect_reports().unwrap();
        for (i, m) in machines.iter().enumerate() {
            assert_eq!(
                reports[i],
                MachineReport::State(m.run(events.iter()).index()),
                "server {i}"
            );
        }
        let _ = group.shutdown();
    }

    #[test]
    fn durable_resync_adopts_peer_state_at_group_seq() {
        let machines = fig1_machines();
        let store = crate::storage::shared(crate::storage::MemStore::new());
        let mut group = ParallelServerGroup::spawn_durable(
            &machines,
            &GroupConfig::new(),
            OsClock::new(),
            store,
            "t",
            DurabilityConfig::new().snapshot_every(32),
        )
        .unwrap();
        group.apply_event(&Event::new("0"));
        group.resync(0, 10, StateId(2));
        let reports = group.collect_reports().unwrap();
        assert_eq!(reports[0], MachineReport::State(2));
        // The resync snapshotted at the group sequence number, so a
        // kill/restart resumes from seq 10 — never regressing.
        group.kill_process(0);
        let stats = group.restart_process(0).unwrap();
        assert_eq!(stats.acked_seq, 10);
        assert_eq!(stats.state, StateId(2));
        let _ = group.shutdown();
    }

    #[test]
    fn restart_process_error_paths() {
        let machines = fig1_machines();
        // A plain group has nothing to restart from.
        let mut plain = ParallelServerGroup::spawn(&machines);
        plain.kill_process(0);
        assert!(matches!(
            plain.restart_process(0),
            Err(crate::DistsysError::NotDurable { server: 0 })
        ));
        let _ = plain.shutdown();
        // A durable group refuses to restart a live server or a bad index.
        let store = crate::storage::shared(crate::storage::MemStore::new());
        let mut group = ParallelServerGroup::spawn_durable(
            &machines,
            &GroupConfig::new(),
            OsClock::new(),
            store,
            "t",
            DurabilityConfig::new(),
        )
        .unwrap();
        assert!(matches!(
            group.restart_process(0),
            Err(crate::DistsysError::ServerUp { server: 0 })
        ));
        assert!(matches!(
            group.restart_process(9),
            Err(crate::DistsysError::NoSuchServer {
                server: 9,
                count: 2
            })
        ));
        let _ = group.shutdown();
    }

    #[test]
    fn collect_reports_errors_when_a_server_thread_panics() {
        // Same deadlock through the panic path the issue describes: the
        // thread dies mid-command rather than exiting its loop.  Restoring
        // to an out-of-range state makes the next event application panic
        // inside server 1's thread (out-of-bounds transition lookup).
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        group.restore(1, StateId(usize::MAX));
        group.apply_event(&Event::new("1"));
        match group.collect_reports() {
            Err(crate::DistsysError::MissingReports { servers }) => {
                assert_eq!(servers, vec![1])
            }
            other => panic!("expected MissingReports, got {other:?}"),
        }
        // Shutdown after a panicked thread must not panic the caller: the
        // dead server simply has no final value.
        let servers = group.shutdown();
        assert_eq!(servers.len(), 1);
        assert_eq!(servers[0].name(), machines[0].name());
    }
}
