//! Threaded execution of a server group.
//!
//! The paper's servers are independent processes; this module runs each
//! server on its own OS thread, broadcasting events over channels and
//! collecting state reports on demand — a small-scale but faithful model of
//! the deployment the paper assumes (independent servers, no shared state,
//! communication only for recovery).
//!
//! The implementation uses `crossbeam-channel` for the per-server command
//! queues and a shared response channel for reports.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use fsm_dfsm::{Dfsm, Event, StateId};
use fsm_fusion_core::MachineReport;

use crate::env::{GroupConfig, OsClock, ServerGroup};
use crate::error::{DistsysError, Result};
use crate::server::Server;

/// Commands sent to a server thread.
enum Command {
    /// Apply an event.
    Apply(Event),
    /// Apply a whole shared batch of events in order.  One channel send per
    /// server per batch (the `Arc` is cloned, not the events), instead of
    /// one send per event per server.
    ApplyBatch(Arc<[Event]>),
    /// Crash the server.
    Crash,
    /// Corrupt the server to the given state.
    Corrupt(StateId),
    /// Restore the server to the given state (post-recovery).
    Restore(StateId),
    /// Ask for a state report for the given collection generation.
    Report(u64),
    /// Shut the thread down.
    Stop,
}

/// A server running on its own thread.
struct ServerHandle {
    commands: Sender<Command>,
    join: Option<thread::JoinHandle<Server>>,
}

/// A group of servers, each on its own thread, driven by broadcast events.
///
/// This type mirrors the event-application and fault-injection API of
/// [`crate::FusedSystem`] but performs the work concurrently.  Recovery
/// logic is intentionally not duplicated here: callers collect reports with
/// [`ParallelServerGroup::collect_reports`] and feed them to a
/// [`fsm_fusion_core::RecoveryEngine`], then push the corrected states back
/// with [`ParallelServerGroup::restore`].
pub struct ParallelServerGroup {
    handles: Vec<ServerHandle>,
    reports: Receiver<(usize, u64, MachineReport)>,
    report_sender: Sender<(usize, u64, MachineReport)>,
    /// Current report-collection generation; replies tagged with an older
    /// generation are stale (a previous collection gave up on them) and are
    /// discarded on receipt.
    generation: std::sync::atomic::AtomicU64,
    /// How often collection re-checks the liveness of servers that have not
    /// reported yet (resolved from [`GroupConfig`]).
    report_poll: Duration,
    /// Hard ceiling on one report collection: even a server thread that is
    /// alive but wedged cannot block the caller past this.  A healthy
    /// server that cannot drain its backlog within the deadline is reported
    /// missing, and its late answer is discarded by the generation filter.
    /// The default is sized orders of magnitude above any broadcast backlog
    /// the workloads here produce, so only a genuinely wedged (or dead)
    /// thread hits it.
    collect_timeout: Duration,
    /// The environment clock all deadline math goes through — never raw
    /// `Instant::now()`, so the collection logic reads identically to the
    /// virtual-time implementation in the simulator.
    clock: OsClock,
}

impl ParallelServerGroup {
    /// Spawns one thread per machine with the environment-variable
    /// configuration ([`GroupConfig::from_env`]).
    pub fn spawn(machines: &[Dfsm]) -> Self {
        Self::spawn_with(machines, &GroupConfig::from_env())
    }

    /// Spawns one thread per machine with an explicit [`GroupConfig`].
    pub fn spawn_with(machines: &[Dfsm], config: &GroupConfig) -> Self {
        Self::spawn_clocked(machines, config, OsClock::new())
    }

    /// [`ParallelServerGroup::spawn_with`] on a caller-owned clock, so all
    /// groups of one [`OsEnvironment`](crate::OsEnvironment) share its
    /// timeline.
    pub fn spawn_clocked(machines: &[Dfsm], config: &GroupConfig, clock: OsClock) -> Self {
        let (report_sender, reports) = unbounded();
        let handles = machines
            .iter()
            .enumerate()
            .map(|(index, machine)| {
                let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
                let report_tx = report_sender.clone();
                let machine = machine.clone();
                let join = thread::spawn(move || {
                    let mut server = Server::new(machine);
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            Command::Apply(e) => server.apply(&e),
                            Command::ApplyBatch(batch) => {
                                for e in batch.iter() {
                                    server.apply(e);
                                }
                            }
                            Command::Crash => server.crash(),
                            Command::Corrupt(s) => {
                                server.corrupt(s);
                            }
                            Command::Restore(s) => server.restore(s),
                            Command::Report(generation) => {
                                let _ = report_tx.send((index, generation, server.report()));
                            }
                            Command::Stop => break,
                        }
                    }
                    server
                });
                ServerHandle {
                    commands: tx,
                    join: Some(join),
                }
            })
            .collect();
        ParallelServerGroup {
            handles,
            reports,
            report_sender,
            generation: std::sync::atomic::AtomicU64::new(0),
            report_poll: config.resolved_report_poll(),
            collect_timeout: config.resolved_collect_timeout(),
            clock,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Broadcasts an event to every server.
    ///
    /// The reference per-event path (one channel send per server per
    /// event); stream callers should prefer
    /// [`ParallelServerGroup::apply_batch`], which is pinned equivalent by
    /// a test.
    pub fn apply_event(&self, event: &Event) {
        for h in &self.handles {
            let _ = h.commands.send(Command::Apply(event.clone()));
        }
    }

    /// Broadcasts a whole batch of events with **one channel send per
    /// server**: the events are cloned once into a shared `Arc<[Event]>`
    /// and every server thread walks the same slice in order.  Command
    /// ordering per server is unchanged, so the observable behavior equals
    /// the same events sent through [`ParallelServerGroup::apply_event`]
    /// one at a time.
    pub fn apply_batch(&self, events: &[Event]) {
        if events.is_empty() {
            return;
        }
        self.send_batch(events.into());
    }

    /// Broadcasts a sequence of events, batched: the whole sequence is
    /// submitted per server as one shared batch (events borrowed from the
    /// iterator are cloned exactly once, into the `Arc` slice itself).
    pub fn apply_all<'a, I: IntoIterator<Item = &'a Event>>(&self, events: I) {
        let batch: Vec<Event> = events.into_iter().cloned().collect();
        if batch.is_empty() {
            return;
        }
        self.send_batch(Arc::from(batch));
    }

    fn send_batch(&self, batch: Arc<[Event]>) {
        for h in &self.handles {
            let _ = h.commands.send(Command::ApplyBatch(Arc::clone(&batch)));
        }
    }

    /// Crashes server `i`.
    pub fn crash(&self, i: usize) {
        let _ = self.handles[i].commands.send(Command::Crash);
    }

    /// Corrupts server `i` to `state`.
    pub fn corrupt(&self, i: usize, state: StateId) {
        let _ = self.handles[i].commands.send(Command::Corrupt(state));
    }

    /// Restores server `i` to `state` (after recovery).
    pub fn restore(&self, i: usize, state: StateId) {
        let _ = self.handles[i].commands.send(Command::Restore(state));
    }

    /// Kills server `i`'s *thread* (distinct from the modeled crash fault,
    /// which keeps answering): pending commands are processed first, then
    /// the thread exits and the server's reports go missing.
    pub fn kill_process(&self, i: usize) {
        let _ = self.handles[i].commands.send(Command::Stop);
    }

    /// Collects a state report from every server.  This is the
    /// synchronization point of the recovery protocol: it waits until every
    /// server has answered, which also guarantees all previously broadcast
    /// events have been applied (commands are processed in order).
    ///
    /// A server whose thread has died (e.g. panicked in `Server::apply`)
    /// can never answer; the group's own clone of the report sender keeps
    /// the channel open, so a plain blocking `recv` would wait forever.
    /// Instead the drain polls with a timeout and re-checks the join
    /// handles of the servers still outstanding: once every missing server's
    /// thread is finished — or the overall deadline passes — collection
    /// gives up and returns [`DistsysError::MissingReports`] naming them.
    /// Each collection runs under a fresh generation tag, so a reply that
    /// arrives *after* its collection gave up (a slow-but-alive server) is
    /// recognized as stale and discarded by the next collection instead of
    /// being mistaken for its answer.
    pub fn collect_reports(&self) -> Result<Vec<MachineReport>> {
        let out = self.try_collect_reports();
        let missing: Vec<usize> = out
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            Ok(out.into_iter().map(|r| r.expect("all received")).collect())
        } else {
            Err(DistsysError::MissingReports { servers: missing })
        }
    }

    /// The partial form of [`ParallelServerGroup::collect_reports`]:
    /// servers that never answered before the deadline yield `None` at
    /// their index instead of failing the whole collection.
    ///
    /// All deadline math runs on the group's environment clock
    /// ([`OsClock`]) — the collection loop never consults `Instant::now()`
    /// directly, mirroring how the simulated runner computes the same
    /// deadline on virtual time.
    pub fn try_collect_reports(&self) -> Vec<Option<MachineReport>> {
        let generation = self
            .generation
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        for h in &self.handles {
            // A send to a dead server's queue fails; its absence is
            // detected below rather than here, so the one error path covers
            // threads that die before *and* after the request lands.
            let _ = h.commands.send(Command::Report(generation));
        }
        let n = self.handles.len();
        let mut out: Vec<Option<MachineReport>> = vec![None; n];
        let mut received = 0;
        let deadline = self.clock.now() + self.collect_timeout;
        while received < n {
            match self.reports.recv_timeout(self.report_poll) {
                Ok((_, gen, _)) if gen != generation => {
                    // Stale reply from a collection that already gave up.
                }
                Ok((i, _, r)) => {
                    if out[i].is_none() {
                        received += 1;
                    }
                    out[i] = Some(r);
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                    let all_dead = (0..n).filter(|&i| out[i].is_none()).all(|i| {
                        self.handles[i]
                            .join
                            .as_ref()
                            .map_or(true, |j| j.is_finished())
                    });
                    if all_dead || self.clock.now() >= deadline {
                        break;
                    }
                }
            }
        }
        out
    }

    /// Stops all threads and returns the final `Server` values (for
    /// inspection in tests).  Servers whose threads panicked have no final
    /// value and are omitted, matching the recoverable-error contract of
    /// [`ParallelServerGroup::collect_reports`] — a caller that handled
    /// [`DistsysError::MissingReports`] can still tear the group down.
    pub fn shutdown(mut self) -> Vec<Server> {
        self.handles
            .iter()
            .for_each(|h| drop(h.commands.send(Command::Stop)));
        self.handles
            .iter_mut()
            .filter_map(|h| h.join.take().expect("joined once").join().ok())
            .collect()
    }
}

/// The [`ServerGroup`] view of the threaded runner, delegating to the
/// inherent methods (which remain available, `&self`, for existing
/// callers).
impl ServerGroup for ParallelServerGroup {
    fn len(&self) -> usize {
        ParallelServerGroup::len(self)
    }

    fn apply_event(&mut self, event: &Event) {
        ParallelServerGroup::apply_event(self, event);
    }

    fn apply_batch(&mut self, events: &[Event]) {
        ParallelServerGroup::apply_batch(self, events);
    }

    fn crash(&mut self, i: usize) {
        ParallelServerGroup::crash(self, i);
    }

    fn corrupt(&mut self, i: usize, state: StateId) {
        ParallelServerGroup::corrupt(self, i, state);
    }

    fn restore(&mut self, i: usize, state: StateId) {
        ParallelServerGroup::restore(self, i, state);
    }

    fn kill_process(&mut self, i: usize) {
        ParallelServerGroup::kill_process(self, i);
    }

    fn try_collect_reports(&mut self) -> Vec<Option<MachineReport>> {
        ParallelServerGroup::try_collect_reports(self)
    }

    fn collect_reports(&mut self) -> Result<Vec<MachineReport>> {
        ParallelServerGroup::collect_reports(self)
    }

    fn shutdown(self: Box<Self>) -> Vec<Server> {
        ParallelServerGroup::shutdown(*self)
    }
}

impl Drop for ParallelServerGroup {
    fn drop(&mut self) {
        for h in &self.handles {
            let _ = h.commands.send(Command::Stop);
        }
        for h in &mut self.handles {
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
        // Keep the report sender alive until here so late reports do not
        // panic the threads.
        let _ = &self.report_sender;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_fusion_core::{projection_partitions, FaultModel, RecoveryEngine};
    use fsm_machines::fig1_machines;

    #[test]
    fn parallel_group_applies_events_concurrently() {
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        assert_eq!(group.len(), 2);
        assert!(!group.is_empty());
        let events: Vec<Event> = "00110".chars().map(|c| Event::new(c.to_string())).collect();
        group.apply_all(events.iter());
        let reports = group.collect_reports().unwrap();
        // 3 zeros → 0-counter at 0; 2 ones → 1-counter at 2.
        assert_eq!(reports[0], MachineReport::State(0));
        assert_eq!(reports[1], MachineReport::State(2));
        let servers = group.shutdown();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[0].events_seen(), 5);
    }

    #[test]
    fn apply_batch_matches_per_event_reference_path() {
        // The batched submission (one channel send per server) must leave
        // every server in exactly the state the per-event reference path
        // produces, including interleavings with fault commands.
        let machines = fig1_machines();
        let batched = ParallelServerGroup::spawn(&machines);
        let reference = ParallelServerGroup::spawn(&machines);
        let events: Vec<Event> = "0110100101101"
            .chars()
            .map(|c| Event::new(c.to_string()))
            .collect();
        batched.apply_batch(&events);
        for e in &events {
            reference.apply_event(e);
        }
        // A second batch after a crash command keeps the per-server command
        // order intact on both paths.
        batched.crash(1);
        reference.crash(1);
        batched.apply_batch(&events[..4]);
        for e in &events[..4] {
            reference.apply_event(e);
        }
        assert_eq!(
            batched.collect_reports().unwrap(),
            reference.collect_reports().unwrap()
        );
        // Empty batches are a no-op, not a command.
        batched.apply_batch(&[]);
        let b = batched.shutdown();
        let r = reference.shutdown();
        for (bs, rs) in b.iter().zip(r.iter()) {
            assert_eq!(bs.current_state(), rs.current_state());
            assert_eq!(bs.events_seen(), rs.events_seen());
        }
    }

    #[test]
    fn parallel_group_matches_sequential_execution() {
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        let word = "0101101001";
        let events: Vec<Event> = word.chars().map(|c| Event::new(c.to_string())).collect();
        group.apply_all(events.iter());
        let reports = group.collect_reports().unwrap();
        for (i, m) in machines.iter().enumerate() {
            let expected = m.run(events.iter()).index();
            assert_eq!(reports[i], MachineReport::State(expected));
        }
        drop(group);
    }

    #[test]
    fn parallel_crash_and_recovery_roundtrip() {
        // Full distributed recovery: originals + fusion backup on threads,
        // crash one, rebuild its state with the recovery engine, push the
        // restored state back.
        let machines = fig1_machines();
        let sys = crate::FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        let mut all_machines = machines.clone();
        all_machines.extend(sys.fusion().machines.iter().cloned());
        let group = ParallelServerGroup::spawn(&all_machines);

        let events: Vec<Event> = "011010011"
            .chars()
            .map(|c| Event::new(c.to_string()))
            .collect();
        group.apply_all(events.iter());
        group.crash(0);

        let reports = group.collect_reports().unwrap();
        assert_eq!(reports[0], MachineReport::Crashed);

        let product = sys.product();
        let mut engine = RecoveryEngine::new(product.size());
        for (i, p) in projection_partitions(product).into_iter().enumerate() {
            engine
                .add_machine(machines[i].name().to_string(), p)
                .unwrap();
        }
        for (i, p) in sys.fusion().partitions.iter().enumerate() {
            engine.add_machine(format!("F{i}"), p.clone()).unwrap();
        }
        let recovery = engine.recover(&reports).unwrap();
        let expected = machines[0].run(events.iter()).index();
        assert_eq!(recovery.machine_states[0], expected);

        group.restore(0, StateId(recovery.machine_states[0]));
        let reports = group.collect_reports().unwrap();
        assert_eq!(reports[0], MachineReport::State(expected));
        let _ = group.shutdown();
    }

    #[test]
    fn collect_reports_errors_when_a_server_thread_dies() {
        // Regression test for the report-collection deadlock: the group
        // holds its own clone of the report sender, so before the liveness
        // tracking a dead server thread made `collect_reports` block on
        // `recv` forever.  Kill server 0's *thread* out-of-band (not the
        // modeled crash fault, which still answers) and the collection must
        // return an error naming it.
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        group.apply_event(&Event::new("0"));
        group.kill_process(0);
        match group.collect_reports() {
            Err(crate::DistsysError::MissingReports { servers }) => {
                assert_eq!(servers, vec![0])
            }
            other => panic!("expected MissingReports, got {other:?}"),
        }
        // The surviving servers still shut down cleanly and the dead
        // thread's final state is still collectable.
        let servers = group.shutdown();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[1].events_seen(), 1);
    }

    #[test]
    fn try_collect_reports_returns_partial_results_with_configured_timeout() {
        // The GroupConfig knobs replace the old hardcoded constants: a
        // short explicit deadline keeps the partial collection fast, and
        // the surviving server still answers.
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn_with(
            &machines,
            &GroupConfig::new()
                .report_poll(Duration::from_millis(1))
                .collect_timeout(Duration::from_millis(250)),
        );
        group.apply_event(&Event::new("1"));
        group.kill_process(1);
        let partial = group.try_collect_reports();
        assert!(partial[0].is_some());
        assert_eq!(partial[1], None);
        // A Stop-killed thread exits its loop gracefully, so its final
        // Server value is still collectable (unlike a panicked thread).
        let servers = group.shutdown();
        assert_eq!(servers.len(), 2);
    }

    #[test]
    fn collect_reports_errors_when_a_server_thread_panics() {
        // Same deadlock through the panic path the issue describes: the
        // thread dies mid-command rather than exiting its loop.  Restoring
        // to an out-of-range state makes the next event application panic
        // inside server 1's thread (out-of-bounds transition lookup).
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        group.restore(1, StateId(usize::MAX));
        group.apply_event(&Event::new("1"));
        match group.collect_reports() {
            Err(crate::DistsysError::MissingReports { servers }) => {
                assert_eq!(servers, vec![1])
            }
            other => panic!("expected MissingReports, got {other:?}"),
        }
        // Shutdown after a panicked thread must not panic the caller: the
        // dead server simply has no final value.
        let servers = group.shutdown();
        assert_eq!(servers.len(), 1);
        assert_eq!(servers[0].name(), machines[0].name());
    }
}
