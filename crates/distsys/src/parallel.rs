//! Threaded execution of a server group.
//!
//! The paper's servers are independent processes; this module runs each
//! server on its own OS thread, broadcasting events over channels and
//! collecting state reports on demand — a small-scale but faithful model of
//! the deployment the paper assumes (independent servers, no shared state,
//! communication only for recovery).
//!
//! The implementation uses `crossbeam-channel` for the per-server command
//! queues and a shared response channel for reports.

use std::thread;

use crossbeam_channel::{unbounded, Receiver, Sender};
use fsm_dfsm::{Dfsm, Event, StateId};
use fsm_fusion_core::MachineReport;

use crate::server::Server;

/// Commands sent to a server thread.
enum Command {
    /// Apply an event.
    Apply(Event),
    /// Crash the server.
    Crash,
    /// Corrupt the server to the given state.
    Corrupt(StateId),
    /// Restore the server to the given state (post-recovery).
    Restore(StateId),
    /// Ask for a state report.
    Report,
    /// Shut the thread down.
    Stop,
}

/// A server running on its own thread.
struct ServerHandle {
    commands: Sender<Command>,
    join: Option<thread::JoinHandle<Server>>,
}

/// A group of servers, each on its own thread, driven by broadcast events.
///
/// This type mirrors the event-application and fault-injection API of
/// [`crate::FusedSystem`] but performs the work concurrently.  Recovery
/// logic is intentionally not duplicated here: callers collect reports with
/// [`ParallelServerGroup::collect_reports`] and feed them to a
/// [`fsm_fusion_core::RecoveryEngine`], then push the corrected states back
/// with [`ParallelServerGroup::restore`].
pub struct ParallelServerGroup {
    handles: Vec<ServerHandle>,
    reports: Receiver<(usize, MachineReport)>,
    report_sender: Sender<(usize, MachineReport)>,
}

impl ParallelServerGroup {
    /// Spawns one thread per machine.
    pub fn spawn(machines: &[Dfsm]) -> Self {
        let (report_sender, reports) = unbounded();
        let handles = machines
            .iter()
            .enumerate()
            .map(|(index, machine)| {
                let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
                let report_tx = report_sender.clone();
                let machine = machine.clone();
                let join = thread::spawn(move || {
                    let mut server = Server::new(machine);
                    while let Ok(cmd) = rx.recv() {
                        match cmd {
                            Command::Apply(e) => server.apply(&e),
                            Command::Crash => server.crash(),
                            Command::Corrupt(s) => {
                                server.corrupt(s);
                            }
                            Command::Restore(s) => server.restore(s),
                            Command::Report => {
                                let _ = report_tx.send((index, server.report()));
                            }
                            Command::Stop => break,
                        }
                    }
                    server
                });
                ServerHandle {
                    commands: tx,
                    join: Some(join),
                }
            })
            .collect();
        ParallelServerGroup {
            handles,
            reports,
            report_sender,
        }
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Broadcasts an event to every server.
    pub fn apply_event(&self, event: &Event) {
        for h in &self.handles {
            let _ = h.commands.send(Command::Apply(event.clone()));
        }
    }

    /// Broadcasts a sequence of events.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a Event>>(&self, events: I) {
        for e in events {
            self.apply_event(e);
        }
    }

    /// Crashes server `i`.
    pub fn crash(&self, i: usize) {
        let _ = self.handles[i].commands.send(Command::Crash);
    }

    /// Corrupts server `i` to `state`.
    pub fn corrupt(&self, i: usize, state: StateId) {
        let _ = self.handles[i].commands.send(Command::Corrupt(state));
    }

    /// Restores server `i` to `state` (after recovery).
    pub fn restore(&self, i: usize, state: StateId) {
        let _ = self.handles[i].commands.send(Command::Restore(state));
    }

    /// Collects a state report from every server.  This is the
    /// synchronization point of the recovery protocol: it waits until every
    /// server has answered, which also guarantees all previously broadcast
    /// events have been applied (commands are processed in order).
    pub fn collect_reports(&self) -> Vec<MachineReport> {
        for h in &self.handles {
            let _ = h.commands.send(Command::Report);
        }
        let mut out: Vec<Option<MachineReport>> = vec![None; self.handles.len()];
        let mut received = 0;
        while received < self.handles.len() {
            let (i, r) = self
                .reports
                .recv()
                .expect("server threads outlive the group");
            if out[i].is_none() {
                received += 1;
            }
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("all received")).collect()
    }

    /// Stops all threads and returns the final `Server` values (for
    /// inspection in tests).
    pub fn shutdown(mut self) -> Vec<Server> {
        self.handles
            .iter()
            .for_each(|h| drop(h.commands.send(Command::Stop)));
        self.handles
            .iter_mut()
            .map(|h| {
                h.join
                    .take()
                    .expect("joined once")
                    .join()
                    .expect("server thread panicked")
            })
            .collect()
    }
}

impl Drop for ParallelServerGroup {
    fn drop(&mut self) {
        for h in &self.handles {
            let _ = h.commands.send(Command::Stop);
        }
        for h in &mut self.handles {
            if let Some(j) = h.join.take() {
                let _ = j.join();
            }
        }
        // Keep the report sender alive until here so late reports do not
        // panic the threads.
        let _ = &self.report_sender;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_fusion_core::{projection_partitions, FaultModel, RecoveryEngine};
    use fsm_machines::fig1_machines;

    #[test]
    fn parallel_group_applies_events_concurrently() {
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        assert_eq!(group.len(), 2);
        assert!(!group.is_empty());
        let events: Vec<Event> = "00110".chars().map(|c| Event::new(c.to_string())).collect();
        group.apply_all(events.iter());
        let reports = group.collect_reports();
        // 3 zeros → 0-counter at 0; 2 ones → 1-counter at 2.
        assert_eq!(reports[0], MachineReport::State(0));
        assert_eq!(reports[1], MachineReport::State(2));
        let servers = group.shutdown();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[0].events_seen(), 5);
    }

    #[test]
    fn parallel_group_matches_sequential_execution() {
        let machines = fig1_machines();
        let group = ParallelServerGroup::spawn(&machines);
        let word = "0101101001";
        let events: Vec<Event> = word.chars().map(|c| Event::new(c.to_string())).collect();
        group.apply_all(events.iter());
        let reports = group.collect_reports();
        for (i, m) in machines.iter().enumerate() {
            let expected = m.run(events.iter()).index();
            assert_eq!(reports[i], MachineReport::State(expected));
        }
        drop(group);
    }

    #[test]
    fn parallel_crash_and_recovery_roundtrip() {
        // Full distributed recovery: originals + fusion backup on threads,
        // crash one, rebuild its state with the recovery engine, push the
        // restored state back.
        let machines = fig1_machines();
        let sys = crate::FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        let mut all_machines = machines.clone();
        all_machines.extend(sys.fusion().machines.iter().cloned());
        let group = ParallelServerGroup::spawn(&all_machines);

        let events: Vec<Event> = "011010011"
            .chars()
            .map(|c| Event::new(c.to_string()))
            .collect();
        group.apply_all(events.iter());
        group.crash(0);

        let reports = group.collect_reports();
        assert_eq!(reports[0], MachineReport::Crashed);

        let product = sys.product();
        let mut engine = RecoveryEngine::new(product.size());
        for (i, p) in projection_partitions(product).into_iter().enumerate() {
            engine
                .add_machine(machines[i].name().to_string(), p)
                .unwrap();
        }
        for (i, p) in sys.fusion().partitions.iter().enumerate() {
            engine.add_machine(format!("F{i}"), p.clone()).unwrap();
        }
        let recovery = engine.recover(&reports).unwrap();
        let expected = machines[0].run(events.iter()).index();
        assert_eq!(recovery.machine_states[0], expected);

        group.restore(0, StateId(recovery.machine_states[0]));
        let reports = group.collect_reports();
        assert_eq!(reports[0], MachineReport::State(expected));
        let _ = group.shutdown();
    }
}
