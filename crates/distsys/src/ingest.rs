//! Batched ingestion front-end between N clients and a [`ServerGroup`].
//!
//! The north star asks the system to serve heavy traffic; this module is the
//! serving path.  Clients push events into bounded per-client queues
//! (mutex + condvar over a fixed-capacity `VecDeque`); an aggregator
//! ([`IngestPipeline::pump`]) drains them round-robin into one shared batch
//! flushed to the group when it reaches [`IngestConfig::resolved_batch_max`]
//! events (*size* trigger) or when
//! [`IngestConfig::resolved_flush_interval`] has elapsed since the last
//! flush (*time* trigger).  Full queues exert **backpressure**: the caller
//! chooses between the typed [`DistsysError::Backpressure`] error
//! ([`ClientHandle::try_push`]) and blocking until the aggregator makes
//! room ([`ClientHandle::push_blocking`]).
//!
//! The design follows the fustor stability spec (SNIPPETS.md #1): bounded
//! ring buffers, batch aggregation, exponential-backoff retry on a
//! struggling server, and **exception isolation** — a dead server's batches
//! are diverted into a bounded side buffer while the pipeline keeps feeding
//! its siblings at full speed, its reports degrade to the existing
//! [`DistsysError::MissingReports`] path, and a successful
//! [`ServerGroup::restart_process`] replays the backlog to rejoin it.
//!
//! Time is injected by the caller (every entry point takes `now`), so the
//! same pipeline runs on the wall clock of
//! [`OsEnvironment`](crate::OsEnvironment) and on the virtual clock of
//! [`SimEnvironment`](crate::sim::SimEnvironment) — where the flush timer
//! fires on *virtual* deadlines and seeded replay stays bit-identical.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use fsm_dfsm::Event;

use crate::env::ServerGroup;
use crate::error::{DistsysError, Result};

/// Default per-client queue capacity.
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// Default size trigger: flush once this many events are pending.
pub const DEFAULT_BATCH_MAX: usize = 256;

/// Default time trigger: flush pending events once this much time has
/// passed since the last flush.
pub const DEFAULT_FLUSH_INTERVAL: Duration = Duration::from_millis(2);

/// Default base delay of the exponential-backoff restart schedule.
pub const DEFAULT_RETRY_BASE: Duration = Duration::from_millis(5);

/// Default ceiling of the exponential-backoff restart schedule.
pub const DEFAULT_RETRY_CAP: Duration = Duration::from_secs(1);

/// Default number of failed restart probes before a lane is isolated.
pub const DEFAULT_MAX_RETRIES: u32 = 5;

/// Default capacity of the per-lane divert buffer holding batches for a
/// down server until it rejoins.
pub const DEFAULT_DIVERT_CAP: usize = 4096;

/// Most enqueue-to-flush latency samples a pipeline retains (covers a
/// full 1M-event benchmark run without unbounded growth).
pub const LATENCY_SAMPLE_CAP: usize = 1 << 20;

/// Configuration for an [`IngestPipeline`]: queue capacity, batch size,
/// flush interval and the restart-retry schedule.
///
/// Follows the same explicit > environment > default precedence convention
/// as [`GroupConfig`](crate::GroupConfig): builder setters win over the
/// `FSM_DISTSYS_QUEUE_CAP` / `FSM_DISTSYS_BATCH_MAX` /
/// `FSM_DISTSYS_FLUSH_INTERVAL_MS` / `FSM_DISTSYS_RETRY_BASE_MS`
/// environment variables, which win over the defaults.  The environment is
/// read once, at [`IngestConfig::from_env`].
///
/// ```
/// use fsm_distsys::ingest::{IngestConfig, DEFAULT_BATCH_MAX};
///
/// let cfg = IngestConfig::new().batch_max(64);
/// assert_eq!(cfg.resolved_batch_max(), 64);
/// assert_eq!(IngestConfig::new().resolved_batch_max(), DEFAULT_BATCH_MAX);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestConfig {
    queue_cap: Option<usize>,
    env_queue_cap: Option<usize>,
    batch_max: Option<usize>,
    env_batch_max: Option<usize>,
    flush_interval: Option<Duration>,
    env_flush_interval: Option<Duration>,
    retry_base: Option<Duration>,
    env_retry_base: Option<Duration>,
    retry_cap: Option<Duration>,
    max_retries: Option<u32>,
    divert_cap: Option<usize>,
}

impl IngestConfig {
    /// An empty configuration: every knob resolves to its default.
    pub fn new() -> Self {
        IngestConfig::default()
    }

    /// A configuration snapshotting the `FSM_DISTSYS_QUEUE_CAP`,
    /// `FSM_DISTSYS_BATCH_MAX`, `FSM_DISTSYS_FLUSH_INTERVAL_MS` and
    /// `FSM_DISTSYS_RETRY_BASE_MS` environment variables (positive
    /// integers; unset or unparsable values fall through to the defaults).
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var("FSM_DISTSYS_QUEUE_CAP").ok().as_deref(),
            std::env::var("FSM_DISTSYS_BATCH_MAX").ok().as_deref(),
            std::env::var("FSM_DISTSYS_FLUSH_INTERVAL_MS")
                .ok()
                .as_deref(),
            std::env::var("FSM_DISTSYS_RETRY_BASE_MS").ok().as_deref(),
        )
    }

    /// Pure core of [`IngestConfig::from_env`], separated so precedence is
    /// testable without mutating process state.
    pub fn from_env_values(
        queue_cap: Option<&str>,
        batch_max: Option<&str>,
        flush_ms: Option<&str>,
        retry_ms: Option<&str>,
    ) -> Self {
        let count = |v: Option<&str>| {
            v.and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        let millis = |v: Option<&str>| {
            v.and_then(|s| s.trim().parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis)
        };
        IngestConfig {
            env_queue_cap: count(queue_cap),
            env_batch_max: count(batch_max),
            env_flush_interval: millis(flush_ms),
            env_retry_base: millis(retry_ms),
            ..IngestConfig::default()
        }
    }

    /// Explicitly sets the per-client queue capacity (highest precedence).
    pub fn queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = Some(cap.max(1));
        self
    }

    /// Explicitly sets the size trigger (highest precedence).
    pub fn batch_max(mut self, max: usize) -> Self {
        self.batch_max = Some(max.max(1));
        self
    }

    /// Explicitly sets the time trigger (highest precedence).
    pub fn flush_interval(mut self, interval: Duration) -> Self {
        self.flush_interval = Some(interval);
        self
    }

    /// Explicitly sets the backoff base delay (highest precedence).
    pub fn retry_base(mut self, base: Duration) -> Self {
        self.retry_base = Some(base);
        self
    }

    /// Sets the backoff ceiling (explicit-only knob).
    pub fn retry_cap(mut self, cap: Duration) -> Self {
        self.retry_cap = Some(cap);
        self
    }

    /// Sets how many failed restart probes isolate a lane (explicit-only
    /// knob).
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = Some(retries);
        self
    }

    /// Sets the per-lane divert-buffer capacity (explicit-only knob).
    pub fn divert_cap(mut self, cap: usize) -> Self {
        self.divert_cap = Some(cap);
        self
    }

    /// The queue capacity after precedence: explicit > env > default.
    pub fn resolved_queue_cap(&self) -> usize {
        self.queue_cap
            .or(self.env_queue_cap)
            .unwrap_or(DEFAULT_QUEUE_CAP)
    }

    /// The size trigger after precedence: explicit > env > default.
    pub fn resolved_batch_max(&self) -> usize {
        self.batch_max
            .or(self.env_batch_max)
            .unwrap_or(DEFAULT_BATCH_MAX)
    }

    /// The time trigger after precedence: explicit > env > default.
    pub fn resolved_flush_interval(&self) -> Duration {
        self.flush_interval
            .or(self.env_flush_interval)
            .unwrap_or(DEFAULT_FLUSH_INTERVAL)
    }

    /// The backoff base after precedence: explicit > env > default.
    pub fn resolved_retry_base(&self) -> Duration {
        self.retry_base
            .or(self.env_retry_base)
            .unwrap_or(DEFAULT_RETRY_BASE)
    }

    /// The backoff ceiling (explicit or default).
    pub fn resolved_retry_cap(&self) -> Duration {
        self.retry_cap.unwrap_or(DEFAULT_RETRY_CAP)
    }

    /// The isolation threshold (explicit or default).
    pub fn resolved_max_retries(&self) -> u32 {
        self.max_retries.unwrap_or(DEFAULT_MAX_RETRIES)
    }

    /// The divert-buffer capacity (explicit or default).
    pub fn resolved_divert_cap(&self) -> usize {
        self.divert_cap.unwrap_or(DEFAULT_DIVERT_CAP)
    }
}

/// One client's bounded queue: a fixed-capacity `VecDeque` of
/// `(event, enqueue-time nanos)` behind a mutex, with a condvar the
/// aggregator signals when it makes room.
struct ClientQueue {
    items: Mutex<VecDeque<(Event, u64)>>,
    space: Condvar,
    cap: usize,
    client: usize,
}

/// A cloneable, `Send` handle to one client's bounded queue, so real client
/// threads can push while the aggregator drains.
#[derive(Clone)]
pub struct ClientHandle {
    queue: Arc<ClientQueue>,
}

impl ClientHandle {
    /// Enqueues one event, failing with [`DistsysError::Backpressure`] when
    /// the queue is full — the typed, non-blocking face of backpressure.
    ///
    /// `now` stamps the event's enqueue time (on whichever clock the caller
    /// drives the pipeline with) for the enqueue-to-flush latency samples.
    pub fn try_push(&self, event: Event, now: Duration) -> Result<()> {
        let mut items = self.queue.items.lock().expect("queue lock");
        if items.len() >= self.queue.cap {
            return Err(DistsysError::Backpressure {
                client: self.queue.client,
                capacity: self.queue.cap,
            });
        }
        items.push_back((event, now.as_nanos() as u64));
        Ok(())
    }

    /// Enqueues one event, blocking until the aggregator makes room — the
    /// blocking face of backpressure, for real client threads.  Never call
    /// this from the thread that runs [`IngestPipeline::pump`] (in the
    /// single-threaded simulator, use [`ClientHandle::try_push`] and pump
    /// on [`DistsysError::Backpressure`] instead): nobody else can drain.
    pub fn push_blocking(&self, event: Event, now: Duration) {
        let mut items = self.queue.items.lock().expect("queue lock");
        while items.len() >= self.queue.cap {
            items = self.queue.space.wait(items).expect("queue lock");
        }
        items.push_back((event, now.as_nanos() as u64));
    }

    /// The client index this handle pushes as.
    pub fn client(&self) -> usize {
        self.queue.client
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.queue.items.lock().expect("queue lock").len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The queue's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.queue.cap
    }
}

/// The health of one server's lane through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStatus {
    /// Batches flow to the server.
    Healthy,
    /// The server is down: batches are diverted into the lane's side buffer
    /// and a [`ServerGroup::restart_process`] probe fires once the
    /// exponential-backoff deadline passes.  `attempt` counts failed probes
    /// so far.
    Retrying {
        /// Failed restart probes so far (sets the next backoff delay).
        attempt: u32,
    },
    /// Retries are exhausted, the group is not durable, or the divert
    /// buffer overflowed: batches for this lane are counted and dropped,
    /// its reports degrade to [`DistsysError::MissingReports`], and only an
    /// explicit [`IngestPipeline::mark_up_current`] (after a peer resync)
    /// or [`IngestPipeline::mark_up_replay`] rejoins it.  Siblings are
    /// unaffected throughout.
    Isolated,
}

/// One server's lane: health status, diverted backlog, backoff deadline.
struct Lane {
    status: LaneStatus,
    /// Events flushed while the server was down, kept for rejoin replay.
    diverted: VecDeque<Event>,
    /// Set once overflow dropped diverted events: a *partial* backlog can
    /// no longer be replayed without corrupting the server relative to its
    /// peers, so the buffer is cleared and only peer resync can rejoin it.
    lossy: bool,
    /// Dropped-event count while `lossy` (reported by
    /// [`DistsysError::BacklogLost`]).
    dropped: u64,
    next_retry_ns: u64,
}

impl Lane {
    fn healthy() -> Self {
        Lane {
            status: LaneStatus::Healthy,
            diverted: VecDeque::new(),
            lossy: false,
            dropped: 0,
            next_retry_ns: 0,
        }
    }
}

/// Counters describing everything an [`IngestPipeline`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // each field is described inline
pub struct IngestMetrics {
    /// Events flushed to the group so far (each broadcast event counted
    /// once, whether every lane or only the healthy ones received it).
    pub flushed_events: u64,
    /// Batches flushed (size, time and forced triggers combined).
    pub batches: u64,
    /// Flushes triggered by the batch filling to `batch_max`.
    pub size_flushes: u64,
    /// Flushes triggered by the flush interval elapsing.
    pub time_flushes: u64,
    /// Flushes forced by [`IngestPipeline::flush`] / drain / kill.
    pub forced_flushes: u64,
    /// Largest single batch flushed.
    pub max_batch: u64,
    /// Events diverted into down lanes' side buffers.
    pub diverted: u64,
    /// Diverted events dropped because a side buffer overflowed.
    pub diverted_dropped: u64,
    /// Diverted events replayed to rejoining servers.
    pub replayed: u64,
    /// Restart probes attempted on down lanes.
    pub retries: u32,
    /// Lanes brought back to `Healthy` (by probe or by the caller).
    pub recoveries: u32,
    /// Lanes that ended up `Isolated`.
    pub isolated: u32,
}

/// The batching aggregator: client queues in, per-server batches out.
///
/// The pipeline is a *pure state machine over injected time* — it owns no
/// clock and no thread.  The caller (a serving loop, a benchmark, a test)
/// drives it by pushing events through [`ClientHandle`]s and calling
/// [`IngestPipeline::pump`] with the current time; the pipeline drains the
/// queues fairly (round-robin, one event per queue per rotation, with a
/// persistent cursor), flushes on size/time triggers, and manages per-lane
/// fault isolation.  This is what lets the identical pipeline code run on
/// OS threads and inside the deterministic simulator.
pub struct IngestPipeline {
    queues: Vec<Arc<ClientQueue>>,
    /// Round-robin position, persistent across pumps so no queue is
    /// favored.
    cursor: usize,
    /// The batch being assembled, with per-event enqueue timestamps.
    pending: Vec<Event>,
    pending_ts: Vec<u64>,
    last_flush_ns: u64,
    lanes: Vec<Lane>,
    batch_max: usize,
    flush_interval_ns: u64,
    retry_base_ns: u64,
    retry_cap_ns: u64,
    max_retries: u32,
    divert_cap: usize,
    metrics: IngestMetrics,
    /// Enqueue-to-flush latency samples in flush order, capped at
    /// [`LATENCY_SAMPLE_CAP`].
    latency_ns: Vec<u64>,
}

enum FlushKind {
    Size,
    Time,
    Forced,
}

impl IngestPipeline {
    /// A pipeline between `clients` bounded queues and a group of
    /// `servers` lanes (all initially healthy).
    pub fn new(clients: usize, servers: usize, config: &IngestConfig) -> Self {
        let clients = clients.max(1);
        let cap = config.resolved_queue_cap();
        let queues = (0..clients)
            .map(|client| {
                Arc::new(ClientQueue {
                    items: Mutex::new(VecDeque::with_capacity(cap)),
                    space: Condvar::new(),
                    cap,
                    client,
                })
            })
            .collect();
        IngestPipeline {
            queues,
            cursor: 0,
            pending: Vec::new(),
            pending_ts: Vec::new(),
            last_flush_ns: 0,
            lanes: (0..servers).map(|_| Lane::healthy()).collect(),
            batch_max: config.resolved_batch_max(),
            flush_interval_ns: config.resolved_flush_interval().as_nanos() as u64,
            retry_base_ns: config.resolved_retry_base().as_nanos() as u64,
            retry_cap_ns: config.resolved_retry_cap().as_nanos() as u64,
            max_retries: config.resolved_max_retries(),
            divert_cap: config.resolved_divert_cap(),
            metrics: IngestMetrics::default(),
            latency_ns: Vec::new(),
        }
    }

    /// Number of client queues.
    pub fn clients(&self) -> usize {
        self.queues.len()
    }

    /// A pushable handle for client `i` (cloneable, `Send` — hand it to a
    /// client thread).
    pub fn client(&self, i: usize) -> ClientHandle {
        ClientHandle {
            queue: Arc::clone(&self.queues[i]),
        }
    }

    /// [`ClientHandle::try_push`] without materializing a handle.
    pub fn try_push(&self, client: usize, event: Event, now: Duration) -> Result<()> {
        ClientHandle {
            queue: Arc::clone(&self.queues[client]),
        }
        .try_push(event, now)
    }

    /// Single-threaded convenience: push, pumping the aggregator first when
    /// the queue is full (a pump empties it, so the push always lands).
    /// This is the simulator-friendly equivalent of
    /// [`ClientHandle::push_blocking`] — only valid on the driving thread,
    /// with no concurrent producers on the same queue.
    pub fn push(
        &mut self,
        group: &mut dyn ServerGroup,
        client: usize,
        event: Event,
        now: Duration,
    ) {
        let full =
            self.queues[client].items.lock().expect("queue lock").len() >= self.queues[client].cap;
        if full {
            self.pump(group, now);
        }
        self.try_push(client, event, now)
            .expect("pump emptied the queue; no concurrent producers on push()");
    }

    /// Drains the client queues into the pending batch and flushes on the
    /// size and time triggers; also fires due restart probes on down lanes.
    /// Returns `true` if at least one batch was flushed.
    ///
    /// Drain order is round-robin with a persistent cursor — one event per
    /// queue per rotation — so clients pushing round-robin see their global
    /// order reconstructed exactly (the property the equivalence proptest
    /// pins).
    pub fn pump(&mut self, group: &mut dyn ServerGroup, now: Duration) -> bool {
        let now_ns = now.as_nanos() as u64;
        self.retry_lanes(group, now_ns);
        let mut flushed = false;
        let n = self.queues.len();
        let mut empty_streak = 0;
        while empty_streak < n {
            let qi = self.cursor;
            self.cursor = (self.cursor + 1) % n;
            let popped = self.queues[qi]
                .items
                .lock()
                .expect("queue lock")
                .pop_front();
            match popped {
                Some((event, ts)) => {
                    self.queues[qi].space.notify_one();
                    empty_streak = 0;
                    self.pending.push(event);
                    self.pending_ts.push(ts);
                    if self.pending.len() >= self.batch_max {
                        self.flush_pending(group, now_ns, FlushKind::Size);
                        flushed = true;
                    }
                }
                None => empty_streak += 1,
            }
        }
        if !self.pending.is_empty()
            && now_ns.saturating_sub(self.last_flush_ns) >= self.flush_interval_ns
        {
            self.flush_pending(group, now_ns, FlushKind::Time);
            flushed = true;
        }
        flushed
    }

    /// Forces the pending batch out regardless of the triggers (no-op when
    /// nothing is pending).  Does *not* drain the client queues first —
    /// that is [`IngestPipeline::pump`] / [`IngestPipeline::drain`].
    pub fn flush(&mut self, group: &mut dyn ServerGroup, now: Duration) {
        if !self.pending.is_empty() {
            self.flush_pending(group, now.as_nanos() as u64, FlushKind::Forced);
        }
    }

    /// Pumps and force-flushes until the queues and the pending batch are
    /// both observed empty — the end-of-stream barrier.  With concurrent
    /// client threads still pushing, this loops until they pause; call it
    /// after the producers finish.
    pub fn drain(&mut self, group: &mut dyn ServerGroup, now: Duration) {
        loop {
            self.pump(group, now);
            self.flush(group, now);
            if self.pending.is_empty() && self.queued() == 0 {
                return;
            }
        }
    }

    /// Flushes everything pending, kills server `i`'s process through the
    /// group, and marks its lane down — in that order, so the victim's FIFO
    /// sees exactly the events flushed before the kill and the rejoin
    /// replay owes it exactly the events diverted after.
    pub fn kill_server(&mut self, group: &mut dyn ServerGroup, i: usize, now: Duration) {
        self.pump(group, now);
        self.flush(group, now);
        group.kill_process(i);
        self.mark_down(i, now);
    }

    /// Marks server `i`'s lane down without touching the process (the
    /// caller observed the failure elsewhere): subsequent batches are
    /// diverted and restart probes begin on the backoff schedule.
    /// Idempotent on already-down lanes.
    pub fn mark_down(&mut self, i: usize, now: Duration) {
        if self.lanes[i].status == LaneStatus::Healthy {
            self.lanes[i].status = LaneStatus::Retrying { attempt: 0 };
            self.lanes[i].next_retry_ns =
                (now.as_nanos() as u64).saturating_add(self.backoff_ns(0));
        }
    }

    /// Rejoins server `i` after the *caller* brought its process back (e.g.
    /// its own [`ServerGroup::restart_process`] call): replays the diverted
    /// backlog so the server catches up, and marks the lane healthy.
    /// Returns how many events were replayed.
    ///
    /// Fails with [`DistsysError::BacklogLost`] — leaving the lane isolated
    /// — if the divert buffer overflowed while the server was down: a
    /// partial replay would corrupt it relative to its peers, so rejoin
    /// must go through peer resync and [`IngestPipeline::mark_up_current`]
    /// instead.
    pub fn mark_up_replay(&mut self, group: &mut dyn ServerGroup, i: usize) -> Result<usize> {
        if self.lanes[i].lossy {
            self.lanes[i].status = LaneStatus::Isolated;
            return Err(DistsysError::BacklogLost {
                server: i,
                dropped: self.lanes[i].dropped,
            });
        }
        let backlog: Vec<Event> = self.lanes[i].diverted.drain(..).collect();
        if !backlog.is_empty() {
            group.apply_batch_to(i, &backlog);
            self.metrics.replayed += backlog.len() as u64;
        }
        self.lanes[i].status = LaneStatus::Healthy;
        self.metrics.recoveries += 1;
        Ok(backlog.len())
    }

    /// Rejoins server `i` after the caller resynced it to the group's
    /// *current* state (peer decode): the diverted backlog is already
    /// reflected in that state, so it is discarded, not replayed.  Returns
    /// how many buffered events were discarded.
    pub fn mark_up_current(&mut self, i: usize) -> usize {
        let lane = &mut self.lanes[i];
        let discarded = lane.diverted.len();
        lane.diverted.clear();
        lane.lossy = false;
        lane.dropped = 0;
        if lane.status != LaneStatus::Healthy {
            lane.status = LaneStatus::Healthy;
            self.metrics.recoveries += 1;
        }
        discarded
    }

    /// The health of server `i`'s lane.
    pub fn lane_status(&self, i: usize) -> LaneStatus {
        self.lanes[i].status
    }

    /// Events currently buffered in the divert buffer of lane `i`.
    pub fn diverted_len(&self, i: usize) -> usize {
        self.lanes[i].diverted.len()
    }

    /// Events currently sitting in client queues (not yet drained).
    pub fn queued(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.items.lock().expect("queue lock").len())
            .sum()
    }

    /// Events drained from queues but not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The pipeline's counters so far.
    pub fn metrics(&self) -> IngestMetrics {
        self.metrics
    }

    /// Takes the enqueue-to-flush latency samples accumulated so far (in
    /// flush order, nanoseconds, capped at [`LATENCY_SAMPLE_CAP`]).
    pub fn take_latency_samples(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.latency_ns)
    }

    fn backoff_ns(&self, attempt: u32) -> u64 {
        let factor = 1u64 << attempt.min(20);
        self.retry_base_ns
            .saturating_mul(factor)
            .min(self.retry_cap_ns)
    }

    /// Fires due restart probes on `Retrying` lanes.
    fn retry_lanes(&mut self, group: &mut dyn ServerGroup, now_ns: u64) {
        for i in 0..self.lanes.len() {
            let LaneStatus::Retrying { attempt } = self.lanes[i].status else {
                continue;
            };
            if now_ns < self.lanes[i].next_retry_ns {
                continue;
            }
            self.metrics.retries += 1;
            match group.restart_process(i) {
                // Restarted from durable state — or found already running
                // (revived externally); either way it missed exactly the
                // diverted events, so replay rejoins it.
                Ok(_) | Err(DistsysError::ServerUp { .. }) => {
                    let _ = self.mark_up_replay(group, i);
                }
                // A plain group can never restart: isolate immediately
                // rather than burn the whole backoff schedule.
                Err(DistsysError::NotDurable { .. }) => self.isolate(i),
                Err(_) => {
                    let next = attempt + 1;
                    if next >= self.max_retries {
                        self.isolate(i);
                    } else {
                        self.lanes[i].status = LaneStatus::Retrying { attempt: next };
                        self.lanes[i].next_retry_ns = now_ns.saturating_add(self.backoff_ns(next));
                    }
                }
            }
        }
    }

    fn isolate(&mut self, i: usize) {
        if self.lanes[i].status != LaneStatus::Isolated {
            self.lanes[i].status = LaneStatus::Isolated;
            self.metrics.isolated += 1;
        }
    }

    fn flush_pending(&mut self, group: &mut dyn ServerGroup, now_ns: u64, kind: FlushKind) {
        debug_assert!(!self.pending.is_empty());
        if self.lanes.iter().all(|l| l.status == LaneStatus::Healthy) {
            // The common case: one shared batch broadcast to every lane.
            group.apply_batch(&self.pending);
        } else {
            // Degraded: healthy lanes get the batch individually; down
            // lanes get it diverted (or counted and dropped once their
            // buffer overflows).  Siblings never wait on the sick lane.
            let mut overflowed: Vec<usize> = Vec::new();
            for (i, lane) in self.lanes.iter_mut().enumerate() {
                if lane.status == LaneStatus::Healthy {
                    group.apply_batch_to(i, &self.pending);
                    continue;
                }
                for event in &self.pending {
                    if lane.lossy || lane.diverted.len() >= self.divert_cap {
                        if !lane.lossy {
                            // The whole partial backlog becomes unreplayable
                            // the moment one event is dropped.
                            lane.lossy = true;
                            lane.dropped += lane.diverted.len() as u64;
                            self.metrics.diverted_dropped += lane.diverted.len() as u64;
                            self.metrics.diverted -= lane.diverted.len() as u64;
                            lane.diverted.clear();
                            overflowed.push(i);
                        }
                        lane.dropped += 1;
                        self.metrics.diverted_dropped += 1;
                    } else {
                        lane.diverted.push_back(event.clone());
                        self.metrics.diverted += 1;
                    }
                }
            }
            for i in overflowed {
                self.isolate(i);
            }
        }
        self.metrics.batches += 1;
        self.metrics.flushed_events += self.pending.len() as u64;
        self.metrics.max_batch = self.metrics.max_batch.max(self.pending.len() as u64);
        match kind {
            FlushKind::Size => self.metrics.size_flushes += 1,
            FlushKind::Time => self.metrics.time_flushes += 1,
            FlushKind::Forced => self.metrics.forced_flushes += 1,
        }
        for &ts in &self.pending_ts {
            if self.latency_ns.len() < LATENCY_SAMPLE_CAP {
                self.latency_ns.push(now_ns.saturating_sub(ts));
            }
        }
        self.pending.clear();
        self.pending_ts.clear();
        self.last_flush_ns = now_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::GroupConfig;
    use crate::parallel::ParallelServerGroup;
    use crate::recovery::DurabilityConfig;
    use crate::storage::{shared, MemStore};
    use fsm_fusion_core::MachineReport;
    use fsm_machines::fig1_machines;

    fn bits(s: &str) -> Vec<Event> {
        s.chars().map(|c| Event::new(c.to_string())).collect()
    }

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn config_precedence_explicit_over_env_over_default() {
        let auto = IngestConfig::new();
        assert_eq!(auto.resolved_queue_cap(), DEFAULT_QUEUE_CAP);
        assert_eq!(auto.resolved_batch_max(), DEFAULT_BATCH_MAX);
        assert_eq!(auto.resolved_flush_interval(), DEFAULT_FLUSH_INTERVAL);
        assert_eq!(auto.resolved_retry_base(), DEFAULT_RETRY_BASE);
        assert_eq!(auto.resolved_retry_cap(), DEFAULT_RETRY_CAP);
        assert_eq!(auto.resolved_max_retries(), DEFAULT_MAX_RETRIES);
        assert_eq!(auto.resolved_divert_cap(), DEFAULT_DIVERT_CAP);

        let env = IngestConfig::from_env_values(Some("8"), Some("16"), Some("7"), Some("3"));
        assert_eq!(env.resolved_queue_cap(), 8);
        assert_eq!(env.resolved_batch_max(), 16);
        assert_eq!(env.resolved_flush_interval(), Duration::from_millis(7));
        assert_eq!(env.resolved_retry_base(), Duration::from_millis(3));

        let explicit = env
            .clone()
            .queue_cap(2)
            .batch_max(4)
            .flush_interval(Duration::from_millis(1))
            .retry_base(Duration::from_millis(9))
            .retry_cap(Duration::from_secs(2))
            .max_retries(1)
            .divert_cap(10);
        assert_eq!(explicit.resolved_queue_cap(), 2);
        assert_eq!(explicit.resolved_batch_max(), 4);
        assert_eq!(explicit.resolved_flush_interval(), Duration::from_millis(1));
        assert_eq!(explicit.resolved_retry_base(), Duration::from_millis(9));
        assert_eq!(explicit.resolved_retry_cap(), Duration::from_secs(2));
        assert_eq!(explicit.resolved_max_retries(), 1);
        assert_eq!(explicit.resolved_divert_cap(), 10);
    }

    #[test]
    fn config_ignores_garbage_and_zero_env_values() {
        let cfg = IngestConfig::from_env_values(Some("nope"), Some("0"), Some("-3"), Some(""));
        assert_eq!(cfg, IngestConfig::new());
        assert_eq!(cfg.resolved_queue_cap(), DEFAULT_QUEUE_CAP);
        assert_eq!(cfg.resolved_batch_max(), DEFAULT_BATCH_MAX);
        assert_eq!(cfg.resolved_flush_interval(), DEFAULT_FLUSH_INTERVAL);
        assert_eq!(cfg.resolved_retry_base(), DEFAULT_RETRY_BASE);
    }

    #[test]
    fn full_queue_returns_typed_backpressure_error() {
        let pipeline = IngestPipeline::new(2, 2, &IngestConfig::new().queue_cap(3));
        let h = pipeline.client(1);
        assert_eq!(h.client(), 1);
        assert_eq!(h.capacity(), 3);
        for k in 0..3 {
            assert_eq!(h.len(), k);
            h.try_push(Event::new("0"), MS).unwrap();
        }
        match h.try_push(Event::new("0"), MS) {
            Err(DistsysError::Backpressure { client, capacity }) => {
                assert_eq!(client, 1);
                assert_eq!(capacity, 3);
            }
            other => panic!("expected Backpressure, got {other:?}"),
        }
        // The other client's queue is unaffected.
        assert!(pipeline.client(0).is_empty());
        pipeline.try_push(0, Event::new("1"), MS).unwrap();
        assert_eq!(pipeline.queued(), 4);
    }

    #[test]
    fn blocking_push_waits_for_the_aggregator() {
        let machines = fig1_machines();
        let mut group = ParallelServerGroup::spawn_with(&machines, &GroupConfig::new());
        let mut pipeline =
            IngestPipeline::new(1, machines.len(), &IngestConfig::new().queue_cap(2));
        let h = pipeline.client(0);
        h.try_push(Event::new("0"), MS).unwrap();
        h.try_push(Event::new("1"), MS).unwrap();
        // A real client thread blocks on the full queue until a pump below
        // makes room.
        let producer = std::thread::spawn(move || {
            h.push_blocking(Event::new("0"), MS);
        });
        let clock = crate::env::OsClock::new();
        while pipeline.metrics().flushed_events < 3 {
            pipeline.pump(&mut group, clock.now() + DEFAULT_FLUSH_INTERVAL);
            std::thread::yield_now();
        }
        producer.join().unwrap();
        pipeline.drain(&mut group, clock.now());
        let reports = group.collect_reports().unwrap();
        // Two zeros, one one.
        assert_eq!(reports[0], MachineReport::State(2));
        assert_eq!(reports[1], MachineReport::State(1));
        let _ = group.shutdown();
    }

    #[test]
    fn size_trigger_flushes_at_batch_max() {
        let machines = fig1_machines();
        let mut group = ParallelServerGroup::spawn_with(&machines, &GroupConfig::new());
        let cfg = IngestConfig::new()
            .batch_max(4)
            .flush_interval(Duration::from_secs(3600));
        let mut pipeline = IngestPipeline::new(1, machines.len(), &cfg);
        for e in bits("0110101") {
            pipeline.try_push(0, e, MS).unwrap();
        }
        // 7 events, batch_max 4, huge interval: exactly one size flush, 3
        // left pending.
        assert!(pipeline.pump(&mut group, MS));
        let m = pipeline.metrics();
        assert_eq!(m.size_flushes, 1);
        assert_eq!(m.time_flushes, 0);
        assert_eq!(m.flushed_events, 4);
        assert_eq!(m.max_batch, 4);
        assert_eq!(pipeline.pending_len(), 3);
        // The forced flush delivers the tail.
        pipeline.flush(&mut group, MS);
        assert_eq!(pipeline.metrics().forced_flushes, 1);
        assert_eq!(pipeline.metrics().flushed_events, 7);
        let reports = group.collect_reports().unwrap();
        assert_eq!(reports[0], MachineReport::State(3 % 3));
        assert_eq!(reports[1], MachineReport::State(4 % 3));
        let _ = group.shutdown();
    }

    #[test]
    fn time_trigger_flushes_after_the_interval() {
        let machines = fig1_machines();
        let mut group = ParallelServerGroup::spawn_with(&machines, &GroupConfig::new());
        let cfg = IngestConfig::new()
            .batch_max(1000)
            .flush_interval(Duration::from_millis(10));
        let mut pipeline = IngestPipeline::new(1, machines.len(), &cfg);
        pipeline.try_push(0, Event::new("0"), MS).unwrap();
        // Before the interval: drained into pending, not flushed.
        assert!(!pipeline.pump(&mut group, Duration::from_millis(5)));
        assert_eq!(pipeline.pending_len(), 1);
        // Past the interval (injected time — no sleeping): time flush.
        assert!(pipeline.pump(&mut group, Duration::from_millis(11)));
        let m = pipeline.metrics();
        assert_eq!(m.time_flushes, 1);
        assert_eq!(m.flushed_events, 1);
        // Latency sample measures enqueue (1ms) to flush (11ms).
        assert_eq!(pipeline.take_latency_samples(), vec![10_000_000]);
        let _ = group.shutdown();
    }

    #[test]
    fn round_robin_drain_reconstructs_round_robin_push_order() {
        // Events pushed j → client j % c must come back out in j order, so
        // the batched path is event-for-event comparable to the per-event
        // reference.  Interleave pumps at awkward points to exercise the
        // persistent cursor.
        let machines = fig1_machines();
        let mut group = ParallelServerGroup::spawn_with(&machines, &GroupConfig::new());
        let events = bits("011010010110110");
        let mut pipeline =
            IngestPipeline::new(3, machines.len(), &IngestConfig::new().batch_max(4));
        let mut reference: Vec<Event> = Vec::new();
        for (j, e) in events.iter().enumerate() {
            pipeline.try_push(j % 3, e.clone(), MS).unwrap();
            reference.push(e.clone());
            if j == 4 || j == 7 {
                pipeline.pump(&mut group, MS);
            }
        }
        pipeline.drain(&mut group, MS);
        let reports = group.collect_reports().unwrap();
        for (i, m) in machines.iter().enumerate() {
            assert_eq!(
                reports[i],
                MachineReport::State(m.run(reference.iter()).index()),
                "server {i}"
            );
        }
        let _ = group.shutdown();
    }

    #[test]
    fn kill_diverts_batches_and_isolates_plain_groups() {
        let machines = fig1_machines();
        let mut group = ParallelServerGroup::spawn_with(&machines, &GroupConfig::new());
        let cfg = IngestConfig::new().retry_base(Duration::ZERO);
        let mut pipeline = IngestPipeline::new(1, machines.len(), &cfg);
        let head = bits("0110");
        let tail = bits("10101");
        for e in &head {
            pipeline.try_push(0, e.clone(), MS).unwrap();
        }
        pipeline.kill_server(&mut group, 1, MS);
        assert_eq!(pipeline.lane_status(1), LaneStatus::Retrying { attempt: 0 });
        for e in &tail {
            pipeline.try_push(0, e.clone(), MS).unwrap();
        }
        // The next pump's restart probe hits NotDurable (plain group) and
        // isolates the lane; the tail is diverted, dropped only by
        // isolation bookkeeping — counted, never silent.
        pipeline.pump(&mut group, MS * 2);
        pipeline.drain(&mut group, MS * 2);
        assert_eq!(pipeline.lane_status(1), LaneStatus::Isolated);
        let m = pipeline.metrics();
        assert_eq!(m.retries, 1);
        assert_eq!(m.isolated, 1);
        assert_eq!(m.flushed_events, (head.len() + tail.len()) as u64);
        assert_eq!(m.diverted, tail.len() as u64);
        assert_eq!(pipeline.diverted_len(1), tail.len());
        // The survivor got everything; the victim's report degrades to the
        // MissingReports path without stalling the survivor.
        match group.collect_reports() {
            Err(DistsysError::MissingReports { servers }) => assert_eq!(servers, vec![1]),
            other => panic!("expected MissingReports, got {other:?}"),
        }
        let partial = ServerGroup::try_collect_reports(&mut group);
        let full = bits("011010101");
        assert_eq!(
            partial[0],
            Some(MachineReport::State(machines[0].run(full.iter()).index()))
        );
        assert_eq!(partial[1], None);
        let _ = group.shutdown();
    }

    #[test]
    fn durable_kill_retries_replays_and_rejoins() {
        let machines = fig1_machines();
        let mut group = ParallelServerGroup::spawn_durable(
            &machines,
            &GroupConfig::new(),
            crate::env::OsClock::new(),
            shared(MemStore::new()),
            "ingest-t",
            DurabilityConfig::new(),
        )
        .unwrap();
        let cfg = IngestConfig::new().retry_base(Duration::from_millis(4));
        let mut pipeline = IngestPipeline::new(1, machines.len(), &cfg);
        let events = bits("0110100101");
        for e in &events[..5] {
            pipeline.try_push(0, e.clone(), MS).unwrap();
        }
        pipeline.kill_server(&mut group, 0, MS);
        for e in &events[5..] {
            pipeline.try_push(0, e.clone(), MS).unwrap();
        }
        // Before the backoff deadline (1ms + 4ms): the probe does not fire,
        // and the flush diverts the tail instead of stalling the survivor.
        pipeline.pump(&mut group, Duration::from_millis(2));
        pipeline.flush(&mut group, Duration::from_millis(2));
        assert_eq!(pipeline.metrics().retries, 0);
        assert_eq!(pipeline.diverted_len(0), 5);
        assert_eq!(pipeline.lane_status(0), LaneStatus::Retrying { attempt: 0 });
        // Past the deadline: restart succeeds, the diverted tail replays,
        // the lane rejoins.
        pipeline.pump(&mut group, Duration::from_millis(6));
        assert_eq!(pipeline.lane_status(0), LaneStatus::Healthy);
        let m = pipeline.metrics();
        assert_eq!(m.retries, 1);
        assert_eq!(m.recoveries, 1);
        assert_eq!(m.replayed, 5);
        assert_eq!(m.diverted, 5);
        let reports = group.collect_reports().unwrap();
        for (i, mach) in machines.iter().enumerate() {
            assert_eq!(
                reports[i],
                MachineReport::State(mach.run(events.iter()).index()),
                "server {i}"
            );
        }
        let _ = group.shutdown();
    }

    #[test]
    fn backoff_schedule_doubles_up_to_the_cap() {
        let cfg = IngestConfig::new()
            .retry_base(Duration::from_millis(5))
            .retry_cap(Duration::from_millis(35));
        let pipeline = IngestPipeline::new(1, 1, &cfg);
        assert_eq!(pipeline.backoff_ns(0), 5_000_000);
        assert_eq!(pipeline.backoff_ns(1), 10_000_000);
        assert_eq!(pipeline.backoff_ns(2), 20_000_000);
        assert_eq!(pipeline.backoff_ns(3), 35_000_000); // capped
        assert_eq!(pipeline.backoff_ns(63), 35_000_000); // shift clamped
    }

    #[test]
    fn divert_overflow_drops_counted_and_requires_resync() {
        let machines = fig1_machines();
        let mut group = ParallelServerGroup::spawn_with(&machines, &GroupConfig::new());
        // Huge retry base: the probe never fires, so the lane stays
        // Retrying while its 3-event divert buffer overflows.
        let cfg = IngestConfig::new()
            .divert_cap(3)
            .retry_base(Duration::from_secs(3600));
        let mut pipeline = IngestPipeline::new(1, machines.len(), &cfg);
        pipeline.kill_server(&mut group, 1, MS);
        for e in bits("01101") {
            pipeline.try_push(0, e, MS).unwrap();
        }
        pipeline.drain(&mut group, MS);
        // 5 events into a 3-slot buffer: overflow drops the whole partial
        // backlog (3) plus the overflowing events (2), all counted, and
        // isolates the lane.
        assert_eq!(pipeline.lane_status(1), LaneStatus::Isolated);
        let m = pipeline.metrics();
        assert_eq!(m.diverted, 0);
        assert_eq!(m.diverted_dropped, 5);
        assert_eq!(m.isolated, 1);
        // A replay rejoin is refused — the backlog is gone.
        match pipeline.mark_up_replay(&mut group, 1) {
            Err(DistsysError::BacklogLost {
                server: 1,
                dropped: 5,
            }) => {}
            other => panic!("expected BacklogLost, got {other:?}"),
        }
        // The resync path rejoins: restore to the peers' current state and
        // mark the lane current.  (The thread is dead in this plain group,
        // so just verify the pipeline-side bookkeeping.)
        assert_eq!(pipeline.mark_up_current(1), 0);
        assert_eq!(pipeline.lane_status(1), LaneStatus::Healthy);
        assert_eq!(pipeline.metrics().recoveries, 1);
        let _ = group.shutdown();
    }

    #[test]
    fn mark_up_current_discards_the_covered_backlog() {
        let machines = fig1_machines();
        let mut group = ParallelServerGroup::spawn_with(&machines, &GroupConfig::new());
        let cfg = IngestConfig::new().retry_base(Duration::from_secs(3600));
        let mut pipeline = IngestPipeline::new(1, machines.len(), &cfg);
        pipeline.mark_down(0, MS);
        pipeline.mark_down(0, MS); // idempotent
        for e in bits("011") {
            pipeline.try_push(0, e, MS).unwrap();
        }
        pipeline.drain(&mut group, MS);
        assert_eq!(pipeline.diverted_len(0), 3);
        // Caller resyncs server 0 from peer reports, then marks current:
        // the backlog is already covered by the adopted state.
        assert_eq!(pipeline.mark_up_current(0), 3);
        assert_eq!(pipeline.diverted_len(0), 0);
        assert_eq!(pipeline.lane_status(0), LaneStatus::Healthy);
        let _ = group.shutdown();
    }

    #[test]
    fn sim_time_flush_fires_on_virtual_deadlines_bit_identically() {
        use crate::env::Environment;
        use crate::sim::SimConfig;
        // The flush timer runs on injected time, so under the simulator it
        // fires on *virtual* deadlines: two seeded runs replay the same
        // trace byte for byte, and no wall-clock time is spent waiting.
        let run = |seed: u64| {
            let env = SimConfig::new(seed).drop_probability(0.2).build();
            let mut group = env.spawn_group(&fig1_machines(), &GroupConfig::new());
            let cfg = IngestConfig::new()
                .batch_max(100)
                .flush_interval(Duration::from_millis(2));
            let mut pipeline = IngestPipeline::new(2, 2, &cfg);
            for (j, e) in bits("0110").into_iter().enumerate() {
                pipeline.push(group.as_mut(), j % 2, e, env.now());
            }
            assert!(!pipeline.pump(group.as_mut(), env.now()), "too early");
            env.sleep(Duration::from_millis(2));
            assert!(pipeline.pump(group.as_mut(), env.now()), "virtual deadline");
            assert_eq!(pipeline.metrics().time_flushes, 1);
            let _ = group.try_collect_reports();
            env.trace_hash()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
