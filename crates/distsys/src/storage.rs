//! Durable storage behind the [`Environment`](crate::Environment): a small
//! byte-blob [`Store`] abstraction the write-ahead log and snapshots are
//! written through.
//!
//! The paper assumes each server's *machine description* survives on stable
//! storage (Section 2); this module extends that assumption to the durable
//! runtime state a crash-recovery deployment needs — the event log and the
//! periodic state snapshots.  Two production implementations exist:
//! [`MemStore`] (a deterministic in-memory map, used by the simulator and by
//! [`OsEnvironment`](crate::OsEnvironment) by default) and [`DirStore`]
//! (real files in a directory).  The simulator injects torn-tail writes by
//! editing the stored bytes at kill time, so the same code path exercises
//! partial-write recovery without a real power failure.

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use crate::error::{DistsysError, Result};

/// A named-blob store: the minimal durable interface the WAL and snapshot
/// layers need.
///
/// Names are flat identifiers (no path separators); every method is
/// synchronous and, on return, the write is considered durable — the
/// "fsync boundary" of the model.  `append` extends a blob (creating it if
/// absent), `write_atomic` replaces a blob all-or-nothing (the atomicity
/// snapshots rely on), and `read` returns the full current contents.
pub trait Store: Send {
    /// Appends `bytes` to the blob `name`, creating it if absent.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()>;

    /// The full contents of blob `name`, or `None` if it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>>;

    /// Replaces blob `name` with `bytes`, atomically: a reader never
    /// observes a partially written blob.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<()>;

    /// Removes blob `name` if it exists.
    fn remove(&mut self, name: &str) -> Result<()>;
}

/// The shared handle durable servers hold: thread-safe (the threaded runner
/// moves it into server threads) and cheap to clone.
pub type SharedStore = Arc<Mutex<dyn Store>>;

/// Wraps a concrete store into a [`SharedStore`] handle.
pub fn shared<S: Store + 'static>(store: S) -> SharedStore {
    Arc::new(Mutex::new(store))
}

/// Runs `f` under the store lock, mapping a poisoned lock to a storage
/// error instead of panicking the recovery path.
pub(crate) fn with_store<T>(
    store: &SharedStore,
    f: impl FnOnce(&mut dyn Store) -> Result<T>,
) -> Result<T> {
    let mut guard = store.lock().map_err(|_| DistsysError::Storage {
        message: "store lock poisoned".into(),
    })?;
    f(&mut *guard)
}

/// An in-memory store: a name → bytes map.
///
/// Fully deterministic (no I/O, no clock), which is what the simulator
/// needs, and a sensible default for [`OsEnvironment`](crate::OsEnvironment)
/// runs that only exercise the recovery *protocol* rather than real disks.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    blobs: HashMap<String, Vec<u8>>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Number of blobs currently stored.
    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    /// Whether the store holds no blobs.
    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

impl Store for MemStore {
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.blobs
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.blobs.get(name).cloned())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        self.blobs.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        self.blobs.remove(name);
        Ok(())
    }
}

/// A store backed by real files in one directory.
///
/// `append` opens the file in append mode; `write_atomic` writes a
/// temporary file and renames it over the target (the usual POSIX
/// atomic-replace idiom).  Blob names must be flat — no path separators.
#[derive(Debug, Clone)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// A store rooted at `dir`, creating the directory if needed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create store dir", &e))?;
        Ok(DirStore { dir })
    }

    fn path(&self, name: &str) -> Result<PathBuf> {
        if name.is_empty() || name.contains(['/', '\\']) {
            return Err(DistsysError::Storage {
                message: format!("invalid blob name {name:?}: names must be flat"),
            });
        }
        Ok(self.dir.join(name))
    }
}

fn io_err(op: &str, e: &std::io::Error) -> DistsysError {
    DistsysError::Storage {
        message: format!("{op}: {e}"),
    }
}

impl Store for DirStore {
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path(name)?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("open for append", &e))?;
        file.write_all(bytes).map_err(|e| io_err("append", &e))?;
        file.sync_all().map_err(|e| io_err("sync", &e))
    }

    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)?) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", &e)),
        }
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<()> {
        let path = self.path(name)?;
        let tmp = self.dir.join(format!("{name}.tmp"));
        std::fs::write(&tmp, bytes).map_err(|e| io_err("write tmp", &e))?;
        std::fs::rename(&tmp, &path).map_err(|e| io_err("rename", &e))
    }

    fn remove(&mut self, name: &str) -> Result<()> {
        match std::fs::remove_file(self.path(name)?) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", &e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(store: &mut dyn Store) {
        assert_eq!(store.read("a").unwrap(), None);
        store.append("a", b"he").unwrap();
        store.append("a", b"llo").unwrap();
        assert_eq!(store.read("a").unwrap().as_deref(), Some(&b"hello"[..]));
        store.write_atomic("a", b"bye").unwrap();
        assert_eq!(store.read("a").unwrap().as_deref(), Some(&b"bye"[..]));
        store.remove("a").unwrap();
        assert_eq!(store.read("a").unwrap(), None);
        // Removing a missing blob is fine.
        store.remove("a").unwrap();
    }

    #[test]
    fn mem_store_roundtrip() {
        let mut s = MemStore::new();
        assert!(s.is_empty());
        exercise(&mut s);
        assert_eq!(s.len(), 0);
    }

    /// A scratch directory inside the workspace `target/` tree, so tests
    /// never write outside the repository.
    fn scratch(name: &str) -> PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/store-tests")
            .join(name)
    }

    #[test]
    fn dir_store_roundtrip() {
        let mut s = DirStore::open(scratch("dir_store_roundtrip")).unwrap();
        exercise(&mut s);
    }

    #[test]
    fn dir_store_rejects_pathy_names() {
        let mut s = DirStore::open(scratch("dir_store_names")).unwrap();
        assert!(s.append("../escape", b"x").is_err());
        assert!(s.read("a/b").is_err());
        assert!(s.write_atomic("", b"x").is_err());
    }

    #[test]
    fn shared_store_is_send_and_clones() {
        let store = shared(MemStore::new());
        let clone = Arc::clone(&store);
        with_store(&store, |s| s.append("x", b"1")).unwrap();
        let read = with_store(&clone, |s| s.read("x")).unwrap();
        assert_eq!(read.as_deref(), Some(&b"1"[..]));
        fn assert_send<T: Send>(_: &T) {}
        assert_send(&store);
    }
}
