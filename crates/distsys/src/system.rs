//! The fusion-backed distributed system: original servers plus generated
//! fusion backups, with end-to-end fault injection and recovery.
//!
//! [`FusedSystem`] packages the whole pipeline of the paper:
//!
//! 1. build the reachable cross product of the original machines (§2),
//! 2. run Algorithm 2 to generate the backup machines for the requested
//!    fault count and model (§5.1) — `f` crash faults need `dmin > f`,
//!    `f` Byzantine faults need `dmin > 2f`,
//! 3. execute all machines (originals and backups) against a common event
//!    stream (§2's system model),
//! 4. on faults, collect state reports and run Algorithm 3 to restore every
//!    machine (§5.2).
//!
//! A non-faultable *oracle* copy of `⊤` runs alongside the servers; it is
//! used only to verify that recovery produced the truth (tests, examples and
//! benchmarks check against it), mirroring how the paper argues correctness
//! via the state of the top machine.

use fsm_dfsm::{Dfsm, Event, Executor, ReachableProduct, StateId};
use fsm_fusion_core::{
    generate_fusion, projection_partitions, FaultModel, FusionGeneration, FusionSession,
    MachineReport, Partition, Recovery, RecoveryEngine,
};

use crate::env::{Environment, GroupConfig, ServerGroup};
use crate::error::{DistsysError, Result};
use crate::server::{Server, ServerStatus};
use crate::workload::Workload;

/// Bookkeeping counters for a running system.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SystemMetrics {
    /// Events broadcast to the servers.
    pub events_processed: usize,
    /// Crash faults injected.
    pub crashes_injected: usize,
    /// Byzantine faults injected.
    pub corruptions_injected: usize,
    /// Successful recoveries.
    pub recoveries: usize,
    /// Recovery attempts that failed (too many faults).
    pub failed_recoveries: usize,
}

/// The outcome of a recovery round.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// The raw Algorithm 3 result.
    pub recovery: Recovery,
    /// Servers that were repaired (restored or corrected).
    pub repaired: Vec<usize>,
    /// Whether the recovered top state matches the oracle (always true when
    /// the number of faults was within the tolerated bound).
    pub matches_oracle: bool,
}

/// The outcome of recovering from *externally collected* reports (servers
/// running in an [`Environment`] rather than inside the [`FusedSystem`]).
#[derive(Debug, Clone)]
pub struct ExternalRecovery {
    /// The correct state of every server, in each machine's own state
    /// numbering — what the external servers should be restored to.
    pub states: Vec<StateId>,
    /// The raw Algorithm 3 result.
    pub recovery: Recovery,
    /// Whether the recovered top state matches the oracle.
    pub matches_oracle: bool,
}

/// A fusion-backed system of servers.
#[derive(Debug, Clone)]
pub struct FusedSystem {
    product: ReachableProduct,
    fusion: FusionGeneration,
    servers: Vec<Server>,
    num_originals: usize,
    engine: RecoveryEngine,
    oracle: Executor,
    fault_model: FaultModel,
    f: usize,
    metrics: SystemMetrics,
    /// Per server: machine state index → block index of its registered
    /// partition.  The recovery engine speaks in partition blocks (whose
    /// canonical numbering need not match the machine's own state ids, e.g.
    /// for MESI under an arbitrary product ordering), so reports and
    /// recovered states are translated through these tables.
    block_of_state: Vec<Vec<usize>>,
    /// Per server: partition block index → machine state.
    state_of_block: Vec<Vec<StateId>>,
}

impl FusedSystem {
    /// Builds a system that tolerates `f` faults of the given model among
    /// the original `machines` (plus their generated backups).
    ///
    /// Uses the environment-configured free-function pipeline
    /// ([`ReachableProduct::new`] + [`generate_fusion`]); deployments that
    /// build several systems — or want explicit engine/cache configuration —
    /// should thread a [`FusionSession`] through
    /// [`FusedSystem::with_session`] instead.
    pub fn new(machines: &[Dfsm], f: usize, fault_model: FaultModel) -> Result<Self> {
        if machines.is_empty() {
            return Err(DistsysError::NoMachines);
        }
        let product = ReachableProduct::new(machines)?;
        let originals = projection_partitions(&product);
        let fusion = generate_fusion(product.top(), &originals, Self::target(fault_model, f))?;
        Self::from_parts(machines, f, fault_model, product, originals, fusion)
    }

    /// [`FusedSystem::new`] through a caller-owned [`FusionSession`]: the
    /// cross product is built with the session's product strategy and
    /// Algorithm 2 runs on its engine, reusing the session's scratch, pool
    /// handle and closure cache (building several systems over the same
    /// machine set — e.g. per fault model, or a crash/Byzantine pair —
    /// reuses closures across the constructions).
    ///
    /// Produces exactly the system [`FusedSystem::new`] builds (pinned by
    /// an equivalence test).
    pub fn with_session(
        machines: &[Dfsm],
        f: usize,
        fault_model: FaultModel,
        session: &mut FusionSession,
    ) -> Result<Self> {
        if machines.is_empty() {
            return Err(DistsysError::NoMachines);
        }
        let product = session.build_product(machines)?;
        let originals = projection_partitions(&product);
        let fusion =
            session.generate_fusion(product.top(), &originals, Self::target(fault_model, f))?;
        Self::from_parts(machines, f, fault_model, product, originals, fusion)
    }

    /// Crash faults need `dmin > f`; Byzantine faults need `dmin > 2f`
    /// (Theorems 1 and 2), so generation targets the adjusted count.
    fn target(fault_model: FaultModel, f: usize) -> usize {
        match fault_model {
            FaultModel::Crash => f,
            FaultModel::Byzantine => 2 * f,
        }
    }

    /// Shared constructor tail: wires servers, recovery engine and
    /// translation tables around an already-generated fusion.
    fn from_parts(
        machines: &[Dfsm],
        f: usize,
        fault_model: FaultModel,
        product: ReachableProduct,
        originals: Vec<Partition>,
        fusion: FusionGeneration,
    ) -> Result<Self> {
        let mut engine = RecoveryEngine::new(product.size());
        let mut servers = Vec::new();
        let mut block_of_state: Vec<Vec<usize>> = Vec::new();
        let mut state_of_block: Vec<Vec<StateId>> = Vec::new();
        for (i, m) in machines.iter().enumerate() {
            engine.add_machine(m.name().to_string(), originals[i].clone())?;
            servers.push(Server::new(m.clone()));
            // The projection partition's canonical block numbering need not
            // coincide with the machine's own state numbering; build both
            // translation tables from the product tuples.
            let mut b_of_s = vec![usize::MAX; m.size()];
            let mut s_of_b = vec![StateId(0); originals[i].num_blocks()];
            for t in 0..product.size() {
                let block = originals[i].block_of(t);
                let state = product.component_state(StateId(t), i);
                b_of_s[state.index()] = block;
                s_of_b[block] = state;
            }
            debug_assert!(b_of_s.iter().all(|&b| b != usize::MAX));
            block_of_state.push(b_of_s);
            state_of_block.push(s_of_b);
        }
        for (i, p) in fusion.partitions.iter().enumerate() {
            engine.add_machine(format!("F{}", i + 1), p.clone())?;
            servers.push(Server::new(fusion.machines[i].clone()));
            // Quotient machines use block indices as their state ids, so the
            // translation is the identity.
            block_of_state.push((0..p.num_blocks()).collect());
            state_of_block.push((0..p.num_blocks()).map(StateId).collect());
        }
        let oracle = Executor::new(product.top().clone());
        Ok(FusedSystem {
            product,
            fusion,
            servers,
            num_originals: machines.len(),
            engine,
            oracle,
            fault_model,
            f,
            metrics: SystemMetrics::default(),
            block_of_state,
            state_of_block,
        })
    }

    /// The reachable cross product of the original machines.
    pub fn product(&self) -> &ReachableProduct {
        &self.product
    }

    /// The generated fusion (partitions, machines, statistics).
    pub fn fusion(&self) -> &FusionGeneration {
        &self.fusion
    }

    /// Number of servers (originals + backups).
    pub fn num_servers(&self) -> usize {
        self.servers.len()
    }

    /// Number of original machines.
    pub fn num_originals(&self) -> usize {
        self.num_originals
    }

    /// Number of generated backup machines.
    pub fn num_backups(&self) -> usize {
        self.servers.len() - self.num_originals
    }

    /// The fault count the system was provisioned for.
    pub fn fault_budget(&self) -> usize {
        self.f
    }

    /// The fault model the system was provisioned for.
    pub fn fault_model(&self) -> FaultModel {
        self.fault_model
    }

    /// Access to one server.
    pub fn server(&self, i: usize) -> &Server {
        &self.servers[i]
    }

    /// All servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Running metrics.
    pub fn metrics(&self) -> &SystemMetrics {
        &self.metrics
    }

    /// Broadcasts one event to every server (and the oracle).
    ///
    /// The reference per-event path; [`FusedSystem::apply_workload`]
    /// processes whole workloads server-at-a-time instead and is pinned
    /// equivalent to repeated `apply_event` calls by a test.
    pub fn apply_event(&mut self, event: &Event) {
        for s in &mut self.servers {
            s.apply(event);
        }
        self.oracle.apply(event);
        self.metrics.events_processed += 1;
    }

    /// Broadcasts a whole workload, batched per server: each server (and
    /// the oracle) consumes the entire event stream in one pass.
    ///
    /// Servers are independent — they share no state and each applies the
    /// same totally ordered stream — so per-server batching produces
    /// exactly the per-event broadcast's final states while touching each
    /// server's cache-resident execution state once per workload instead of
    /// once per event.
    pub fn apply_workload(&mut self, workload: &Workload) {
        for s in &mut self.servers {
            for e in workload {
                s.apply(e);
            }
        }
        for e in workload {
            self.oracle.apply(e);
        }
        self.metrics.events_processed += workload.len();
    }

    /// Crashes server `i` (original or backup).
    pub fn crash(&mut self, i: usize) -> Result<()> {
        self.check_server(i)?;
        self.servers[i].crash();
        self.metrics.crashes_injected += 1;
        Ok(())
    }

    /// Injects a Byzantine fault into server `i`, moving it to `state`.
    pub fn corrupt(&mut self, i: usize, state: StateId) -> Result<()> {
        self.check_server(i)?;
        if state.index() >= self.servers[i].machine().size() {
            return Err(DistsysError::InvalidState {
                server: i,
                state: state.index(),
                size: self.servers[i].machine().size(),
            });
        }
        self.servers[i].corrupt(state);
        self.metrics.corruptions_injected += 1;
        Ok(())
    }

    /// Injects a Byzantine fault that moves server `i` to a state *different
    /// from* its current one (a fault that actually lies).  Returns the
    /// state it was moved to.
    pub fn corrupt_differently(&mut self, i: usize) -> Result<StateId> {
        self.check_server(i)?;
        let size = self.servers[i].machine().size();
        if size < 2 {
            return Err(DistsysError::InvalidState {
                server: i,
                state: 1,
                size,
            });
        }
        let current = self.servers[i].current_state().index();
        let target = StateId((current + 1) % size);
        self.corrupt(i, target)?;
        Ok(target)
    }

    /// The number of servers currently not healthy.
    pub fn faulty_count(&self) -> usize {
        self.servers
            .iter()
            .filter(|s| s.status() != ServerStatus::Healthy)
            .count()
    }

    /// The true state of `⊤` according to the oracle (verification only —
    /// a real deployment has no oracle, which is the whole point of fusion).
    pub fn oracle_top_state(&self) -> StateId {
        self.oracle.current()
    }

    /// The true state of original machine `i` according to the oracle.
    pub fn oracle_state_of(&self, i: usize) -> StateId {
        if i < self.num_originals {
            self.product.component_state(self.oracle.current(), i)
        } else {
            StateId(
                self.fusion.partitions[i - self.num_originals]
                    .block_of(self.oracle.current().index()),
            )
        }
    }

    /// Collects reports from every server (Algorithm 3's input), translating
    /// each server's machine state into the block index of its registered
    /// partition.
    pub fn collect_reports(&self) -> Vec<MachineReport> {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, s)| match s.report() {
                MachineReport::Crashed => MachineReport::Crashed,
                MachineReport::State(state) => MachineReport::State(self.block_of_state[i][state]),
            })
            .collect()
    }

    /// Runs recovery (Algorithm 3) and repairs every server: crashed servers
    /// get their state back, Byzantine servers are corrected, healthy
    /// servers are untouched (their state already matches).
    pub fn recover(&mut self) -> Result<RecoveryOutcome> {
        let reports = self.collect_reports();
        let recovery = match self.engine.recover(&reports) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.failed_recoveries += 1;
                return Err(e.into());
            }
        };
        let mut repaired = Vec::new();
        for (i, server) in self.servers.iter_mut().enumerate() {
            let correct = self.state_of_block[i][recovery.machine_states[i]];
            if server.status() != ServerStatus::Healthy || server.current_state() != correct {
                server.restore(correct);
                repaired.push(i);
            }
        }
        self.metrics.recoveries += 1;
        let matches_oracle = recovery.top_state == self.oracle.current().index();
        Ok(RecoveryOutcome {
            recovery,
            repaired,
            matches_oracle,
        })
    }

    /// The full machine set (originals then backups) — what an
    /// [`Environment`] spawns to run this system's servers externally.
    pub fn all_machines(&self) -> Vec<Dfsm> {
        self.servers.iter().map(|s| s.machine().clone()).collect()
    }

    /// Spawns this system's machine set as a server group in `env`.
    ///
    /// The group executes independently of the in-process [`Server`]s; keep
    /// feeding this system the same workload so its oracle stays the ground
    /// truth for [`FusedSystem::recover_external`].
    pub fn spawn_group(&self, env: &dyn Environment, config: &GroupConfig) -> Box<dyn ServerGroup> {
        env.spawn_group(&self.all_machines(), config)
    }

    /// Runs recovery (Algorithm 3) on reports collected from *external*
    /// servers (e.g. a simulated or threaded [`ServerGroup`]), translating
    /// each reported machine state into partition blocks and the recovered
    /// blocks back into machine states.
    ///
    /// Unlike [`FusedSystem::recover`] this does not touch the in-process
    /// servers: the caller restores the external group from
    /// [`ExternalRecovery::states`].
    pub fn recover_external(&mut self, reports: &[MachineReport]) -> Result<ExternalRecovery> {
        if reports.len() != self.servers.len() {
            return Err(DistsysError::NoSuchServer {
                server: reports.len(),
                count: self.servers.len(),
            });
        }
        let mut translated = Vec::with_capacity(reports.len());
        for (i, r) in reports.iter().enumerate() {
            translated.push(match r {
                MachineReport::Crashed => MachineReport::Crashed,
                MachineReport::State(state) => {
                    if *state >= self.block_of_state[i].len() {
                        return Err(DistsysError::InvalidState {
                            server: i,
                            state: *state,
                            size: self.block_of_state[i].len(),
                        });
                    }
                    MachineReport::State(self.block_of_state[i][*state])
                }
            });
        }
        let recovery = match self.engine.recover(&translated) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.failed_recoveries += 1;
                return Err(e.into());
            }
        };
        let states = recovery
            .machine_states
            .iter()
            .enumerate()
            .map(|(i, &b)| self.state_of_block[i][b])
            .collect();
        self.metrics.recoveries += 1;
        let matches_oracle = recovery.top_state == self.oracle.current().index();
        Ok(ExternalRecovery {
            states,
            recovery,
            matches_oracle,
        })
    }

    /// Whether every healthy server's state is consistent with the oracle
    /// (useful as a system invariant in tests).
    pub fn consistent_with_oracle(&self) -> bool {
        self.servers.iter().enumerate().all(|(i, s)| {
            s.status() != ServerStatus::Healthy || s.current_state() == self.oracle_state_of(i)
        })
    }

    /// The backup state space `∏ |Fi|` of the generated fusion.
    pub fn fusion_state_space(&self) -> u128 {
        self.fusion.state_space()
    }

    /// The backup state space replication would need for the same fault
    /// budget and model: `(∏ |Mi|)^(copies per machine)`.
    pub fn replication_state_space(&self) -> u128 {
        let sizes: Vec<usize> = self.servers[..self.num_originals]
            .iter()
            .map(|s| s.machine().size())
            .collect();
        let copies = self.fault_model.copies_per_machine(self.f);
        fsm_fusion_core::replication_state_space(&sizes, copies)
    }

    fn check_server(&self, i: usize) -> Result<()> {
        if i >= self.servers.len() {
            return Err(DistsysError::NoSuchServer {
                server: i,
                count: self.servers.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_machines::{fig1_machines, mesi, zero_counter_mod3};

    fn fig1_system(f: usize, model: FaultModel) -> FusedSystem {
        FusedSystem::new(&fig1_machines(), f, model).unwrap()
    }

    #[test]
    fn construction_adds_the_expected_number_of_backups() {
        let sys = fig1_system(1, FaultModel::Crash);
        assert_eq!(sys.num_originals(), 2);
        assert_eq!(sys.num_backups(), 1);
        assert_eq!(sys.num_servers(), 3);
        assert_eq!(sys.fault_budget(), 1);
        assert_eq!(sys.fault_model(), FaultModel::Crash);
        assert_eq!(sys.fusion().machine_sizes(), vec![3]);
        assert!(sys.fusion_state_space() < sys.replication_state_space());
    }

    #[test]
    fn with_session_builds_the_identical_system() {
        use fsm_fusion_core::{Engine, FusionConfig};
        let machines = vec![mesi(), zero_counter_mod3()];
        let w = Workload::uniform_over_machines(&machines, 97, 5);
        for engine in [Engine::Sequential, Engine::Pooled] {
            let mut session = FusionConfig::new().engine(engine).workers(2).build();
            // Two systems from one session (crash + Byzantine) share the
            // closure cache; both must equal the free-function build.
            for model in [FaultModel::Crash, FaultModel::Byzantine] {
                let mut legacy = FusedSystem::new(&machines, 1, model).unwrap();
                let mut sessioned =
                    FusedSystem::with_session(&machines, 1, model, &mut session).unwrap();
                assert_eq!(legacy.fusion().partitions, sessioned.fusion().partitions);
                assert_eq!(legacy.num_servers(), sessioned.num_servers());
                legacy.apply_workload(&w);
                sessioned.apply_workload(&w);
                legacy.crash(0).unwrap();
                sessioned.crash(0).unwrap();
                let a = legacy.recover().unwrap();
                let b = sessioned.recover().unwrap();
                assert!(a.matches_oracle && b.matches_oracle);
                assert_eq!(a.repaired, b.repaired);
                for i in 0..legacy.num_servers() {
                    assert_eq!(
                        legacy.server(i).current_state(),
                        sessioned.server(i).current_state()
                    );
                }
            }
        }
    }

    #[test]
    fn byzantine_provisioning_doubles_the_distance_target() {
        let crash = fig1_system(1, FaultModel::Crash);
        let byz = fig1_system(1, FaultModel::Byzantine);
        assert!(byz.num_backups() > crash.num_backups());
    }

    #[test]
    fn crash_and_recover_restores_the_lost_state() {
        let mut sys = fig1_system(1, FaultModel::Crash);
        sys.apply_workload(&Workload::from_bits("0100110"));
        let true_state = sys.oracle_state_of(0);
        sys.crash(0).unwrap();
        assert_eq!(sys.faulty_count(), 1);
        let outcome = sys.recover().unwrap();
        assert!(outcome.matches_oracle);
        assert!(outcome.repaired.contains(&0));
        assert_eq!(sys.server(0).current_state(), true_state);
        assert_eq!(sys.metrics().recoveries, 1);
        assert!(sys.consistent_with_oracle());
    }

    #[test]
    fn byzantine_fault_is_detected_and_corrected() {
        let mut sys = fig1_system(1, FaultModel::Byzantine);
        sys.apply_workload(&Workload::from_bits("110100101"));
        let victim = 1;
        let true_state = sys.oracle_state_of(victim);
        let forged = sys.corrupt_differently(victim).unwrap();
        assert_ne!(forged, true_state);
        let outcome = sys.recover().unwrap();
        assert!(outcome.matches_oracle);
        assert!(outcome.recovery.suspected_byzantine.contains(&victim));
        assert_eq!(sys.server(victim).current_state(), true_state);
        assert!(sys.consistent_with_oracle());
    }

    #[test]
    fn too_many_crashes_fail_recovery() {
        let mut sys = fig1_system(1, FaultModel::Crash);
        sys.apply_workload(&Workload::from_bits("01"));
        // Crash two machines when only one fault is tolerated; depending on
        // the surviving machine the vote may be ambiguous.
        sys.crash(0).unwrap();
        sys.crash(1).unwrap();
        match sys.recover() {
            Ok(outcome) => {
                // If recovery "succeeded" it may still be wrong — but with
                // this workload the surviving fusion machine alone cannot
                // single out the top state, so we expect failure.
                assert!(!outcome.matches_oracle || outcome.recovery.votes <= 1);
            }
            Err(_) => {
                assert_eq!(sys.metrics().failed_recoveries, 1);
            }
        }
    }

    #[test]
    fn crashing_a_backup_is_also_recoverable() {
        let mut sys = fig1_system(1, FaultModel::Crash);
        sys.apply_workload(&Workload::from_bits("0011010"));
        let backup_index = sys.num_originals();
        sys.crash(backup_index).unwrap();
        let outcome = sys.recover().unwrap();
        assert!(outcome.matches_oracle);
        assert!(sys.consistent_with_oracle());
    }

    #[test]
    fn batched_workload_matches_per_event_reference_path() {
        // apply_workload submits the whole stream per server; the reference
        // path broadcasts event by event.  Final server states, oracle
        // state, metrics and recovery behavior must be identical.
        let machines = vec![mesi(), zero_counter_mod3()];
        let mut batched = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        let mut reference = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        let w = Workload::uniform_over_machines(&machines, 157, 23);
        batched.apply_workload(&w);
        for e in &w {
            reference.apply_event(e);
        }
        assert_eq!(batched.metrics(), reference.metrics());
        assert_eq!(batched.oracle_top_state(), reference.oracle_top_state());
        for i in 0..batched.num_servers() {
            assert_eq!(
                batched.server(i).current_state(),
                reference.server(i).current_state(),
                "server {i}"
            );
        }
        assert!(batched.consistent_with_oracle());
        // And recovery behaves the same after a crash on both.
        batched.crash(0).unwrap();
        reference.crash(0).unwrap();
        let b = batched.recover().unwrap();
        let r = reference.recover().unwrap();
        assert!(b.matches_oracle && r.matches_oracle);
        assert_eq!(b.repaired, r.repaired);
    }

    #[test]
    fn events_flow_to_all_servers_and_oracle() {
        let mut sys = fig1_system(1, FaultModel::Crash);
        sys.apply_workload(&Workload::from_bits("000"));
        assert_eq!(sys.metrics().events_processed, 3);
        // 3 zeros: 0-counter at 0 (mod 3), 1-counter untouched.
        assert_eq!(sys.server(0).current_state(), StateId(0));
        assert_eq!(sys.server(1).current_state(), StateId(0));
        assert!(sys.consistent_with_oracle());
        assert_eq!(sys.servers().len(), 3);
    }

    #[test]
    fn heterogeneous_machine_set_roundtrip() {
        let machines = vec![mesi(), zero_counter_mod3()];
        let mut sys = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        let w = Workload::uniform_over_machines(&machines, 200, 11);
        sys.apply_workload(&w);
        sys.crash(0).unwrap();
        let outcome = sys.recover().unwrap();
        assert!(outcome.matches_oracle);
        assert!(sys.consistent_with_oracle());
    }

    #[test]
    fn error_paths() {
        let mut sys = fig1_system(1, FaultModel::Crash);
        assert!(sys.crash(99).is_err());
        assert!(sys.corrupt(0, StateId(99)).is_err());
        assert!(FusedSystem::new(&[], 1, FaultModel::Crash).is_err());
    }

    #[test]
    fn external_recovery_translates_raw_machine_reports() {
        let machines = vec![mesi(), zero_counter_mod3()];
        let mut sys = FusedSystem::new(&machines, 1, FaultModel::Crash).unwrap();
        let w = Workload::uniform_over_machines(&machines, 321, 17);
        sys.apply_workload(&w);
        // Reports as an external server group would produce them: raw
        // machine states in each machine's own numbering, one crashed.
        let mut reports: Vec<MachineReport> = (0..sys.num_servers())
            .map(|i| MachineReport::State(sys.oracle_state_of(i).index()))
            .collect();
        reports[0] = MachineReport::Crashed;
        let ext = sys.recover_external(&reports).unwrap();
        assert!(ext.matches_oracle);
        for i in 0..sys.num_servers() {
            assert_eq!(ext.states[i], sys.oracle_state_of(i), "server {i}");
        }
        assert_eq!(sys.all_machines().len(), sys.num_servers());
        // Shape and bounds errors.
        assert!(sys.recover_external(&reports[..1]).is_err());
        reports[1] = MachineReport::State(999);
        assert!(sys.recover_external(&reports).is_err());
    }

    #[test]
    fn zero_fault_budget_needs_no_backups_but_still_runs() {
        let mut sys = fig1_system(0, FaultModel::Crash);
        assert_eq!(sys.num_backups(), 0);
        sys.apply_workload(&Workload::from_bits("0101"));
        assert!(sys.consistent_with_oracle());
        let outcome = sys.recover().unwrap();
        assert!(outcome.matches_oracle);
    }
}
