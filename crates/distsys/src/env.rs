//! The execution environment abstraction: time, randomness and server-group
//! spawning behind one trait, so the same distributed-system code runs on OS
//! threads ([`OsEnvironment`]) or inside the deterministic simulator
//! ([`SimEnvironment`](crate::sim::SimEnvironment)).
//!
//! The paper's system model separates the machines from the environment that
//! feeds them events; this module makes that separation literal in the API.
//! Code written against [`Environment`] + [`ServerGroup`] never touches
//! `std::thread`, `Instant` or ambient randomness directly, which is what
//! makes byte-identical seeded replay possible.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use fsm_dfsm::{Dfsm, Event, StateId};
use fsm_fusion_core::MachineReport;
use rand::RngCore;

use crate::error::{DistsysError, Result};
use crate::parallel::ParallelServerGroup;
use crate::recovery::{DurabilityConfig, ReplayStats};
use crate::server::Server;
use crate::sim::{Seeded, SimRng};
use crate::storage::{shared, MemStore, SharedStore};

/// Default liveness re-check interval during report collection.
pub const DEFAULT_REPORT_POLL: Duration = Duration::from_millis(20);

/// Default hard ceiling on one report collection.
pub const DEFAULT_COLLECT_TIMEOUT: Duration = Duration::from_secs(30);

/// Configuration for spawning a server group: the report-collection poll
/// interval and overall deadline that used to be hardcoded in
/// [`ParallelServerGroup`].
///
/// Follows the same explicit > environment > auto precedence convention as
/// `fsm_fusion_core::FusionConfig`: builder setters win over the
/// `FSM_DISTSYS_REPORT_POLL_MS` / `FSM_DISTSYS_COLLECT_TIMEOUT_MS`
/// environment variables, which win over the defaults.  The environment is
/// read once, at [`GroupConfig::from_env`].
///
/// ```
/// use std::time::Duration;
/// use fsm_distsys::GroupConfig;
///
/// let cfg = GroupConfig::new().collect_timeout(Duration::from_secs(5));
/// assert_eq!(cfg.resolved_collect_timeout(), Duration::from_secs(5));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroupConfig {
    report_poll: Option<Duration>,
    env_report_poll: Option<Duration>,
    collect_timeout: Option<Duration>,
    env_collect_timeout: Option<Duration>,
    durability: Option<DurabilityConfig>,
}

impl GroupConfig {
    /// An empty configuration: every knob resolves to its default.
    pub fn new() -> Self {
        GroupConfig::default()
    }

    /// A configuration snapshotting `FSM_DISTSYS_REPORT_POLL_MS` and
    /// `FSM_DISTSYS_COLLECT_TIMEOUT_MS` (integer milliseconds; unset or
    /// unparsable values fall through to the defaults).
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var("FSM_DISTSYS_REPORT_POLL_MS").ok().as_deref(),
            std::env::var("FSM_DISTSYS_COLLECT_TIMEOUT_MS")
                .ok()
                .as_deref(),
        )
    }

    /// Pure core of [`GroupConfig::from_env`], separated so precedence is
    /// testable without mutating process state.
    pub fn from_env_values(poll_ms: Option<&str>, timeout_ms: Option<&str>) -> Self {
        let parse = |v: Option<&str>| {
            v.and_then(|s| s.trim().parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis)
        };
        GroupConfig {
            report_poll: None,
            env_report_poll: parse(poll_ms),
            collect_timeout: None,
            env_collect_timeout: parse(timeout_ms),
            durability: None,
        }
    }

    /// Explicitly sets the report poll interval (highest precedence).
    pub fn report_poll(mut self, poll: Duration) -> Self {
        self.report_poll = Some(poll);
        self
    }

    /// Explicitly sets the collection deadline (highest precedence).
    pub fn collect_timeout(mut self, timeout: Duration) -> Self {
        self.collect_timeout = Some(timeout);
        self
    }

    /// The poll interval after precedence: explicit > env > default.
    pub fn resolved_report_poll(&self) -> Duration {
        self.report_poll
            .or(self.env_report_poll)
            .unwrap_or(DEFAULT_REPORT_POLL)
    }

    /// The collection deadline after precedence: explicit > env > default.
    pub fn resolved_collect_timeout(&self) -> Duration {
        self.collect_timeout
            .or(self.env_collect_timeout)
            .unwrap_or(DEFAULT_COLLECT_TIMEOUT)
    }

    /// Enables durability with default [`DurabilityConfig`] knobs: spawned
    /// servers keep a write-ahead log and periodic snapshots in the
    /// environment's [`SharedStore`], and support
    /// [`ServerGroup::restart_process`] / [`ServerGroup::resync`].
    pub fn durable(self) -> Self {
        self.durable_with(DurabilityConfig::new())
    }

    /// Enables durability with explicit [`DurabilityConfig`] knobs.
    pub fn durable_with(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// The durability configuration, if durability is enabled.
    pub fn durability(&self) -> Option<&DurabilityConfig> {
        self.durability.as_ref()
    }
}

/// A monotonic clock anchored at environment creation, measuring elapsed
/// time as a [`Duration`].
///
/// Deadline math in [`ParallelServerGroup`] goes through this type instead
/// of raw `Instant::now()` calls, so the collection logic is written against
/// "time since the environment started" — the same timeline the virtual
/// clock of [`SimEnvironment`](crate::sim::SimEnvironment) exposes.
#[derive(Debug, Clone, Copy)]
pub struct OsClock {
    start: Instant,
}

impl OsClock {
    /// A clock starting now.
    pub fn new() -> Self {
        OsClock {
            start: Instant::now(),
        }
    }

    /// Elapsed time since the clock was created.
    pub fn now(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for OsClock {
    fn default() -> Self {
        OsClock::new()
    }
}

/// A group of servers driven through message passing: the abstraction both
/// the threaded runner ([`ParallelServerGroup`]) and the simulated runner
/// ([`SimServerGroup`](crate::sim::SimServerGroup)) implement.
///
/// Commands (events, faults, restores) are asynchronous and processed in
/// per-server FIFO order; [`ServerGroup::collect_reports`] is the
/// synchronization point, guaranteeing every previously sent command has
/// been applied by the servers that answer.
pub trait ServerGroup {
    /// Number of servers in the group.
    fn len(&self) -> usize;

    /// Whether the group has no servers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Broadcasts one event to every server.
    fn apply_event(&mut self, event: &Event);

    /// Sends one event to server `i` only — the rejoin-replay path, where a
    /// recovered server catches up on events its peers already applied.
    fn apply_event_to(&mut self, i: usize, event: &Event);

    /// Broadcasts a whole batch of events (one command per server).
    fn apply_batch(&mut self, events: &[Event]);

    /// Sends a whole batch of events to server `i` only — the degraded-mode
    /// ingestion path, where healthy lanes receive their batches
    /// individually while a sick sibling's are diverted, and the rejoin
    /// path replaying a diverted backlog.  The default implementation loops
    /// [`ServerGroup::apply_event_to`]; both runners override it with one
    /// shared-batch command.
    fn apply_batch_to(&mut self, i: usize, events: &[Event]) {
        for e in events {
            self.apply_event_to(i, e);
        }
    }

    /// Injects a modeled crash fault into server `i` (the server stays
    /// reachable and reports [`MachineReport::Crashed`]).
    fn crash(&mut self, i: usize);

    /// Injects a Byzantine fault moving server `i` to `state`.
    fn corrupt(&mut self, i: usize, state: StateId);

    /// Restores server `i` to `state` (after recovery).
    fn restore(&mut self, i: usize, state: StateId);

    /// Kills server `i`'s *process* (thread or simulated process), distinct
    /// from the modeled crash fault: a killed process stops answering
    /// entirely, so its report goes missing instead of reading `Crashed`.
    /// The kill is a command like any other — pending events are applied
    /// first.
    fn kill_process(&mut self, i: usize);

    /// Restarts server `i`'s killed process from its durable state: loads
    /// the latest valid snapshot, replays the WAL suffix (dropping a torn
    /// tail) and brings the process back up, healthy, at the returned
    /// [`ReplayStats::acked_seq`].  Fails with [`DistsysError::ServerUp`]
    /// if the process was never killed and [`DistsysError::NotDurable`] if
    /// the group was spawned without durability (the default
    /// implementation).
    fn restart_process(&mut self, i: usize) -> Result<ReplayStats> {
        Err(DistsysError::NotDurable { server: i })
    }

    /// Adopts a peer-decoded state for server `i` at the group's sequence
    /// number `seq` — the peer-resync path after
    /// [`restart_process`](ServerGroup::restart_process) came back behind
    /// the group.  Durable groups persist a snapshot at `seq` so the
    /// sequence number never regresses; the default implementation (plain
    /// groups) restores the state and ignores `seq`.
    fn resync(&mut self, i: usize, seq: u64, state: StateId) -> Result<()> {
        let _ = seq;
        self.restore(i, state);
        Ok(())
    }

    /// Collects a report from every server that answers before the
    /// configured deadline; servers that never answer (dead or wedged
    /// processes, dropped replies) yield `None` at their index.
    fn try_collect_reports(&mut self) -> Vec<Option<MachineReport>>;

    /// Collects a report from every server, failing with
    /// [`DistsysError::MissingReports`] naming the servers that never
    /// answered.
    fn collect_reports(&mut self) -> Result<Vec<MachineReport>> {
        let partial = self.try_collect_reports();
        let missing: Vec<usize> = partial
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            Ok(partial.into_iter().map(|r| r.expect("checked")).collect())
        } else {
            Err(DistsysError::MissingReports { servers: missing })
        }
    }

    /// Tears the group down and returns the final `Server` values of every
    /// server whose process can still produce one.  Processes that died
    /// without a final value — panicked threads, killed simulated processes
    /// — are omitted; a Stop-killed OS thread exits its command loop
    /// gracefully and still returns its value.
    fn shutdown(self: Box<Self>) -> Vec<Server>;
}

/// An execution environment: the clock, randomness and process substrate a
/// distributed run executes on.
///
/// Two implementations exist: [`OsEnvironment`] (OS threads, wall-clock
/// time, entropy-seeded randomness) and
/// [`SimEnvironment`](crate::sim::SimEnvironment) (single-threaded
/// cooperative scheduler, virtual time, seed-derived randomness).  Code
/// parameterized over `&dyn Environment` behaves identically on both up to
/// timing, and *byte-identically* across runs on the simulator.
pub trait Environment {
    /// Elapsed time on this environment's clock (wall-clock since creation,
    /// or virtual time).
    fn now(&self) -> Duration;

    /// Sleeps for `duration` (advances virtual time in the simulator,
    /// delivering any messages that come due).
    fn sleep(&self, duration: Duration);

    /// Draws 64 random bits from the environment's generator.
    fn next_u64(&self) -> u64;

    /// Spawns a server group running `machines`, one logical process each.
    fn spawn_group(&self, machines: &[Dfsm], config: &GroupConfig) -> Box<dyn ServerGroup>;

    /// The environment's durable store: where groups spawned with
    /// [`GroupConfig::durable`] keep their write-ahead logs and snapshots.
    /// In-memory by default for both environments;
    /// [`OsEnvironment::with_store`] mounts real files.
    fn store(&self) -> SharedStore;

    /// A short name for diagnostics (`"os"` or `"sim"`).
    fn name(&self) -> &'static str;

    /// A [`Seeded`] handle drawn from the environment's generator, for
    /// deriving reproducible workloads and fault plans in environment-
    /// agnostic code.
    fn seeded(&self) -> Seeded {
        Seeded(self.next_u64())
    }
}

/// The real-world environment: OS threads, wall-clock time and an
/// entropy-seeded generator — exactly the behavior `ParallelServerGroup`
/// always had, packaged behind [`Environment`].
pub struct OsEnvironment {
    clock: OsClock,
    rng: Mutex<SimRng>,
    store: SharedStore,
    groups_spawned: std::sync::atomic::AtomicUsize,
}

impl std::fmt::Debug for OsEnvironment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OsEnvironment")
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl OsEnvironment {
    /// An environment with entropy-derived randomness.
    pub fn new() -> Self {
        let mut h = RandomState::new().build_hasher();
        h.write_u64(0x5EED);
        Self::seeded(h.finish())
    }

    /// An environment whose *randomness* is seed-derived (scheduling and
    /// timing remain OS-driven, so runs are reproducible only in what they
    /// draw, not in how threads interleave — full replay needs
    /// [`SimEnvironment`](crate::sim::SimEnvironment)).
    pub fn seeded(seed: u64) -> Self {
        OsEnvironment {
            clock: OsClock::new(),
            rng: Mutex::new(SimRng::new(seed)),
            store: shared(MemStore::new()),
            groups_spawned: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Replaces the environment's durable store (e.g. a
    /// [`DirStore`](crate::DirStore) for real files on disk).
    pub fn with_store(mut self, store: SharedStore) -> Self {
        self.store = store;
        self
    }
}

impl Default for OsEnvironment {
    fn default() -> Self {
        OsEnvironment::new()
    }
}

impl Environment for OsEnvironment {
    fn now(&self) -> Duration {
        self.clock.now()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    fn next_u64(&self) -> u64 {
        self.rng.lock().expect("rng lock").next_u64()
    }

    fn spawn_group(&self, machines: &[Dfsm], config: &GroupConfig) -> Box<dyn ServerGroup> {
        match config.durability() {
            None => Box::new(ParallelServerGroup::spawn_clocked(
                machines, config, self.clock,
            )),
            Some(durability) => {
                let n = self
                    .groups_spawned
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Box::new(
                    ParallelServerGroup::spawn_durable(
                        machines,
                        config,
                        self.clock,
                        self.store.clone(),
                        &format!("os-g{n}"),
                        durability.clone(),
                    )
                    .expect("durable spawn: could not initialize server storage"),
                )
            }
        }
    }

    fn store(&self) -> SharedStore {
        self.store.clone()
    }

    fn name(&self) -> &'static str {
        "os"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_config_precedence_explicit_over_env_over_default() {
        let auto = GroupConfig::new();
        assert_eq!(auto.resolved_report_poll(), DEFAULT_REPORT_POLL);
        assert_eq!(auto.resolved_collect_timeout(), DEFAULT_COLLECT_TIMEOUT);

        let env = GroupConfig::from_env_values(Some("5"), Some("1500"));
        assert_eq!(env.resolved_report_poll(), Duration::from_millis(5));
        assert_eq!(env.resolved_collect_timeout(), Duration::from_millis(1500));

        let explicit = env
            .clone()
            .report_poll(Duration::from_millis(1))
            .collect_timeout(Duration::from_secs(2));
        assert_eq!(explicit.resolved_report_poll(), Duration::from_millis(1));
        assert_eq!(explicit.resolved_collect_timeout(), Duration::from_secs(2));
    }

    #[test]
    fn group_config_ignores_garbage_and_zero_env_values() {
        let cfg = GroupConfig::from_env_values(Some("not-a-number"), Some("0"));
        assert_eq!(cfg.resolved_report_poll(), DEFAULT_REPORT_POLL);
        assert_eq!(cfg.resolved_collect_timeout(), DEFAULT_COLLECT_TIMEOUT);
        let cfg = GroupConfig::from_env_values(None, None);
        assert_eq!(cfg, GroupConfig::new());
    }

    #[test]
    fn os_environment_spawns_durable_groups_that_rejoin() {
        use fsm_dfsm::Event;
        let env = OsEnvironment::seeded(1);
        let machines = fsm_machines::fig1_machines();
        let mut group = env.spawn_group(&machines, &GroupConfig::new().durable());
        group.apply_event(&Event::new("0"));
        group.apply_event(&Event::new("1"));
        group.kill_process(0);
        let stats = group.restart_process(0).expect("durable group restarts");
        assert_eq!(stats.acked_seq, 2);
        // The default ServerGroup::resync falls back to a plain restore on
        // non-durable groups; here it snapshots at the group seq.
        group.resync(0, 5, fsm_dfsm::StateId(1)).unwrap();
        // A plain group spawned by the same environment cannot restart.
        let mut plain = env.spawn_group(&machines, &GroupConfig::new());
        plain.kill_process(1);
        assert!(matches!(
            plain.restart_process(1),
            Err(crate::DistsysError::NotDurable { server: 1 })
        ));
        // The environment exposes the store both groups live in.
        assert!(crate::storage::with_store(&env.store(), |_| Ok(())).is_ok());
    }

    #[test]
    fn os_environment_clock_and_rng() {
        let env = OsEnvironment::seeded(42);
        assert_eq!(env.name(), "os");
        let t0 = env.now();
        // The seeded generator matches a bare SimRng with the same seed.
        let mut reference = SimRng::new(42);
        assert_eq!(env.next_u64(), reference.next_u64());
        assert_eq!(env.next_u64(), reference.next_u64());
        let s = env.seeded();
        assert_eq!(s, Seeded(reference.next_u64()));
        assert!(env.now() >= t0);
    }
}
