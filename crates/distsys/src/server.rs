//! Servers: independently executing DFSMs with injectable faults.
//!
//! The paper's system model (Section 2) is a set of independent servers,
//! each running one DFSM, all consuming the same ordered event stream.
//! Faults affect only the *execution state* of a server: a crash erases it,
//! a Byzantine fault silently replaces it with an arbitrary (wrong) state.
//! The underlying machine description is assumed to survive on stable
//! storage, which is why recovery only needs to reconstruct the current
//! state.

use fsm_dfsm::{Dfsm, Event, Executor, StateId};
use fsm_fusion_core::MachineReport;

/// The health of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerStatus {
    /// Executing normally and reporting truthfully.
    Healthy,
    /// Crashed: the execution state is lost until recovery.
    Crashed,
    /// Byzantine: executing (and reporting) from a corrupted state.
    Byzantine,
}

/// A server running one DFSM.
#[derive(Debug, Clone)]
pub struct Server {
    name: String,
    executor: Executor,
    status: ServerStatus,
    events_seen: usize,
    faults_suffered: usize,
}

impl Server {
    /// Creates a healthy server running `machine` from its initial state.
    pub fn new(machine: Dfsm) -> Self {
        Server {
            name: machine.name().to_string(),
            executor: Executor::new(machine),
            status: ServerStatus::Healthy,
            events_seen: 0,
            faults_suffered: 0,
        }
    }

    /// The server's (machine's) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The machine this server runs.
    pub fn machine(&self) -> &Dfsm {
        self.executor.machine()
    }

    /// Current health.
    pub fn status(&self) -> ServerStatus {
        self.status
    }

    /// Number of events delivered to this server (including while crashed —
    /// the paper assumes the environment pauses during recovery, but the
    /// counter records what was delivered regardless).
    pub fn events_seen(&self) -> usize {
        self.events_seen
    }

    /// Number of faults injected into this server so far.
    pub fn faults_suffered(&self) -> usize {
        self.faults_suffered
    }

    /// The current execution state.  Meaningless (but still defined) while
    /// the server is crashed; corrupted while it is Byzantine.
    pub fn current_state(&self) -> StateId {
        self.executor.current()
    }

    /// Applies an event.  A crashed server ignores events (it has no state
    /// to advance); healthy and Byzantine servers apply them normally —
    /// a Byzantine server keeps executing from its corrupted state, which is
    /// exactly how an undetected lie propagates.
    pub fn apply(&mut self, event: &Event) {
        self.events_seen += 1;
        if self.status == ServerStatus::Crashed {
            return;
        }
        self.executor.apply(event);
    }

    /// Crash the server: its execution state is lost.
    pub fn crash(&mut self) {
        self.status = ServerStatus::Crashed;
        self.faults_suffered += 1;
    }

    /// Inject a Byzantine fault: silently move the server to an arbitrary
    /// state.  Returns the state it was actually moved to.
    pub fn corrupt(&mut self, state: StateId) -> StateId {
        self.status = ServerStatus::Byzantine;
        self.faults_suffered += 1;
        self.executor.set_state(state);
        state
    }

    /// What the server answers when the recovery protocol asks for its
    /// state.  A crashed server reports [`MachineReport::Crashed`]; healthy
    /// and Byzantine servers report their current (possibly corrupted)
    /// state.
    pub fn report(&self) -> MachineReport {
        match self.status {
            ServerStatus::Crashed => MachineReport::Crashed,
            _ => MachineReport::State(self.executor.current().index()),
        }
    }

    /// Restores the server to a known-good state (the outcome of recovery)
    /// and marks it healthy again.
    pub fn restore(&mut self, state: StateId) {
        self.executor.set_state(state);
        self.status = ServerStatus::Healthy;
    }

    /// Resets the server to the machine's initial state and healthy status.
    pub fn reset(&mut self) {
        self.executor.reset();
        self.status = ServerStatus::Healthy;
        self.events_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_machines::toggle_switch;

    fn one() -> Event {
        Event::new("1")
    }

    #[test]
    fn healthy_server_tracks_machine_state() {
        let mut s = Server::new(toggle_switch());
        assert_eq!(s.status(), ServerStatus::Healthy);
        s.apply(&one());
        assert_eq!(s.current_state(), StateId(1));
        assert_eq!(s.report(), MachineReport::State(1));
        assert_eq!(s.events_seen(), 1);
        assert_eq!(s.name(), "ToggleSwitch");
        assert_eq!(s.machine().size(), 2);
    }

    #[test]
    fn crashed_server_ignores_events_and_reports_crashed() {
        let mut s = Server::new(toggle_switch());
        s.apply(&one());
        s.crash();
        assert_eq!(s.status(), ServerStatus::Crashed);
        assert_eq!(s.report(), MachineReport::Crashed);
        s.apply(&one());
        assert_eq!(s.faults_suffered(), 1);
        // Restoring brings it back with the given state.
        s.restore(StateId(0));
        assert_eq!(s.status(), ServerStatus::Healthy);
        assert_eq!(s.current_state(), StateId(0));
    }

    #[test]
    fn byzantine_server_reports_corrupted_state() {
        let mut s = Server::new(toggle_switch());
        s.apply(&one()); // true state: on (1)
        s.corrupt(StateId(0));
        assert_eq!(s.status(), ServerStatus::Byzantine);
        assert_eq!(s.report(), MachineReport::State(0));
        // It keeps executing from the wrong state.
        s.apply(&one());
        assert_eq!(s.report(), MachineReport::State(1));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut s = Server::new(toggle_switch());
        s.apply(&one());
        s.crash();
        s.reset();
        assert_eq!(s.status(), ServerStatus::Healthy);
        assert_eq!(s.current_state(), StateId(0));
        assert_eq!(s.events_seen(), 0);
    }
}
