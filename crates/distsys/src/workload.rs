//! Event workloads: the "environment" of the paper's system model.
//!
//! Clients (the environment) send a totally ordered stream of events that is
//! applied to every server.  This module generates such streams — scripted,
//! uniformly random, or weighted — with seeded randomness so experiments are
//! reproducible.

use fsm_dfsm::{Alphabet, Dfsm, Event};

use crate::sim::Seeded;

/// A reproducible event workload.
#[derive(Debug, Clone)]
pub struct Workload {
    events: Vec<Event>,
}

impl Workload {
    /// A scripted workload from an explicit event sequence.
    pub fn scripted<I, E>(events: I) -> Self
    where
        I: IntoIterator<Item = E>,
        E: Into<Event>,
    {
        Workload {
            events: events.into_iter().map(Into::into).collect(),
        }
    }

    /// A scripted workload from a string of single-character events
    /// (convenient for the binary-alphabet machines: `"010110"`).
    pub fn from_bits(bits: &str) -> Self {
        Workload {
            events: bits.chars().map(|c| Event::new(c.to_string())).collect(),
        }
    }

    /// `length` events drawn uniformly from `alphabet` with the given seed.
    ///
    /// Legacy shim over [`Seeded::uniform_workload`]; produces the exact
    /// event stream it always did.
    pub fn uniform(alphabet: &Alphabet, length: usize, seed: u64) -> Self {
        Seeded(seed).uniform_workload(alphabet, length)
    }

    /// `length` events drawn uniformly from the union alphabet of the given
    /// machines — the natural workload for a heterogeneous server group.
    ///
    /// Legacy shim over [`Seeded::workload_over_machines`].
    pub fn uniform_over_machines(machines: &[Dfsm], length: usize, seed: u64) -> Self {
        Seeded(seed).workload_over_machines(machines, length)
    }

    /// `length` events drawn from `choices` with the given relative weights.
    ///
    /// Legacy shim over [`Seeded::weighted_workload`].
    pub fn weighted(choices: &[(Event, u32)], length: usize, seed: u64) -> Self {
        Seeded(seed).weighted_workload(choices, length)
    }

    /// The events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterator over the events.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Concatenates two workloads.
    pub fn chain(mut self, other: Workload) -> Workload {
        self.events.extend(other.events);
        self
    }
}

impl<'a> IntoIterator for &'a Workload {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_machines::{mesi, zero_counter_mod3};

    #[test]
    fn scripted_and_bits_workloads() {
        let w = Workload::scripted(["a", "b", "a"]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        let w = Workload::from_bits("0101");
        assert_eq!(w.events()[1], Event::new("1"));
        assert_eq!(w.iter().count(), 4);
    }

    #[test]
    fn uniform_workload_is_reproducible_and_in_alphabet() {
        let m = zero_counter_mod3();
        let w1 = Workload::uniform(m.alphabet(), 100, 7);
        let w2 = Workload::uniform(m.alphabet(), 100, 7);
        assert_eq!(w1.events(), w2.events());
        for e in &w1 {
            assert!(m.alphabet().contains(e));
        }
        let w3 = Workload::uniform(m.alphabet(), 100, 8);
        assert_ne!(w1.events(), w3.events());
    }

    #[test]
    fn uniform_over_machines_uses_union_alphabet() {
        let machines = vec![zero_counter_mod3(), mesi()];
        let w = Workload::uniform_over_machines(&machines, 500, 1);
        let mut saw_binary = false;
        let mut saw_mesi = false;
        for e in &w {
            if e.name() == "0" || e.name() == "1" {
                saw_binary = true;
            }
            if e.name().starts_with("pr_") || e.name().starts_with("bus_") {
                saw_mesi = true;
            }
        }
        assert!(saw_binary && saw_mesi);
    }

    #[test]
    fn weighted_workload_respects_weights_roughly() {
        let heavy = Event::new("heavy");
        let light = Event::new("light");
        let w = Workload::weighted(&[(heavy.clone(), 9), (light.clone(), 1)], 1000, 3);
        let heavy_count = w.iter().filter(|e| **e == heavy).count();
        assert!(
            heavy_count > 800,
            "expected ~900 heavy events, got {heavy_count}"
        );
        assert_eq!(w.len(), 1000);
    }

    #[test]
    fn chain_concatenates() {
        let w = Workload::from_bits("00").chain(Workload::from_bits("11"));
        assert_eq!(w.len(), 4);
        assert_eq!(w.events()[3], Event::new("1"));
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn weighted_rejects_zero_weights() {
        Workload::weighted(&[(Event::new("x"), 0)], 10, 0);
    }
}
