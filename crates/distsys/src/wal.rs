//! The write-ahead event log: sequence-numbered, checksummed frames,
//! appended through a [`Store`](crate::storage::Store) *before* an event is
//! acknowledged (applied).
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! ┌─────────────┬───────────┬──────────────────┬──────────────┐
//! │ len: u32    │ seq: u64  │ payload (len B)  │ crc: u64     │
//! └─────────────┴───────────┴──────────────────┴──────────────┘
//! ```
//!
//! `payload` is the UTF-8 event name, `crc` is FNV-1a over everything
//! before it.  The read path is torn-tail tolerant: a final frame cut short
//! by a power failure (wrong length, bad checksum, or a non-monotonic
//! sequence number) ends the scan — the valid prefix is replayed and the
//! torn bytes are reported, never silently replayed.  Because the frame was
//! incomplete, its event was by construction never acknowledged
//! (append-before-ack), so dropping it loses nothing that was promised.

use fsm_dfsm::Event;

use crate::error::{DistsysError, Result};
use crate::storage::{with_store, SharedStore};

/// Fixed frame overhead: 4-byte length + 8-byte sequence + 8-byte checksum.
pub const FRAME_OVERHEAD: usize = 4 + 8 + 8;

/// The WAL blob name for a durable-server id.
pub fn wal_name(id: &str) -> String {
    format!("{id}.wal")
}

/// One decoded log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// The entry's sequence number (1-based, strictly increasing).
    pub seq: u64,
    /// The logged event.
    pub event: Event,
}

/// The result of scanning a log's bytes.
#[derive(Debug, Clone, Default)]
pub struct WalScan {
    /// Every valid entry, in log order.
    pub entries: Vec<WalEntry>,
    /// Byte length of the valid prefix.
    pub valid_len: usize,
    /// Bytes after the valid prefix (a torn or corrupt tail), dropped.
    pub torn_tail_bytes: usize,
    /// Byte offset where the last valid frame starts (`None` if no frame).
    pub last_frame_start: Option<usize>,
}

/// FNV-1a over a byte slice — the frame checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Encodes one frame.
pub fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(payload);
    let crc = fnv1a(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Appends one event frame to the log `name` in `store`.  Returns only
/// after the store accepted the bytes — the caller may then acknowledge
/// (apply) the event.
pub fn append(store: &SharedStore, name: &str, seq: u64, event: &Event) -> Result<()> {
    let frame = encode_frame(seq, event.name().as_bytes());
    with_store(store, |s| s.append(name, &frame))
}

/// Scans raw log bytes into entries, stopping at the first malformed or
/// non-monotonic frame (everything from there on is the torn tail).
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut out = WalScan::default();
    let mut offset = 0usize;
    let mut last_seq = 0u64;
    while bytes.len() - offset >= FRAME_OVERHEAD {
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes"));
        let frame_len = FRAME_OVERHEAD + len as usize;
        if bytes.len() - offset < frame_len {
            break;
        }
        let body = &bytes[offset..offset + frame_len - 8];
        let crc = u64::from_le_bytes(
            bytes[offset + frame_len - 8..offset + frame_len]
                .try_into()
                .expect("8 bytes"),
        );
        if fnv1a(body) != crc {
            break;
        }
        let seq = u64::from_le_bytes(body[4..12].try_into().expect("8 bytes"));
        if seq <= last_seq {
            break;
        }
        let Ok(name) = std::str::from_utf8(&body[12..]) else {
            break;
        };
        out.entries.push(WalEntry {
            seq,
            event: Event::new(name),
        });
        out.last_frame_start = Some(offset);
        last_seq = seq;
        offset += frame_len;
    }
    out.valid_len = offset;
    out.torn_tail_bytes = bytes.len() - offset;
    out
}

/// Reads and scans the log `name` from `store` (an absent log scans as
/// empty).
pub fn read(store: &SharedStore, name: &str) -> Result<WalScan> {
    let bytes = with_store(store, |s| s.read(name))?.unwrap_or_default();
    Ok(scan(&bytes))
}

/// Truncates the log to `new_len` bytes — the simulator's torn-write
/// injection (modeling a power failure mid-append) and the compaction path
/// (with `new_len == 0`) share this.
pub fn truncate(store: &SharedStore, name: &str, new_len: usize) -> Result<()> {
    with_store(store, |s| {
        let bytes = s.read(name)?.unwrap_or_default();
        let keep = &bytes[..new_len.min(bytes.len())];
        s.write_atomic(name, keep)
    })
}

/// Maps any of this module's errors into a storage error with log context.
pub(crate) fn corrupt(name: &str, detail: impl std::fmt::Display) -> DistsysError {
    DistsysError::Storage {
        message: format!("wal {name}: {detail}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{shared, MemStore};

    fn ev(s: &str) -> Event {
        Event::new(s)
    }

    #[test]
    fn append_read_roundtrip() {
        let store = shared(MemStore::new());
        append(&store, "a.wal", 1, &ev("0")).unwrap();
        append(&store, "a.wal", 2, &ev("tick")).unwrap();
        append(&store, "a.wal", 3, &ev("1")).unwrap();
        let scan = read(&store, "a.wal").unwrap();
        assert_eq!(scan.entries.len(), 3);
        assert_eq!(scan.entries[1].seq, 2);
        assert_eq!(scan.entries[1].event.name(), "tick");
        assert_eq!(scan.torn_tail_bytes, 0);
        assert!(scan.last_frame_start.is_some());
    }

    #[test]
    fn missing_log_scans_empty() {
        let store = shared(MemStore::new());
        let scan = read(&store, "nope.wal").unwrap();
        assert!(scan.entries.is_empty());
        assert_eq!(scan.valid_len, 0);
        assert_eq!(scan.last_frame_start, None);
    }

    #[test]
    fn torn_tail_is_dropped_not_replayed() {
        let mut bytes = encode_frame(1, b"0");
        bytes.extend_from_slice(&encode_frame(2, b"1"));
        let full = scan(&bytes);
        assert_eq!(full.entries.len(), 2);
        // Cut the final frame anywhere: header, payload or checksum.
        for cut in full.valid_len - (FRAME_OVERHEAD + 1) + 1..bytes.len() {
            let torn = scan(&bytes[..cut]);
            assert_eq!(torn.entries.len(), 1, "cut at {cut}");
            assert_eq!(torn.entries[0].seq, 1);
            assert_eq!(torn.torn_tail_bytes, cut - torn.valid_len);
        }
    }

    #[test]
    fn corrupt_checksum_and_bad_seq_stop_the_scan() {
        let mut bytes = encode_frame(1, b"0");
        let second_start = bytes.len();
        bytes.extend_from_slice(&encode_frame(2, b"1"));
        // Flip a payload byte of the second frame: checksum mismatch.
        let mut flipped = bytes.clone();
        flipped[second_start + 12] ^= 0xFF;
        assert_eq!(scan(&flipped).entries.len(), 1);
        // A regressing sequence number also stops the scan.
        let mut regress = encode_frame(5, b"a");
        regress.extend_from_slice(&encode_frame(5, b"b"));
        assert_eq!(scan(&regress).entries.len(), 1);
    }

    #[test]
    fn truncate_shortens_the_log() {
        let store = shared(MemStore::new());
        append(&store, "t.wal", 1, &ev("0")).unwrap();
        append(&store, "t.wal", 2, &ev("1")).unwrap();
        let full = read(&store, "t.wal").unwrap();
        truncate(&store, "t.wal", full.valid_len - 3).unwrap();
        let cut = read(&store, "t.wal").unwrap();
        assert_eq!(cut.entries.len(), 1);
        assert!(cut.torn_tail_bytes > 0);
        truncate(&store, "t.wal", 0).unwrap();
        assert!(read(&store, "t.wal").unwrap().entries.is_empty());
    }
}
