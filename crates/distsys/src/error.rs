//! Error types for the distributed-system simulation.

use std::fmt;

/// Errors raised by the simulated distributed system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are described by the variant docs and Display impl
pub enum DistsysError {
    /// A system was built with no machines.
    NoMachines,
    /// A fault or query referenced a server that does not exist.
    NoSuchServer { server: usize, count: usize },
    /// A Byzantine fault tried to move a server to a state it does not have.
    InvalidState {
        server: usize,
        state: usize,
        size: usize,
    },
    /// Report collection gave up on servers whose threads died (or stayed
    /// unresponsive past the collection deadline) without reporting.
    MissingReports {
        /// Indices of the servers that never reported.
        servers: Vec<usize>,
    },
    /// A fault plan with a placeholder corruption (resolved only against an
    /// in-process `FusedSystem`) was executed against a remote server group.
    UnresolvedCorruption {
        /// The server whose corruption had no explicit target state.
        server: usize,
    },
    /// A kill (or crash/corrupt) fault targeted a server whose process is
    /// already down.
    ServerDown { server: usize },
    /// A restart targeted a server whose process is still up.
    ServerUp { server: usize },
    /// A restart or resync targeted a server that has no durable state
    /// (the group was spawned without durability).
    NotDurable { server: usize },
    /// A client pushed into a full ingestion queue: the typed, non-blocking
    /// face of backpressure (`ClientHandle::try_push`).
    Backpressure {
        /// The client whose queue is full.
        client: usize,
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// The diverted backlog for a down server overflowed and was dropped,
    /// so a rejoin replay can no longer catch it up; rejoin must go through
    /// peer resync instead.
    BacklogLost {
        /// The server whose backlog was dropped.
        server: usize,
        /// How many diverted events were lost.
        dropped: u64,
    },
    /// Durable storage failed (I/O error, corrupt blob, poisoned lock, or a
    /// log that cannot be replayed).
    Storage {
        /// Human-readable description of what failed.
        message: String,
    },
    /// An error from the fusion layer (generation or recovery).
    Fusion(fsm_fusion_core::FusionError),
    /// An error from the DFSM layer.
    Dfsm(fsm_dfsm::DfsmError),
}

impl fmt::Display for DistsysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistsysError::NoMachines => write!(f, "a system needs at least one machine"),
            DistsysError::NoSuchServer { server, count } => {
                write!(f, "server {server} does not exist (system has {count})")
            }
            DistsysError::InvalidState {
                server,
                state,
                size,
            } => write!(
                f,
                "state {state} is out of range for server {server} (machine has {size} states)"
            ),
            DistsysError::MissingReports { servers } => write!(
                f,
                "servers {servers:?} never reported (thread dead or unresponsive)"
            ),
            DistsysError::UnresolvedCorruption { server } => write!(
                f,
                "corruption of server {server} has no explicit target state; \
                 use an explicit corruption plan for server groups"
            ),
            DistsysError::ServerDown { server } => {
                write!(f, "server {server} is already down")
            }
            DistsysError::ServerUp { server } => {
                write!(f, "server {server} is still up; kill it before restarting")
            }
            DistsysError::NotDurable { server } => write!(
                f,
                "server {server} has no durable state; spawn the group with durability enabled"
            ),
            DistsysError::Backpressure { client, capacity } => write!(
                f,
                "client {client}'s queue is full (capacity {capacity}); \
                 the aggregator is behind — retry after a pump or block"
            ),
            DistsysError::BacklogLost { server, dropped } => write!(
                f,
                "server {server} lost {dropped} diverted events (divert buffer overflow); \
                 rejoin via peer resync, not replay"
            ),
            DistsysError::Storage { message } => write!(f, "storage error: {message}"),
            DistsysError::Fusion(e) => write!(f, "fusion error: {e}"),
            DistsysError::Dfsm(e) => write!(f, "dfsm error: {e}"),
        }
    }
}

impl std::error::Error for DistsysError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistsysError::Fusion(e) => Some(e),
            DistsysError::Dfsm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fsm_fusion_core::FusionError> for DistsysError {
    fn from(e: fsm_fusion_core::FusionError) -> Self {
        DistsysError::Fusion(e)
    }
}

impl From<fsm_dfsm::DfsmError> for DistsysError {
    fn from(e: fsm_dfsm::DfsmError) -> Self {
        DistsysError::Dfsm(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, DistsysError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(DistsysError::NoMachines.to_string().contains("machine"));
        let e: DistsysError = fsm_dfsm::DfsmError::NoStates.into();
        assert!(matches!(e, DistsysError::Dfsm(_)));
        let e: DistsysError = fsm_fusion_core::FusionError::NothingToRecoverFrom.into();
        assert!(matches!(e, DistsysError::Fusion(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e = DistsysError::NoSuchServer {
            server: 5,
            count: 3,
        };
        assert!(e.to_string().contains('5'));
        let e = DistsysError::MissingReports {
            servers: vec![0, 2],
        };
        assert!(e.to_string().contains("[0, 2]"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn recovery_variants_display() {
        assert!(DistsysError::ServerDown { server: 1 }
            .to_string()
            .contains("already down"));
        assert!(DistsysError::ServerUp { server: 2 }
            .to_string()
            .contains("still up"));
        assert!(DistsysError::NotDurable { server: 0 }
            .to_string()
            .contains("durable"));
        let e = DistsysError::Storage {
            message: "disk on fire".into(),
        };
        assert!(e.to_string().contains("disk on fire"));
    }

    #[test]
    fn ingest_variants_display() {
        let e = DistsysError::Backpressure {
            client: 3,
            capacity: 64,
        };
        assert!(e.to_string().contains("client 3"));
        assert!(e.to_string().contains("64"));
        let e = DistsysError::BacklogLost {
            server: 1,
            dropped: 42,
        };
        assert!(e.to_string().contains("server 1"));
        assert!(e.to_string().contains("42"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
