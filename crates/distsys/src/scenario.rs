//! End-to-end scenarios from the paper's motivation sections.
//!
//! The introduction motivates fusion with a sensor network: `n` sensors each
//! run a small DFSM (a mod-3 counter of changes to temperature, pressure,
//! humidity, …).  Replication needs `n` extra sensors to tolerate one crash;
//! fusion needs a *single* 3-state backup.  The conclusion scales the claim
//! up: "to tolerate 5 crash faults among 1000 machines, replication will
//! require 5000 extra machines [whereas fusion] may achieve this with just 5".
//!
//! [`SensorNetwork`] reproduces the scenario in two modes:
//!
//! * **exact** — for small `n`, the backup is produced by Algorithm 2 on the
//!   reachable cross product (3ⁿ states), exactly as the library does for
//!   any machine set;
//! * **analytic** — for large `n` (the paper's 100-sensor network), building
//!   a 3ⁿ-state product is pointless; the backup is the sum-mod-3 counter
//!   over all sensor events, which is the machine Algorithm 2 finds in exact
//!   mode (tests cross-check the two modes on small `n`), and single-sensor
//!   recovery solves `backup − Σ others (mod 3)` directly.

use std::time::Duration;

use fsm_dfsm::{Dfsm, DfsmBuilder, Event, Executor, StateId};
use fsm_fusion_core::{FaultModel, MachineReport};

use crate::env::{Environment, GroupConfig};
use crate::error::{DistsysError, Result};
use crate::ingest::{IngestConfig, IngestMetrics, IngestPipeline};
use crate::sim::Seeded;
use crate::system::FusedSystem;
use crate::workload::Workload;

/// How the sensor-network backup is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorBackupMode {
    /// Run the full pipeline (cross product + Algorithm 2).  Practical for
    /// roughly `n ≤ 8` sensors.
    Exact,
    /// Use the analytically known fusion (the sum-mod-3 counter over every
    /// sensor's event) without building the 3ⁿ-state product.
    Analytic,
}

/// A simulated sensor network of `n` mod-3 counters plus one fused backup.
#[derive(Debug)]
pub struct SensorNetwork {
    /// Per-sensor event names (`sensor0`, `sensor1`, …).
    events: Vec<Event>,
    /// Sensor states (counts mod 3); `None` while crashed.
    sensors: Vec<Option<usize>>,
    /// The fused backup state: sum of all counts mod 3.
    backup: usize,
    mode: SensorBackupMode,
    /// Exact-mode system (kept for cross-checking and recovery).
    exact: Option<FusedSystem>,
    events_processed: usize,
}

impl SensorNetwork {
    /// The modulus of every sensor counter.
    pub const MODULUS: usize = 3;

    /// Creates a sensor network with `n` sensors.
    pub fn new(n: usize, mode: SensorBackupMode) -> Result<Self> {
        Self::build(n, mode, None)
    }

    /// [`SensorNetwork::new`] through a caller-owned
    /// [`fsm_fusion_core::FusionSession`]: exact-mode backup generation
    /// runs on the session's engine and cache
    /// ([`FusedSystem::with_session`]); analytic mode needs no generation,
    /// so the session goes unused there.
    pub fn new_with_session(
        n: usize,
        mode: SensorBackupMode,
        session: &mut fsm_fusion_core::FusionSession,
    ) -> Result<Self> {
        Self::build(n, mode, Some(session))
    }

    fn build(
        n: usize,
        mode: SensorBackupMode,
        session: Option<&mut fsm_fusion_core::FusionSession>,
    ) -> Result<Self> {
        if n == 0 {
            return Err(DistsysError::NoMachines);
        }
        let events: Vec<Event> = (0..n).map(|i| Event::new(format!("sensor{i}"))).collect();
        let exact = match mode {
            SensorBackupMode::Exact => {
                let machines = Self::sensor_machines(n);
                Some(match session {
                    Some(s) => FusedSystem::with_session(&machines, 1, FaultModel::Crash, s)?,
                    None => FusedSystem::new(&machines, 1, FaultModel::Crash)?,
                })
            }
            SensorBackupMode::Analytic => None,
        };
        Ok(SensorNetwork {
            events,
            sensors: vec![Some(0); n],
            backup: 0,
            mode,
            exact,
            events_processed: 0,
        })
    }

    /// The DFSMs the sensors run (used by exact mode and by tests).
    pub fn sensor_machines(n: usize) -> Vec<Dfsm> {
        let alphabet: Vec<String> = (0..n).map(|i| format!("sensor{i}")).collect();
        let alphabet_refs: Vec<&str> = alphabet.iter().map(|s| s.as_str()).collect();
        (0..n)
            .map(|i| {
                fsm_machines::mod_counter(
                    &format!("Sensor{i}"),
                    Self::MODULUS,
                    &format!("sensor{i}"),
                    &alphabet_refs,
                )
            })
            .collect()
    }

    /// Number of sensors.
    pub fn num_sensors(&self) -> usize {
        self.sensors.len()
    }

    /// The backup mode in use.
    pub fn mode(&self) -> SensorBackupMode {
        self.mode
    }

    /// Number of observations processed.
    pub fn events_processed(&self) -> usize {
        self.events_processed
    }

    /// The event name for sensor `i` (an observation on that sensor).
    pub fn event_for(&self, i: usize) -> &Event {
        &self.events[i]
    }

    /// Records one observation on sensor `i`.
    pub fn observe(&mut self, i: usize) -> Result<()> {
        if i >= self.sensors.len() {
            return Err(DistsysError::NoSuchServer {
                server: i,
                count: self.sensors.len(),
            });
        }
        if let Some(state) = self.sensors[i].as_mut() {
            *state = (*state + 1) % Self::MODULUS;
        }
        self.backup = (self.backup + 1) % Self::MODULUS;
        if let Some(sys) = self.exact.as_mut() {
            let e = self.events[i].clone();
            sys.apply_event(&e);
        }
        self.events_processed += 1;
        Ok(())
    }

    /// Records a random observation sequence (uniform over sensors).
    ///
    /// Legacy shim over [`Seeded::observations`]; observes the exact
    /// sequence it always did for a given seed.
    pub fn observe_randomly(&mut self, count: usize, seed: u64) -> Result<()> {
        for i in Seeded(seed).observations(self.sensors.len(), count) {
            self.observe(i)?;
        }
        Ok(())
    }

    /// A workload of `count` random observations (for exact-mode systems or
    /// external replay).
    ///
    /// Legacy shim over [`Seeded::observations`].
    pub fn random_workload(&self, count: usize, seed: u64) -> Workload {
        Workload::scripted(
            Seeded(seed)
                .observations(self.events.len(), count)
                .into_iter()
                .map(|i| self.events[i].clone()),
        )
    }

    /// The current state (count mod 3) of sensor `i`, if it is alive.
    pub fn sensor_state(&self, i: usize) -> Option<usize> {
        self.sensors[i]
    }

    /// The backup machine's state.
    pub fn backup_state(&self) -> usize {
        self.backup
    }

    /// Crashes sensor `i` (its count is lost).
    pub fn crash_sensor(&mut self, i: usize) -> Result<()> {
        if i >= self.sensors.len() {
            return Err(DistsysError::NoSuchServer {
                server: i,
                count: self.sensors.len(),
            });
        }
        self.sensors[i] = None;
        if let Some(sys) = self.exact.as_mut() {
            sys.crash(i)?;
        }
        Ok(())
    }

    /// Recovers every crashed sensor from the surviving sensors and the
    /// fused backup, and returns the recovered states.  At most one sensor
    /// may be crashed (the network is provisioned for a single fault, as in
    /// the paper's example).
    pub fn recover(&mut self) -> Result<Vec<usize>> {
        let crashed: Vec<usize> = (0..self.sensors.len())
            .filter(|&i| self.sensors[i].is_none())
            .collect();
        if crashed.len() > 1 {
            return Err(DistsysError::Fusion(
                fsm_fusion_core::FusionError::AmbiguousRecovery {
                    candidates: crashed.clone(),
                },
            ));
        }
        if let Some(&victim) = crashed.first() {
            let recovered = match self.mode {
                SensorBackupMode::Analytic => {
                    // backup = Σ counts (mod 3)  ⇒  missing = backup − Σ others.
                    let others: usize = self
                        .sensors
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != victim)
                        .map(|(_, s)| s.expect("only one sensor crashed"))
                        .sum();
                    (self.backup + Self::MODULUS * self.sensors.len() - others) % Self::MODULUS
                }
                SensorBackupMode::Exact => {
                    let sys = self.exact.as_mut().expect("exact mode keeps a system");
                    let outcome = sys.recover()?;
                    outcome.recovery.machine_states[victim]
                }
            };
            self.sensors[victim] = Some(recovered);
        }
        Ok(self.sensors.iter().map(|s| s.expect("restored")).collect())
    }

    /// The analytically known fused backup as a real DFSM: a mod-3 counter
    /// over *every* sensor event — the machine Algorithm 2 finds in exact
    /// mode (the cross-mode tests pin this) — so analytic-mode networks can
    /// drive a real server group without building the 3ⁿ-state product.
    pub fn analytic_backup_machine(n: usize) -> Dfsm {
        let mut b = DfsmBuilder::new("FusedSum");
        for s in 0..Self::MODULUS {
            b.add_state_with_output(format!("FusedSum{s}"), s.to_string());
        }
        b.set_initial("FusedSum0");
        for s in 0..Self::MODULUS {
            for i in 0..n {
                b.add_transition(
                    format!("FusedSum{s}"),
                    Event::new(format!("sensor{i}")),
                    format!("FusedSum{}", (s + 1) % Self::MODULUS),
                );
            }
        }
        b.build().expect("the sum counter is a valid DFSM")
    }

    /// The server roster a serving run spawns: every sensor machine plus
    /// the fused backup (Algorithm 2's in exact mode,
    /// [`SensorNetwork::analytic_backup_machine`] otherwise).
    pub fn serving_machines(&self) -> Vec<Dfsm> {
        match &self.exact {
            Some(sys) => sys.all_machines(),
            None => {
                let n = self.num_sensors();
                let mut machines = Self::sensor_machines(n);
                machines.push(Self::analytic_backup_machine(n));
                machines
            }
        }
    }

    /// Serves `workload` from `clients` simulated clients through a fused
    /// server group spawned on `env` — the end-to-end traffic path: events
    /// are pushed round-robin into the bounded client queues of an
    /// [`IngestPipeline`] configured by `config`, batched on its size/time
    /// triggers, applied by the group, and report collection closes the
    /// run.  Works identically on [`crate::OsEnvironment`] (wall clock,
    /// real threads) and [`crate::sim::SimEnvironment`] (virtual time,
    /// seeded chaos, bit-identical replay).
    ///
    /// A server that dies mid-run degrades to a `None` report (the
    /// [`DistsysError::MissingReports`] path) in
    /// [`ServeReport::reports`] without stalling its siblings.
    pub fn serve(
        &self,
        env: &dyn Environment,
        clients: usize,
        workload: &Workload,
        config: &IngestConfig,
    ) -> Result<ServeReport> {
        let machines = self.serving_machines();
        let mut group = env.spawn_group(&machines, &GroupConfig::from_env());
        let clients = clients.max(1);
        let mut pipeline = IngestPipeline::new(clients, machines.len(), config);
        let start = env.now();
        for (j, event) in workload.iter().enumerate() {
            pipeline.push(group.as_mut(), j % clients, event.clone(), env.now());
            pipeline.pump(group.as_mut(), env.now());
        }
        pipeline.drain(group.as_mut(), env.now());
        let reports = group.try_collect_reports();
        let elapsed = env.now().saturating_sub(start);
        let missing: Vec<usize> = reports
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.is_none().then_some(i))
            .collect();
        let events = workload.len();
        let events_per_sec = events as f64 / elapsed.max(Duration::from_nanos(1)).as_secs_f64();
        let metrics = pipeline.metrics();
        let flush_latency_ns = pipeline.take_latency_samples();
        let _ = group.shutdown();
        Ok(ServeReport {
            events,
            clients,
            elapsed,
            events_per_sec,
            metrics,
            reports,
            missing,
            flush_latency_ns,
        })
    }

    /// Backup state space used by fusion (a single 3-state machine) vs. the
    /// replication baseline (`3ⁿ` for one crash fault), as the paper's
    /// introduction argues.
    pub fn backup_state_space_comparison(&self) -> (u128, u128) {
        let fusion = Self::MODULUS as u128;
        let replication = (Self::MODULUS as u128).saturating_pow(self.sensors.len() as u32);
        (fusion, replication)
    }

    /// Verifies the internal consistency invariant: the backup equals the
    /// sum of the (alive) sensor counts mod 3 whenever no sensor is crashed.
    pub fn invariant_holds(&self) -> bool {
        if self.sensors.iter().any(|s| s.is_none()) {
            return true;
        }
        let total: usize = self.sensors.iter().map(|s| s.unwrap()).sum();
        total % Self::MODULUS == self.backup
    }
}

/// What one [`SensorNetwork::serve`] run measured: the first end-to-end
/// serving numbers (events/sec over the environment clock) plus the
/// pipeline's own counters and latency samples.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Events served end to end.
    pub events: usize,
    /// Client queues that fed the pipeline.
    pub clients: usize,
    /// Environment-clock time from first push to final drain (virtual under
    /// the simulator).
    pub elapsed: Duration,
    /// Sustained events per second over `elapsed` (a virtual rate under the
    /// simulator).
    pub events_per_sec: f64,
    /// The pipeline's counters (batches, flush triggers, diversions,
    /// retries).
    pub metrics: IngestMetrics,
    /// Final per-server reports; `None` marks a server that degraded to the
    /// missing-reports path.
    pub reports: Vec<Option<MachineReport>>,
    /// Indices of the servers that never reported.
    pub missing: Vec<usize>,
    /// Enqueue-to-flush latency samples (nanoseconds, flush order, capped
    /// at [`crate::ingest::LATENCY_SAMPLE_CAP`]).
    pub flush_latency_ns: Vec<u64>,
}

/// A reference oracle for scenario tests: replays a workload on a single
/// machine and reports its final state (used to double-check scenario
/// arithmetic against real DFSM execution).
pub fn replay_oracle(machine: &Dfsm, workload: &Workload) -> StateId {
    let mut ex = Executor::new(machine.clone());
    ex.apply_all(workload.iter());
    ex.current()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn analytic_sensor_network_recovers_a_crashed_sensor() {
        let mut net = SensorNetwork::new(100, SensorBackupMode::Analytic).unwrap();
        net.observe_randomly(10_000, 42).unwrap();
        assert!(net.invariant_holds());
        let truth = net.sensor_state(37).unwrap();
        net.crash_sensor(37).unwrap();
        assert_eq!(net.sensor_state(37), None);
        let recovered = net.recover().unwrap();
        assert_eq!(recovered[37], truth);
        assert_eq!(net.sensor_state(37), Some(truth));
        // The paper's headline saving: 3 states of backup vs 3^100.
        let (fusion, replication) = net.backup_state_space_comparison();
        assert_eq!(fusion, 3);
        assert!(replication > 1u128 << 100);
    }

    #[test]
    fn exact_and_analytic_modes_agree_on_small_networks() {
        for seed in 0..5u64 {
            let n = 4;
            let mut exact = SensorNetwork::new(n, SensorBackupMode::Exact).unwrap();
            let mut analytic = SensorNetwork::new(n, SensorBackupMode::Analytic).unwrap();
            // Same observation sequence on both.
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..200 {
                let i = rng.gen_range(0..n);
                exact.observe(i).unwrap();
                analytic.observe(i).unwrap();
            }
            let victim = (seed as usize) % n;
            let truth = exact.sensor_state(victim).unwrap();
            exact.crash_sensor(victim).unwrap();
            analytic.crash_sensor(victim).unwrap();
            assert_eq!(exact.recover().unwrap()[victim], truth, "seed {seed}");
            assert_eq!(analytic.recover().unwrap()[victim], truth, "seed {seed}");
        }
    }

    #[test]
    fn exact_mode_generates_a_three_state_backup() {
        // Algorithm 2 finds the 3-state fused backup the paper promises for
        // the sensor network, no matter how many sensors there are.
        for n in [2usize, 3, 4] {
            let net = SensorNetwork::new(n, SensorBackupMode::Exact).unwrap();
            let sys = net.exact.as_ref().unwrap();
            assert_eq!(sys.num_backups(), 1, "n = {n}");
            assert_eq!(sys.fusion().machine_sizes(), vec![3], "n = {n}");
        }
    }

    #[test]
    fn session_built_networks_match_the_legacy_constructor() {
        use fsm_fusion_core::{Engine, FusionConfig};
        // One session serves several exact-mode networks back to back; each
        // must carry exactly the backup the legacy constructor generates,
        // and recovery must agree.
        let mut session = FusionConfig::new().engine(Engine::Sequential).build();
        for n in [2usize, 3, 4] {
            let mut legacy = SensorNetwork::new(n, SensorBackupMode::Exact).unwrap();
            let mut sessioned =
                SensorNetwork::new_with_session(n, SensorBackupMode::Exact, &mut session).unwrap();
            assert_eq!(
                legacy.exact.as_ref().unwrap().fusion().partitions,
                sessioned.exact.as_ref().unwrap().fusion().partitions,
                "n = {n}"
            );
            for net in [&mut legacy, &mut sessioned] {
                net.observe_randomly(60, n as u64).unwrap();
            }
            let truth = legacy.sensor_state(0).unwrap();
            legacy.crash_sensor(0).unwrap();
            sessioned.crash_sensor(0).unwrap();
            assert_eq!(legacy.recover().unwrap(), sessioned.recover().unwrap());
            assert_eq!(sessioned.sensor_state(0), Some(truth));
        }
        // Analytic mode accepts a session too (and ignores it).
        let net = SensorNetwork::new_with_session(5, SensorBackupMode::Analytic, &mut session);
        assert!(net.is_ok());
    }

    #[test]
    fn two_crashes_exceed_the_budget() {
        let mut net = SensorNetwork::new(10, SensorBackupMode::Analytic).unwrap();
        net.observe_randomly(100, 1).unwrap();
        net.crash_sensor(1).unwrap();
        net.crash_sensor(2).unwrap();
        assert!(net.recover().is_err());
    }

    #[test]
    fn accessors_and_errors() {
        let mut net = SensorNetwork::new(3, SensorBackupMode::Analytic).unwrap();
        assert_eq!(net.num_sensors(), 3);
        assert_eq!(net.mode(), SensorBackupMode::Analytic);
        assert_eq!(net.event_for(1).name(), "sensor1");
        assert!(net.observe(7).is_err());
        assert!(net.crash_sensor(7).is_err());
        assert!(SensorNetwork::new(0, SensorBackupMode::Analytic).is_err());
        net.observe(0).unwrap();
        assert_eq!(net.events_processed(), 1);
        assert_eq!(net.backup_state(), 1);
        // No crash: recover is a no-op returning all states.
        assert_eq!(net.recover().unwrap(), vec![1, 0, 0]);
    }

    #[test]
    fn analytic_backup_machine_counts_every_sensor_event_mod_3() {
        let n = 4;
        let m = SensorNetwork::analytic_backup_machine(n);
        assert_eq!(m.size(), SensorNetwork::MODULUS);
        let net = SensorNetwork::new(n, SensorBackupMode::Analytic).unwrap();
        let w = net.random_workload(120, 3);
        // The backup counts *every* observation: final state = |w| mod 3.
        assert_eq!(replay_oracle(&m, &w).index(), w.len() % 3);
        // Serving rosters: sensors + the one backup, in both modes.
        assert_eq!(net.serving_machines().len(), n + 1);
        let exact = SensorNetwork::new(3, SensorBackupMode::Exact).unwrap();
        assert_eq!(exact.serving_machines().len(), 4);
    }

    #[test]
    fn serve_runs_the_batched_path_end_to_end_on_both_backends() {
        use crate::env::{Environment, OsEnvironment};
        use crate::sim::SimConfig;
        let n = 3;
        let net = SensorNetwork::new(n, SensorBackupMode::Analytic).unwrap();
        let w = net.random_workload(400, 7);
        let cfg = IngestConfig::new().batch_max(32).queue_cap(64);
        let check = |env: &dyn Environment| {
            let report = net.serve(env, 2, &w, &cfg).unwrap();
            assert_eq!(report.events, 400);
            assert_eq!(report.clients, 2);
            assert!(report.events_per_sec > 0.0);
            assert!(
                report.missing.is_empty(),
                "{}: {:?}",
                env.name(),
                report.missing
            );
            assert_eq!(report.metrics.flushed_events, 400);
            assert!(report.metrics.batches >= 400 / 32);
            assert_eq!(report.flush_latency_ns.len(), 400);
            // Every sensor's served state equals its observation count mod
            // 3; the backup counts everything.
            for i in 0..n {
                let count = w
                    .iter()
                    .filter(|e| e.name() == format!("sensor{i}"))
                    .count();
                assert_eq!(
                    report.reports[i],
                    Some(fsm_fusion_core::MachineReport::State(
                        count % SensorNetwork::MODULUS
                    )),
                    "{}: sensor {i}",
                    env.name()
                );
            }
            assert_eq!(
                report.reports[n],
                Some(fsm_fusion_core::MachineReport::State(
                    400 % SensorNetwork::MODULUS
                ))
            );
        };
        check(&OsEnvironment::seeded(1));
        check(&SimConfig::new(9).build());
    }

    #[test]
    fn serve_replays_bit_identically_under_the_simulator() {
        use crate::sim::SimConfig;
        let net = SensorNetwork::new(3, SensorBackupMode::Exact).unwrap();
        let w = net.random_workload(150, 5);
        let cfg = IngestConfig::new().batch_max(16);
        let run = |seed: u64| {
            let env = SimConfig::new(seed).drop_probability(0.15).build();
            let report = net.serve(&env, 4, &w, &cfg).unwrap();
            (report.reports, env.trace_hash())
        };
        let (r1, h1) = run(3);
        let (r2, h2) = run(3);
        assert_eq!(r1, r2);
        assert_eq!(h1, h2);
        let (_, h3) = run(4);
        assert_ne!(h1, h3);
    }

    #[test]
    fn replay_oracle_matches_scenario_arithmetic() {
        let n = 3;
        let machines = SensorNetwork::sensor_machines(n);
        let mut net = SensorNetwork::new(n, SensorBackupMode::Analytic).unwrap();
        let w = net.random_workload(50, 9);
        for e in &w {
            let i: usize = e.name().trim_start_matches("sensor").parse().unwrap();
            net.observe(i).unwrap();
        }
        for (i, m) in machines.iter().enumerate() {
            assert_eq!(
                replay_oracle(m, &w).index(),
                net.sensor_state(i).unwrap(),
                "sensor {i}"
            );
        }
    }
}
