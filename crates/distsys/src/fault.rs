//! Randomized fault injection plans.
//!
//! A [`FaultPlan`] is a reproducible schedule of faults: "after event `k`,
//! crash (or corrupt) server `s`".  Plans are generated with a seeded RNG so
//! failure-injection tests and benchmarks are repeatable, and they respect a
//! fault budget so the scheduled faults stay within what the system is
//! provisioned to tolerate (or deliberately exceed it, for negative tests).

use fsm_dfsm::StateId;

use crate::env::ServerGroup;
use crate::error::{DistsysError, Result};
use crate::sim::Seeded;
use crate::system::FusedSystem;
use crate::workload::Workload;

/// The kind of fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Crash the server (lose its state).
    Crash,
    /// Move the server to the given state (Byzantine corruption).
    Corrupt(StateId),
    /// Kill the server's *process* (it stops answering entirely, unlike the
    /// modeled crash fault).  Against an in-process [`FusedSystem`], which
    /// has no processes, this degrades to a modeled crash.
    Kill,
    /// Restart the server's killed process from its durable state (WAL +
    /// snapshot).  Only meaningful against durable server groups.
    Restart,
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Inject the fault after this many events of the workload have been
    /// applied.
    pub after_event: usize,
    /// Which server to affect.
    pub server: usize,
    /// What to do to it.
    pub kind: FaultKind,
}

/// A reproducible schedule of faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// The scheduled faults, sorted by `after_event`.
    pub faults: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that crashes `count` distinct servers (chosen with `seed`) at
    /// random points of a `workload_len`-event run.
    ///
    /// Legacy shim over [`Seeded::crash_plan`]; produces the exact plan it
    /// always did for a given seed.
    pub fn random_crashes(
        num_servers: usize,
        count: usize,
        workload_len: usize,
        seed: u64,
    ) -> Self {
        Seeded(seed).crash_plan(num_servers, count, workload_len)
    }

    /// A plan that corrupts `count` distinct servers.  The corrupted state
    /// is chosen as "current state + 1 (mod machine size)" at injection
    /// time, so the placeholder state recorded here is resolved by
    /// [`FaultPlan::execute`].
    ///
    /// Legacy shim over [`Seeded::corruption_plan`].
    pub fn random_corruptions(
        num_servers: usize,
        count: usize,
        workload_len: usize,
        seed: u64,
    ) -> Self {
        Seeded(seed).corruption_plan(num_servers, count, workload_len)
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Runs a workload against a [`FusedSystem`], injecting the scheduled
    /// faults at their positions, and returns how many faults were actually
    /// injected.  Recovery is *not* triggered automatically; callers decide
    /// when to recover (typically at the end, as in the paper's model where
    /// the environment pauses during recovery).
    ///
    /// An in-process system has no processes or durable state, so
    /// [`FaultKind::Kill`] degrades to a modeled crash and
    /// [`FaultKind::Restart`] is skipped (not counted as injected) — plans
    /// that exercise kill/restart belong on server groups via
    /// [`FaultPlan::execute_in`].
    pub fn execute(&self, system: &mut FusedSystem, workload: &Workload) -> usize {
        let mut injected = 0usize;
        let mut next_fault = 0usize;
        // Faults scheduled at position 0 fire before any event.
        let fire = |system: &mut FusedSystem, upto: usize, next_fault: &mut usize| {
            let mut count = 0;
            while *next_fault < self.faults.len() && self.faults[*next_fault].after_event <= upto {
                let f = self.faults[*next_fault];
                match f.kind {
                    FaultKind::Crash | FaultKind::Kill => {
                        let _ = system.crash(f.server);
                    }
                    FaultKind::Corrupt(state) => {
                        if state.index() == usize::MAX {
                            let _ = system.corrupt_differently(f.server);
                        } else {
                            let _ = system.corrupt(f.server, state);
                        }
                    }
                    FaultKind::Restart => {
                        *next_fault += 1;
                        continue;
                    }
                }
                *next_fault += 1;
                count += 1;
            }
            count
        };
        injected += fire(system, 0, &mut next_fault);
        for (i, e) in workload.iter().enumerate() {
            system.apply_event(e);
            injected += fire(system, i + 1, &mut next_fault);
        }
        injected
    }

    /// Runs a workload against an externally spawned [`ServerGroup`]
    /// (threaded or simulated), injecting the scheduled faults at their
    /// positions, and returns how many faults were injected.
    ///
    /// Placeholder corruptions (the "current state + 1" faults of
    /// [`FaultPlan::random_corruptions`]) cannot be resolved here — the
    /// group's servers run remotely, so their current state is unknown at
    /// injection time.  Use [`Seeded::explicit_corruption_plan`] for plans
    /// aimed at server groups; a placeholder fault fails with
    /// [`DistsysError::UnresolvedCorruption`] before anything is sent.
    ///
    /// Kill and restart faults are validated against the plan's own
    /// kill/restart history: a [`FaultKind::Kill`] targeting a server this
    /// plan already took down fails with [`DistsysError::ServerDown`], and a
    /// [`FaultKind::Restart`] targeting a server that is *not* down fails
    /// with [`DistsysError::ServerUp`] — neither is silently skipped, so a
    /// malformed plan surfaces instead of under-injecting.
    pub fn execute_in(&self, group: &mut dyn ServerGroup, workload: &Workload) -> Result<usize> {
        if let Some(f) = self
            .faults
            .iter()
            .find(|f| matches!(f.kind, FaultKind::Corrupt(state) if state.index() == usize::MAX))
        {
            return Err(DistsysError::UnresolvedCorruption { server: f.server });
        }
        let mut injected = 0usize;
        let mut next_fault = 0usize;
        let mut down: Vec<usize> = Vec::new();
        let mut fire = |group: &mut dyn ServerGroup,
                        upto: usize,
                        next_fault: &mut usize,
                        down: &mut Vec<usize>|
         -> Result<()> {
            while *next_fault < self.faults.len() && self.faults[*next_fault].after_event <= upto {
                let f = self.faults[*next_fault];
                match f.kind {
                    FaultKind::Crash => group.crash(f.server),
                    FaultKind::Corrupt(state) => group.corrupt(f.server, state),
                    FaultKind::Kill => {
                        if down.contains(&f.server) {
                            return Err(DistsysError::ServerDown { server: f.server });
                        }
                        group.kill_process(f.server);
                        down.push(f.server);
                    }
                    FaultKind::Restart => {
                        let Some(pos) = down.iter().position(|&s| s == f.server) else {
                            return Err(DistsysError::ServerUp { server: f.server });
                        };
                        group.restart_process(f.server)?;
                        down.swap_remove(pos);
                    }
                }
                *next_fault += 1;
                injected += 1;
            }
            Ok(())
        };
        fire(group, 0, &mut next_fault, &mut down)?;
        for (i, e) in workload.iter().enumerate() {
            group.apply_event(e);
            fire(group, i + 1, &mut next_fault, &mut down)?;
        }
        Ok(injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_fusion_core::FaultModel;
    use fsm_machines::fig1_machines;

    #[test]
    fn random_crash_plan_is_reproducible_and_bounded() {
        let p1 = FaultPlan::random_crashes(5, 2, 100, 9);
        let p2 = FaultPlan::random_crashes(5, 2, 100, 9);
        assert_eq!(p1.faults, p2.faults);
        assert_eq!(p1.len(), 2);
        assert!(!p1.is_empty());
        // Distinct servers.
        assert_ne!(p1.faults[0].server, p1.faults[1].server);
        // Sorted by position.
        assert!(p1.faults[0].after_event <= p1.faults[1].after_event);
    }

    #[test]
    fn empty_plan() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        let mut sys = FusedSystem::new(&fig1_machines(), 1, FaultModel::Crash).unwrap();
        let w = Workload::from_bits("0101");
        assert_eq!(p.execute(&mut sys, &w), 0);
        assert_eq!(sys.metrics().events_processed, 4);
    }

    #[test]
    fn executed_crash_plan_is_recoverable_within_budget() {
        for seed in 0..10u64 {
            let mut sys = FusedSystem::new(&fig1_machines(), 1, FaultModel::Crash).unwrap();
            let w = Workload::uniform_over_machines(&fig1_machines(), 50, seed);
            let plan = FaultPlan::random_crashes(sys.num_servers(), 1, w.len(), seed);
            let injected = plan.execute(&mut sys, &w);
            assert_eq!(injected, 1);
            let outcome = sys.recover().unwrap();
            assert!(outcome.matches_oracle, "seed {seed}");
            assert!(sys.consistent_with_oracle(), "seed {seed}");
        }
    }

    #[test]
    fn executed_corruption_plan_is_recoverable_within_budget() {
        for seed in 0..10u64 {
            let mut sys = FusedSystem::new(&fig1_machines(), 1, FaultModel::Byzantine).unwrap();
            let w = Workload::uniform_over_machines(&fig1_machines(), 50, seed);
            let plan = FaultPlan::random_corruptions(sys.num_servers(), 1, w.len(), seed);
            plan.execute(&mut sys, &w);
            let outcome = sys.recover().unwrap();
            assert!(outcome.matches_oracle, "seed {seed}");
        }
    }

    #[test]
    fn execute_in_surfaces_kill_and_restart_plan_errors() {
        use crate::env::{Environment, GroupConfig};

        let machines = fig1_machines();
        let env = Seeded(7).sim().build();
        let config = GroupConfig::new().durable();
        let w = Workload::from_bits("010101");

        // Regression: a Kill aimed at a server the plan already took down
        // must fail with the typed error, not silently skip the fault.
        let mut group = env.spawn_group(&machines, &config);
        let plan = FaultPlan {
            faults: vec![
                ScheduledFault {
                    after_event: 1,
                    server: 0,
                    kind: FaultKind::Kill,
                },
                ScheduledFault {
                    after_event: 3,
                    server: 0,
                    kind: FaultKind::Kill,
                },
            ],
        };
        assert!(matches!(
            plan.execute_in(&mut *group, &w),
            Err(DistsysError::ServerDown { server: 0 })
        ));

        // …and a Restart aimed at a server that is still up fails likewise.
        let mut group = env.spawn_group(&machines, &config);
        let plan = FaultPlan {
            faults: vec![ScheduledFault {
                after_event: 2,
                server: 1,
                kind: FaultKind::Restart,
            }],
        };
        assert!(matches!(
            plan.execute_in(&mut *group, &w),
            Err(DistsysError::ServerUp { server: 1 })
        ));

        // A well-formed kill → restart pair executes and counts both.
        let mut group = env.spawn_group(&machines, &config);
        let plan = FaultPlan {
            faults: vec![
                ScheduledFault {
                    after_event: 1,
                    server: 0,
                    kind: FaultKind::Kill,
                },
                ScheduledFault {
                    after_event: 2,
                    server: 0,
                    kind: FaultKind::Restart,
                },
            ],
        };
        assert_eq!(plan.execute_in(&mut *group, &w).unwrap(), 2);
    }

    #[test]
    fn execute_degrades_kill_to_crash_and_skips_restart_in_process() {
        let mut sys = FusedSystem::new(&fig1_machines(), 1, FaultModel::Crash).unwrap();
        let w = Workload::from_bits("0101");
        let plan = FaultPlan {
            faults: vec![
                ScheduledFault {
                    after_event: 1,
                    server: 0,
                    kind: FaultKind::Kill,
                },
                ScheduledFault {
                    after_event: 2,
                    server: 0,
                    kind: FaultKind::Restart,
                },
            ],
        };
        // Kill counts as an injected (modeled) crash; Restart is skipped.
        assert_eq!(plan.execute(&mut sys, &w), 1);
        assert_eq!(sys.metrics().crashes_injected, 1);
        let outcome = sys.recover().unwrap();
        assert!(outcome.matches_oracle);
    }

    #[test]
    fn corruption_with_explicit_state() {
        let mut sys = FusedSystem::new(&fig1_machines(), 1, FaultModel::Byzantine).unwrap();
        let w = Workload::from_bits("0011");
        let plan = FaultPlan {
            faults: vec![ScheduledFault {
                after_event: 2,
                server: 0,
                kind: FaultKind::Corrupt(StateId(0)),
            }],
        };
        plan.execute(&mut sys, &w);
        // The corrupted server kept executing from state 0 for the last two
        // events; recovery still reconstructs the truth.
        let outcome = sys.recover().unwrap();
        assert!(outcome.matches_oracle);
    }
}
