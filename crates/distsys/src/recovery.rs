//! Crash-recovery for servers: the durable wrapper that writes a WAL entry
//! before acknowledging each event, snapshots periodically, and can rebuild
//! itself from storage after a process death.
//!
//! The protocol in one paragraph: every event is appended to the server's
//! write-ahead log *before* it is applied (append-before-ack), so the set
//! of acknowledged events is exactly the set of valid log frames beyond the
//! last snapshot.  Every `snapshot_every` events a `[seq, state]` snapshot
//! is written atomically and the log is compacted.  [`DurableServer::recover`]
//! loads the latest valid snapshot, replays the log suffix, and drops a
//! torn final frame (which, by append-before-ack, was never acknowledged).
//! When the local log is *behind* the group, [`RejoinPath::choose`] decides
//! between replaying the missed events and decoding the current state from
//! live peers' reports via Algorithm 3 — peer decode wins for large gaps.

use fsm_dfsm::{Dfsm, Event, StateId};

use crate::error::{DistsysError, Result};
use crate::server::Server;
use crate::snapshot::{self, snapshot_name};
use crate::storage::SharedStore;
use crate::wal::{self, wal_name};

/// Durability knobs for a server group.
///
/// Resolution order for each knob: explicit builder value, then the
/// environment (`FSM_DISTSYS_SNAPSHOT_EVERY`), then the default.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Snapshot (and compact the log) after this many acknowledged events.
    /// `None` means "resolve from the environment or default".
    pub snapshot_every: Option<u64>,
}

impl DurabilityConfig {
    /// Default snapshot interval when neither the builder nor the
    /// environment specifies one.
    pub const DEFAULT_SNAPSHOT_EVERY: u64 = 32;

    /// A config with every knob left to resolve from the environment.
    pub fn new() -> Self {
        DurabilityConfig::default()
    }

    /// Sets an explicit snapshot interval (clamped to at least 1).
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = Some(every.max(1));
        self
    }

    /// Resolution against explicit environment values — the pure core of
    /// [`DurabilityConfig::resolved_snapshot_every`], testable without
    /// touching the process environment.
    pub fn resolved_snapshot_every_from(&self, env_value: Option<u64>) -> u64 {
        self.snapshot_every
            .or(env_value)
            .unwrap_or(Self::DEFAULT_SNAPSHOT_EVERY)
            .max(1)
    }

    /// The effective snapshot interval: explicit value, else
    /// `FSM_DISTSYS_SNAPSHOT_EVERY`, else
    /// [`DurabilityConfig::DEFAULT_SNAPSHOT_EVERY`].
    pub fn resolved_snapshot_every(&self) -> u64 {
        let env_value = std::env::var("FSM_DISTSYS_SNAPSHOT_EVERY")
            .ok()
            .and_then(|v| v.trim().parse().ok());
        self.resolved_snapshot_every_from(env_value)
    }
}

/// What [`DurableServer::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Sequence number the loaded snapshot covered (0 if none existed).
    pub snapshot_seq: u64,
    /// Log entries replayed beyond the snapshot.
    pub frames_replayed: usize,
    /// Log entries at or below the snapshot sequence, skipped.
    pub stale_frames: usize,
    /// Bytes of torn (unacknowledged) log tail dropped.
    pub torn_tail_bytes: usize,
    /// Highest acknowledged sequence number after recovery.
    pub acked_seq: u64,
    /// Execution state after recovery.
    pub state: StateId,
}

/// How a rejoining server catches up to the group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejoinPath {
    /// Local durable state already matches the group — nothing to do.
    Current,
    /// Replay the `gap` missed events from the group's stream.
    Replay {
        /// Events the local log is behind by.
        gap: u64,
    },
    /// Decode the current state from live peers' reports (Algorithm 3) —
    /// cheaper than replaying a long stream.
    PeerDecode {
        /// Events the local log is behind by.
        gap: u64,
    },
}

/// Gap above which peer decode beats replay.  Replay costs one transition
/// per missed event; a peer decode costs one report round plus one
/// Algorithm-3 pass, which is roughly this many transitions' worth of work
/// in the simulator's cost model.
pub const REPLAY_CUTOVER: u64 = 16;

impl RejoinPath {
    /// Chooses the cheaper catch-up path given the local and group
    /// sequence numbers.
    pub fn choose(local_acked: u64, group_seq: u64) -> RejoinPath {
        let gap = group_seq.saturating_sub(local_acked);
        if gap == 0 {
            RejoinPath::Current
        } else if gap <= REPLAY_CUTOVER {
            RejoinPath::Replay { gap }
        } else {
            RejoinPath::PeerDecode { gap }
        }
    }
}

/// A [`Server`] wrapped with durable state: WAL + snapshots in a
/// [`SharedStore`].
pub struct DurableServer {
    server: Server,
    store: SharedStore,
    id: String,
    snapshot_every: u64,
    acked_seq: u64,
    since_snapshot: u64,
}

impl DurableServer {
    /// A brand-new durable server: wipes any leftover durable state under
    /// `id` and starts the machine from its initial state.
    pub fn fresh(
        machine: Dfsm,
        store: SharedStore,
        id: impl Into<String>,
        config: &DurabilityConfig,
    ) -> Result<Self> {
        let id = id.into();
        crate::storage::with_store(&store, |s| {
            s.remove(&wal_name(&id))?;
            s.remove(&snapshot_name(&id))
        })?;
        Ok(DurableServer {
            server: Server::new(machine),
            store,
            id,
            snapshot_every: config.resolved_snapshot_every(),
            acked_seq: 0,
            since_snapshot: 0,
        })
    }

    /// Rebuilds a durable server from storage: latest valid snapshot, then
    /// the log suffix, dropping a torn tail.  The returned server is
    /// healthy and ready to rejoin.
    pub fn recover(
        machine: Dfsm,
        store: SharedStore,
        id: impl Into<String>,
        config: &DurabilityConfig,
    ) -> Result<(Self, ReplayStats)> {
        let id = id.into();
        let snap_name = snapshot_name(&id);
        let log_name = wal_name(&id);
        let mut server = Server::new(machine);
        let mut snapshot_seq = 0u64;
        if let Some(words) = snapshot::load_words(&store, &snap_name)? {
            if words.len() != 2 {
                return Err(DistsysError::Storage {
                    message: format!(
                        "snapshot {snap_name}: expected 2 words, found {}",
                        words.len()
                    ),
                });
            }
            let state = words[1] as usize;
            if state >= server.machine().size() {
                return Err(DistsysError::Storage {
                    message: format!("snapshot {snap_name}: state {state} out of range"),
                });
            }
            snapshot_seq = words[0];
            server.restore(StateId(state));
        }
        let scan = wal::read(&store, &log_name)?;
        let mut acked_seq = snapshot_seq;
        let mut frames_replayed = 0usize;
        let mut stale_frames = 0usize;
        for entry in &scan.entries {
            if entry.seq <= snapshot_seq {
                stale_frames += 1;
                continue;
            }
            if entry.seq != acked_seq + 1 {
                return Err(wal::corrupt(
                    &log_name,
                    format!(
                        "sequence gap: expected {}, found {}",
                        acked_seq + 1,
                        entry.seq
                    ),
                ));
            }
            server.apply(&entry.event);
            acked_seq = entry.seq;
            frames_replayed += 1;
        }
        let stats = ReplayStats {
            snapshot_seq,
            frames_replayed,
            stale_frames,
            torn_tail_bytes: scan.torn_tail_bytes,
            acked_seq,
            state: server.current_state(),
        };
        // A recovered tail may leave torn bytes on storage; rewrite the log
        // to its valid prefix so a later append starts clean.
        if scan.torn_tail_bytes > 0 {
            wal::truncate(&store, &log_name, scan.valid_len)?;
        }
        Ok((
            DurableServer {
                server,
                store,
                id,
                snapshot_every: config.resolved_snapshot_every(),
                acked_seq,
                since_snapshot: acked_seq.saturating_sub(snapshot_seq),
            },
            stats,
        ))
    }

    /// The durable id (WAL and snapshot blob prefix).
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Highest acknowledged (logged-then-applied) sequence number.
    pub fn acked_seq(&self) -> u64 {
        self.acked_seq
    }

    /// The wrapped server.
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// Mutable access to the wrapped server, for fault injection paths that
    /// do not touch durable state (crash, corrupt, restore).
    pub fn server_mut(&mut self) -> &mut Server {
        &mut self.server
    }

    /// Unwraps into the plain server.
    pub fn into_server(self) -> Server {
        self.server
    }

    /// Logs then applies one event (append-before-ack).  On return the
    /// event is both durable and applied; a crash at any earlier point
    /// loses only this unacknowledged event.
    pub fn apply(&mut self, event: &Event) -> Result<()> {
        wal::append(&self.store, &wal_name(&self.id), self.acked_seq + 1, event)?;
        self.server.apply(event);
        self.acked_seq += 1;
        self.since_snapshot += 1;
        if self.since_snapshot >= self.snapshot_every
            && self.server.status() == crate::server::ServerStatus::Healthy
        {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Writes a `[seq, state]` snapshot and compacts the log.  Only valid
    /// while healthy (a crashed or Byzantine state must never be made
    /// durable).
    pub fn snapshot(&mut self) -> Result<()> {
        snapshot::save_words(
            &self.store,
            &snapshot_name(&self.id),
            &[self.acked_seq, self.server.current_state().index() as u64],
        )?;
        wal::truncate(&self.store, &wal_name(&self.id), 0)?;
        self.since_snapshot = 0;
        Ok(())
    }

    /// Adopts a peer-decoded state at the group's sequence number: restores
    /// the server, snapshots at `seq`, and compacts.  Afterwards the local
    /// sequence number equals the group's — it never regresses.
    pub fn resync(&mut self, seq: u64, state: StateId) -> Result<()> {
        self.server.restore(state);
        self.acked_seq = seq;
        self.snapshot()
    }
}

impl std::fmt::Debug for DurableServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableServer")
            .field("id", &self.id)
            .field("acked_seq", &self.acked_seq)
            .field("snapshot_every", &self.snapshot_every)
            .field("server", &self.server)
            .finish_non_exhaustive()
    }
}

/// A server slot that may or may not carry durable state — what the
/// threaded and simulated runners actually host.
#[derive(Debug)]
pub(crate) enum ProcessServer {
    /// A plain in-memory server (no durability configured).
    Plain(Server),
    /// A durable server with WAL + snapshots.
    Durable(DurableServer),
}

impl ProcessServer {
    pub(crate) fn is_durable(&self) -> bool {
        matches!(self, ProcessServer::Durable(_))
    }

    pub(crate) fn server(&self) -> &Server {
        match self {
            ProcessServer::Plain(s) => s,
            ProcessServer::Durable(d) => d.server(),
        }
    }

    pub(crate) fn server_mut(&mut self) -> &mut Server {
        match self {
            ProcessServer::Plain(s) => s,
            ProcessServer::Durable(d) => d.server_mut(),
        }
    }

    pub(crate) fn into_server(self) -> Server {
        match self {
            ProcessServer::Plain(s) => s,
            ProcessServer::Durable(d) => d.into_server(),
        }
    }

    /// Applies an event, logging first when durable.  Storage failure here
    /// is unrecoverable for the hosting process (the event can be neither
    /// acknowledged nor dropped), so it panics like a real fsync failure
    /// would abort a database process.
    pub(crate) fn apply(&mut self, event: &Event) {
        match self {
            ProcessServer::Plain(s) => s.apply(event),
            ProcessServer::Durable(d) => d
                .apply(event)
                .expect("WAL append failed; cannot acknowledge event"),
        }
    }

    pub(crate) fn resync(&mut self, seq: u64, state: StateId) -> Result<()> {
        match self {
            ProcessServer::Plain(_) => Err(DistsysError::NotDurable { server: 0 }),
            ProcessServer::Durable(d) => d.resync(seq, state),
        }
    }

    pub(crate) fn durable_id(&self) -> Option<&str> {
        match self {
            ProcessServer::Plain(_) => None,
            ProcessServer::Durable(d) => Some(d.id()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{shared, with_store, MemStore};
    use fsm_machines::{mod_counter, toggle_switch};

    fn ev(s: &str) -> Event {
        Event::new(s)
    }

    fn counter3() -> Dfsm {
        mod_counter("Count3", 3, "1", &["0", "1"])
    }

    fn cfg(every: u64) -> DurabilityConfig {
        DurabilityConfig::new().snapshot_every(every)
    }

    #[test]
    fn config_resolution_order() {
        let c = DurabilityConfig::new();
        assert_eq!(
            c.resolved_snapshot_every_from(None),
            DurabilityConfig::DEFAULT_SNAPSHOT_EVERY
        );
        assert_eq!(c.resolved_snapshot_every_from(Some(7)), 7);
        let c = c.snapshot_every(5);
        assert_eq!(c.resolved_snapshot_every_from(Some(7)), 5);
        // Zero clamps to 1 everywhere.
        assert_eq!(cfg(0).resolved_snapshot_every_from(None), 1);
        assert_eq!(
            DurabilityConfig::new().resolved_snapshot_every_from(Some(0)),
            1
        );
    }

    #[test]
    fn rejoin_path_chooser() {
        assert_eq!(RejoinPath::choose(10, 10), RejoinPath::Current);
        assert_eq!(RejoinPath::choose(12, 10), RejoinPath::Current);
        assert_eq!(RejoinPath::choose(5, 10), RejoinPath::Replay { gap: 5 });
        assert_eq!(
            RejoinPath::choose(0, REPLAY_CUTOVER),
            RejoinPath::Replay {
                gap: REPLAY_CUTOVER
            }
        );
        assert_eq!(
            RejoinPath::choose(0, REPLAY_CUTOVER + 1),
            RejoinPath::PeerDecode {
                gap: REPLAY_CUTOVER + 1
            }
        );
    }

    #[test]
    fn crash_recover_resume_matches_uninterrupted() {
        let store = shared(MemStore::new());
        let events: Vec<Event> = ["1", "0", "1", "1", "0", "1", "1", "1"]
            .iter()
            .map(|s| ev(s))
            .collect();
        // Uninterrupted reference.
        let mut reference = Server::new(counter3());
        for e in &events {
            reference.apply(e);
        }
        // Durable run killed after 5 events, recovered, resumed.
        let mut d = DurableServer::fresh(counter3(), store.clone(), "s0", &cfg(3)).unwrap();
        for e in &events[..5] {
            d.apply(e).unwrap();
        }
        drop(d); // process death: only storage survives
        let (mut d, stats) =
            DurableServer::recover(counter3(), store.clone(), "s0", &cfg(3)).unwrap();
        assert_eq!(stats.acked_seq, 5);
        assert_eq!(stats.torn_tail_bytes, 0);
        // Snapshot fired at event 3, so only events 4..5 replayed.
        assert_eq!(stats.snapshot_seq, 3);
        assert_eq!(stats.frames_replayed, 2);
        for e in &events[5..] {
            d.apply(e).unwrap();
        }
        assert_eq!(d.server().current_state(), reference.current_state());
        assert_eq!(d.acked_seq(), events.len() as u64);
    }

    #[test]
    fn torn_final_frame_is_dropped_and_log_repaired() {
        let store = shared(MemStore::new());
        let mut d = DurableServer::fresh(toggle_switch(), store.clone(), "s1", &cfg(100)).unwrap();
        for _ in 0..4 {
            d.apply(&ev("1")).unwrap();
        }
        drop(d);
        // Tear the final frame: chop 3 bytes off the log.
        with_store(&store, |s| {
            let bytes = s.read("s1.wal")?.unwrap();
            s.write_atomic("s1.wal", &bytes[..bytes.len() - 3])
        })
        .unwrap();
        let (d, stats) =
            DurableServer::recover(toggle_switch(), store.clone(), "s1", &cfg(100)).unwrap();
        // The torn 4th event was never acknowledged under this failure
        // model; the 3 complete frames replay.
        assert_eq!(stats.acked_seq, 3);
        assert_eq!(stats.frames_replayed, 3);
        assert!(stats.torn_tail_bytes > 0);
        assert_eq!(d.server().current_state(), StateId(1)); // 3 toggles
                                                            // Recovery repaired the log: a second recover sees no torn tail.
        drop(d);
        let (_, stats2) = DurableServer::recover(toggle_switch(), store, "s1", &cfg(100)).unwrap();
        assert_eq!(stats2.torn_tail_bytes, 0);
        assert_eq!(stats2.acked_seq, 3);
    }

    #[test]
    fn sequence_gap_is_a_hard_error() {
        let store = shared(MemStore::new());
        // Frames 1 and 3 with no 2: scan stops at the non-contiguous frame,
        // treating it as a torn tail, so recovery sees only frame 1... make
        // the gap survive the scan by making seqs increase: 1 then 3.
        let mut bytes = crate::wal::encode_frame(1, b"1");
        bytes.extend_from_slice(&crate::wal::encode_frame(3, b"1"));
        with_store(&store, |s| s.write_atomic("s2.wal", &bytes)).unwrap();
        let err = DurableServer::recover(toggle_switch(), store, "s2", &cfg(8)).unwrap_err();
        assert!(matches!(err, DistsysError::Storage { .. }));
        assert!(err.to_string().contains("sequence gap"));
    }

    #[test]
    fn resync_snapshots_at_group_seq() {
        let store = shared(MemStore::new());
        let mut d = DurableServer::fresh(toggle_switch(), store.clone(), "s3", &cfg(100)).unwrap();
        d.apply(&ev("1")).unwrap();
        d.server_mut().crash();
        // Peer decode said: at group seq 40 the state is 0.
        d.resync(40, StateId(0)).unwrap();
        assert_eq!(d.acked_seq(), 40);
        drop(d);
        let (d, stats) = DurableServer::recover(toggle_switch(), store, "s3", &cfg(100)).unwrap();
        // Sequence numbers never regress across the resync + recover.
        assert_eq!(stats.snapshot_seq, 40);
        assert_eq!(stats.frames_replayed, 0);
        assert_eq!(d.acked_seq(), 40);
        assert_eq!(d.server().current_state(), StateId(0));
    }

    #[test]
    fn fresh_wipes_previous_incarnation() {
        let store = shared(MemStore::new());
        let mut d = DurableServer::fresh(toggle_switch(), store.clone(), "s4", &cfg(2)).unwrap();
        for _ in 0..5 {
            d.apply(&ev("1")).unwrap();
        }
        drop(d);
        let d = DurableServer::fresh(toggle_switch(), store.clone(), "s4", &cfg(2)).unwrap();
        assert_eq!(d.acked_seq(), 0);
        drop(d);
        let (_, stats) = DurableServer::recover(toggle_switch(), store, "s4", &cfg(2)).unwrap();
        assert_eq!(stats.acked_seq, 0);
        assert_eq!(stats.snapshot_seq, 0);
    }

    #[test]
    fn process_server_delegates() {
        let store = shared(MemStore::new());
        let mut plain = ProcessServer::Plain(Server::new(toggle_switch()));
        plain.apply(&ev("1"));
        assert_eq!(plain.server().current_state(), StateId(1));
        assert!(!plain.is_durable());
        assert_eq!(plain.durable_id(), None);
        assert!(plain.resync(1, StateId(0)).is_err());
        let durable = DurableServer::fresh(toggle_switch(), store, "s5", &cfg(8)).unwrap();
        let mut durable = ProcessServer::Durable(durable);
        durable.apply(&ev("1"));
        assert!(durable.is_durable());
        assert_eq!(durable.durable_id(), Some("s5"));
        assert!(durable.resync(9, StateId(0)).is_ok());
        assert_eq!(durable.into_server().current_state(), StateId(0));
    }
}
