//! Forces `PageArena`'s spill path to fail and pins the degraded behavior:
//! pages that should have spilled stay resident, the failures are counted
//! in `spill_fallbacks`, and `into_rows` output is bit-identical to a
//! healthy arena's.
//!
//! The spill file is created in `std::env::temp_dir()`, which honours
//! `TMPDIR` on unix — so this lives in its own integration-test binary
//! (its own process) where repointing `TMPDIR` at a nonexistent directory
//! cannot race other tests.

use fsm_dfsm::PageArena;

#[test]
fn unwritable_temp_dir_degrades_to_resident_pages() {
    // Nonexistent directory: the spill file's `create_new` must fail.
    std::env::set_var(
        "TMPDIR",
        format!("/nonexistent-fsm-fusion-spill-{}", std::process::id()),
    );

    // A budget this small keeps one sealed page resident and would spill
    // the other nine.
    let total = 2560u32;
    let mut broken = PageArena::with_budget(2 * 1024);
    for v in 0..total {
        broken.push(v);
    }
    assert_eq!(broken.spilled_pages(), 0, "spilling cannot have succeeded");
    assert_eq!(broken.spilled_bytes(), 0);
    assert!(
        broken.spill_fallbacks() > 0,
        "failed spills must be counted"
    );
    assert_eq!(broken.len(), total as usize);

    // The degraded arena still produces the exact rows — the budget turned
    // advisory, not lossy.
    let rows = broken.into_rows(4).unwrap();
    assert_eq!(rows.len(), total as usize / 4);
    for (r, row) in rows.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            assert_eq!(v as usize, r * 4 + c);
        }
    }

    // Bit-identical to a healthy all-resident arena over the same pushes.
    let mut healthy = PageArena::with_budget(64 << 20);
    for v in 0..total {
        healthy.push(v);
    }
    assert_eq!(healthy.spill_fallbacks(), 0);
    assert_eq!(healthy.into_rows(4).unwrap(), rows);
}
