//! Execution state for a DFSM.
//!
//! The paper separates the (immutable) machine description from its
//! *execution state*, which is what crash faults lose and Byzantine faults
//! corrupt.  [`Executor`] is the minimal owner of that execution state; the
//! `fsm-distsys` crate builds fault-injectable servers on top of it.

use crate::dfsm::Dfsm;
use crate::event::Event;
use crate::state::StateId;

/// A running instance of a [`Dfsm`]: the machine plus a current state and an
/// optional trace of every state visited.
#[derive(Debug, Clone)]
pub struct Executor {
    machine: Dfsm,
    current: StateId,
    events_applied: usize,
    trace: Option<Vec<StateId>>,
}

impl Executor {
    /// Starts an executor in the machine's initial state.
    pub fn new(machine: Dfsm) -> Self {
        let current = machine.initial();
        Executor {
            machine,
            current,
            events_applied: 0,
            trace: None,
        }
    }

    /// Starts an executor that records every state it visits.
    pub fn with_trace(machine: Dfsm) -> Self {
        let mut e = Self::new(machine);
        e.trace = Some(vec![e.current]);
        e
    }

    /// The machine being executed.
    pub fn machine(&self) -> &Dfsm {
        &self.machine
    }

    /// The current state.
    pub fn current(&self) -> StateId {
        self.current
    }

    /// The name of the current state.
    pub fn current_name(&self) -> &str {
        self.machine.state_name(self.current)
    }

    /// How many events have been applied (including ignored ones).
    pub fn events_applied(&self) -> usize {
        self.events_applied
    }

    /// Applies a single event (events outside the alphabet are ignored) and
    /// returns the new current state.
    pub fn apply(&mut self, event: &Event) -> StateId {
        self.current = self.machine.apply_event(self.current, event);
        self.events_applied += 1;
        if let Some(t) = &mut self.trace {
            t.push(self.current);
        }
        self.current
    }

    /// Applies a sequence of events.
    pub fn apply_all<'a, I: IntoIterator<Item = &'a Event>>(&mut self, events: I) -> StateId {
        for e in events {
            self.apply(e);
        }
        self.current
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[StateId]> {
        self.trace.as_deref()
    }

    /// Forces the current state (used to model Byzantine corruption and to
    /// restore a recovered state).
    pub fn set_state(&mut self, state: StateId) {
        self.current = state;
        if let Some(t) = &mut self.trace {
            t.push(state);
        }
    }

    /// Resets to the initial state and clears the trace and counters.
    pub fn reset(&mut self) {
        self.current = self.machine.initial();
        self.events_applied = 0;
        if let Some(t) = &mut self.trace {
            t.clear();
            t.push(self.current);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsmBuilder;

    fn toggle() -> Dfsm {
        let mut b = DfsmBuilder::new("toggle");
        b.add_states(["off", "on"]);
        b.set_initial("off");
        b.add_transition("off", "press", "on");
        b.add_transition("on", "press", "off");
        b.build().unwrap()
    }

    #[test]
    fn executor_applies_events() {
        let mut ex = Executor::new(toggle());
        assert_eq!(ex.current_name(), "off");
        ex.apply(&Event::new("press"));
        assert_eq!(ex.current_name(), "on");
        ex.apply(&Event::new("unknown"));
        assert_eq!(ex.current_name(), "on");
        assert_eq!(ex.events_applied(), 2);
    }

    #[test]
    fn executor_trace_records_states() {
        let mut ex = Executor::with_trace(toggle());
        let press = Event::new("press");
        ex.apply_all([&press, &press, &press]);
        assert_eq!(
            ex.trace().unwrap(),
            &[StateId(0), StateId(1), StateId(0), StateId(1)]
        );
    }

    #[test]
    fn set_state_and_reset() {
        let mut ex = Executor::new(toggle());
        ex.set_state(StateId(1));
        assert_eq!(ex.current(), StateId(1));
        ex.reset();
        assert_eq!(ex.current(), StateId(0));
        assert_eq!(ex.events_applied(), 0);
    }
}
