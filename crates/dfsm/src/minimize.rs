//! Moore-style state minimization by partition refinement.
//!
//! The paper assumes its input machines are "reduced a priori" using
//! classical DFSM minimization (Huffman / Hopcroft, Section 1).  For
//! machines without outputs every state is behaviourally equivalent, so
//! minimization is only meaningful with respect to an observation: either
//! the per-state output labels carried by [`StateInfo`]
//! (`fsm_dfsm::StateInfo::output`) or an arbitrary labelling supplied by the
//! caller.
//!
//! The algorithm is the standard iterative partition refinement (Moore's
//! algorithm): start from the partition induced by the labels and split
//! blocks until every block is closed under "successors land in equal
//! blocks" for every event.  Complexity is `O(|X|² · |Σ|)` in this simple
//! formulation, which is ample for the machine sizes in the paper.

use std::collections::HashMap;

use crate::dfsm::Dfsm;
use crate::error::Result;
use crate::state::{StateId, StateInfo};

/// The result of minimizing a machine: the quotient machine plus the map
/// from original states to quotient states.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The reduced machine.
    pub machine: Dfsm,
    /// `class_of[s]` is the quotient state for original state `s`.
    pub class_of: Vec<StateId>,
}

/// Minimizes `machine` with respect to its per-state output labels (states
/// with no output are all given the same implicit label).
pub fn minimize_by_output(machine: &Dfsm) -> Result<Minimized> {
    let labels: Vec<String> = machine
        .states()
        .iter()
        .map(|s| s.output.clone().unwrap_or_default())
        .collect();
    minimize_by_labels(machine, &labels)
}

/// Minimizes `machine` with respect to an arbitrary labelling of its states
/// (two states can only be merged if they carry equal labels and are
/// bisimilar under the transition function).
pub fn minimize_by_labels<L: Eq + std::hash::Hash + Clone>(
    machine: &Dfsm,
    labels: &[L],
) -> Result<Minimized> {
    assert_eq!(
        labels.len(),
        machine.size(),
        "one label per state is required"
    );
    let n = machine.size();
    let k = machine.alphabet().len();

    // Initial partition: by label.
    let mut class: Vec<usize> = Vec::with_capacity(n);
    {
        let mut seen: HashMap<&L, usize> = HashMap::new();
        for label in labels {
            let next = seen.len();
            let c = *seen.entry(label).or_insert(next);
            class.push(c);
        }
    }

    // Refine until stable: two states stay together iff they carry the same
    // class and, for every event, their successors are in the same class.
    let mut class = relabel_canonical(&class);
    loop {
        let mut signature_to_class: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut new_class = vec![0usize; n];
        for s in 0..n {
            let sig: Vec<usize> = (0..k)
                .map(|e| class[machine.next(StateId(s), crate::event::EventId(e)).index()])
                .collect();
            let key = (class[s], sig);
            let next = signature_to_class.len();
            let c = *signature_to_class.entry(key).or_insert(next);
            new_class[s] = c;
        }
        let new_class = relabel_canonical(&new_class);
        let done = new_class == class;
        class = new_class;
        if done {
            break;
        }
    }
    let num_classes = class.iter().copied().max().map_or(0, |m| m + 1);

    // Build the quotient machine.
    let mut representative = vec![usize::MAX; num_classes];
    for (s, &c) in class.iter().enumerate() {
        if representative[c] == usize::MAX {
            representative[c] = s;
        }
    }
    let states: Vec<StateInfo> = (0..num_classes)
        .map(|c| {
            let members: Vec<&str> = (0..n)
                .filter(|&s| class[s] == c)
                .map(|s| machine.state_name(StateId(s)))
                .collect();
            let rep = representative[c];
            StateInfo {
                name: if members.len() == 1 {
                    members[0].to_string()
                } else {
                    format!("{{{}}}", members.join(","))
                },
                output: machine.states()[rep].output.clone(),
            }
        })
        .collect();
    let transitions: Vec<Vec<StateId>> = (0..num_classes)
        .map(|c| {
            let rep = StateId(representative[c]);
            (0..k)
                .map(|e| StateId(class[machine.next(rep, crate::event::EventId(e)).index()]))
                .collect()
        })
        .collect();
    let initial = StateId(class[machine.initial().index()]);
    let quotient = Dfsm::from_parts(
        format!("{}_min", machine.name()),
        states,
        machine.alphabet().clone(),
        transitions,
        initial,
    )?;
    Ok(Minimized {
        machine: quotient,
        class_of: class.into_iter().map(StateId).collect(),
    })
}

/// Renumbers classes by order of first occurrence, producing a canonical
/// labelling.
fn relabel_canonical(class: &[usize]) -> Vec<usize> {
    let mut map: HashMap<usize, usize> = HashMap::new();
    let mut out = Vec::with_capacity(class.len());
    for &c in class {
        let next = map.len();
        out.push(*map.entry(c).or_insert(next));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsmBuilder;
    use crate::event::Event;

    /// A redundant parity checker: four states but only two distinguishable
    /// classes (even / odd number of 1s).
    fn redundant_parity() -> Dfsm {
        let mut b = DfsmBuilder::new("parity4");
        b.add_state_with_output("e0", "even");
        b.add_state_with_output("o0", "odd");
        b.add_state_with_output("e1", "even");
        b.add_state_with_output("o1", "odd");
        b.set_initial("e0");
        // 1 flips parity, 0 keeps it, but the machine wanders between the
        // redundant copies.
        b.add_transition("e0", "1", "o0");
        b.add_transition("o0", "1", "e1");
        b.add_transition("e1", "1", "o1");
        b.add_transition("o1", "1", "e0");
        b.add_transition("e0", "0", "e1");
        b.add_transition("e1", "0", "e0");
        b.add_transition("o0", "0", "o1");
        b.add_transition("o1", "0", "o0");
        b.build().unwrap()
    }

    #[test]
    fn minimize_collapses_redundant_states() {
        let m = redundant_parity();
        let min = minimize_by_output(&m).unwrap();
        assert_eq!(min.machine.size(), 2);
        // Behaviour is preserved: parity of 1s in any word.
        let words: Vec<Vec<Event>> = vec![
            vec![],
            vec![Event::new("1")],
            vec![Event::new("1"), Event::new("0"), Event::new("1")],
            vec![
                Event::new("0"),
                Event::new("1"),
                Event::new("1"),
                Event::new("1"),
            ],
        ];
        for w in words {
            let orig = m.run(w.iter());
            let red = min.machine.run(w.iter());
            assert_eq!(
                m.states()[orig.index()].output,
                min.machine.states()[red.index()].output,
                "word {w:?}"
            );
        }
    }

    #[test]
    fn class_of_maps_every_state() {
        let m = redundant_parity();
        let min = minimize_by_output(&m).unwrap();
        assert_eq!(min.class_of.len(), 4);
        for &c in &min.class_of {
            assert!(c.index() < min.machine.size());
        }
        // e0 and e1 must be merged, o0 and o1 must be merged.
        assert_eq!(min.class_of[0], min.class_of[2]);
        assert_eq!(min.class_of[1], min.class_of[3]);
        assert_ne!(min.class_of[0], min.class_of[1]);
    }

    #[test]
    fn machine_without_outputs_collapses_to_one_state() {
        let mut b = DfsmBuilder::new("blind");
        b.add_states(["a", "b", "c"]);
        b.set_initial("a");
        b.add_transition("a", "e", "b");
        b.add_transition("b", "e", "c");
        b.add_transition("c", "e", "a");
        let m = b.build().unwrap();
        let min = minimize_by_output(&m).unwrap();
        assert_eq!(min.machine.size(), 1);
    }

    #[test]
    fn minimize_with_distinct_labels_is_identity_sized() {
        let m = redundant_parity();
        let labels: Vec<usize> = (0..m.size()).collect();
        let min = minimize_by_labels(&m, &labels).unwrap();
        assert_eq!(min.machine.size(), m.size());
    }

    #[test]
    fn already_minimal_machine_is_unchanged_in_size() {
        let mut b = DfsmBuilder::new("mod3");
        b.add_state_with_output("c0", "0");
        b.add_state_with_output("c1", "1");
        b.add_state_with_output("c2", "2");
        b.set_initial("c0");
        for (i, j) in [(0, 1), (1, 2), (2, 0)] {
            b.add_transition(format!("c{i}"), "t", format!("c{j}"));
        }
        let m = b.build().unwrap();
        let min = minimize_by_output(&m).unwrap();
        assert_eq!(min.machine.size(), 3);
    }
}
