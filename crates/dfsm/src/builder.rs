//! Builder for [`Dfsm`] values.

use std::collections::BTreeMap;

use crate::dfsm::Dfsm;
use crate::error::{DfsmError, Result};
use crate::event::{Alphabet, Event};
use crate::state::{StateId, StateInfo};

/// Incremental builder for a [`Dfsm`].
///
/// Typical usage:
///
/// ```
/// use fsm_dfsm::DfsmBuilder;
///
/// let mut b = DfsmBuilder::new("toggle");
/// b.add_states(["off", "on"]);
/// b.set_initial("off");
/// b.add_transition("off", "press", "on");
/// b.add_transition("on", "press", "off");
/// let m = b.build().unwrap();
/// assert_eq!(m.size(), 2);
/// ```
///
/// The builder checks that:
///
/// * state names are unique,
/// * exactly one initial state is declared,
/// * no conflicting transitions are declared,
/// * the transition function is total over the declared alphabet
///   (missing transitions are either rejected or completed as self-loops,
///   depending on [`DfsmBuilder::complete_missing_with_self_loops`]).
#[derive(Debug, Clone)]
pub struct DfsmBuilder {
    name: String,
    states: Vec<StateInfo>,
    state_index: BTreeMap<String, StateId>,
    alphabet: Alphabet,
    /// (state, event) -> target
    transitions: BTreeMap<(usize, usize), StateId>,
    initial: Option<StateId>,
    self_loop_completion: bool,
    errors: Vec<DfsmError>,
}

impl DfsmBuilder {
    /// Creates a builder for a machine with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DfsmBuilder {
            name: name.into(),
            states: Vec::new(),
            state_index: BTreeMap::new(),
            alphabet: Alphabet::new(),
            transitions: BTreeMap::new(),
            initial: None,
            self_loop_completion: false,
            errors: Vec::new(),
        }
    }

    /// When enabled, any `(state, event)` pair without an explicit
    /// transition is completed as a self-loop at build time instead of
    /// being reported as an error.  This is convenient for protocol
    /// machines (MESI, TCP) where most events leave most states unchanged.
    pub fn complete_missing_with_self_loops(&mut self) -> &mut Self {
        self.self_loop_completion = true;
        self
    }

    /// Adds a state with the given name.  Returns its id.
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        self.add_state_info(StateInfo::named(name))
    }

    /// Adds a state with an output label (used by Moore-style minimization).
    pub fn add_state_with_output(
        &mut self,
        name: impl Into<String>,
        output: impl Into<String>,
    ) -> StateId {
        self.add_state_info(StateInfo::with_output(name, output))
    }

    /// Adds a state from full metadata.
    pub fn add_state_info(&mut self, info: StateInfo) -> StateId {
        if let Some(&existing) = self.state_index.get(&info.name) {
            self.errors
                .push(DfsmError::DuplicateState(info.name.clone()));
            return existing;
        }
        let id = StateId(self.states.len());
        self.state_index.insert(info.name.clone(), id);
        self.states.push(info);
        id
    }

    /// Adds several states at once.
    pub fn add_states<I, S>(&mut self, names: I) -> Vec<StateId>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        names.into_iter().map(|n| self.add_state(n)).collect()
    }

    /// Declares an event without any transition (it will self-loop
    /// everywhere unless transitions are added, provided self-loop
    /// completion is enabled).
    pub fn add_event(&mut self, event: impl Into<Event>) -> &mut Self {
        self.alphabet.insert(event.into());
        self
    }

    /// Declares the initial state by name.  The state must already exist or
    /// be added later; resolution happens at build time.
    pub fn set_initial(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        match self.state_index.get(&name) {
            Some(&id) => self.initial = Some(id),
            None => {
                // Allow declaring the initial state before adding it: record
                // the intent and resolve during build by name.
                let id = self.add_state(name);
                self.initial = Some(id);
            }
        }
        self
    }

    /// Adds a transition `from --event--> to`.  Unknown states are created
    /// on the fly; unknown events are added to the alphabet.
    pub fn add_transition(
        &mut self,
        from: impl Into<String>,
        event: impl Into<Event>,
        to: impl Into<String>,
    ) -> &mut Self {
        let from = from.into();
        let to = to.into();
        let event = event.into();
        let from_id = self
            .state_index
            .get(&from)
            .copied()
            .unwrap_or_else(|| self.add_state(from.clone()));
        let to_id = self
            .state_index
            .get(&to)
            .copied()
            .unwrap_or_else(|| self.add_state(to.clone()));
        let ev_id = self.alphabet.insert(event.clone());
        let key = (from_id.index(), ev_id.index());
        if let Some(&existing) = self.transitions.get(&key) {
            if existing != to_id {
                self.errors.push(DfsmError::ConflictingTransition {
                    state: from,
                    event: event.name().to_string(),
                    existing: self.states[existing.index()].name.clone(),
                    attempted: to,
                });
            }
            return self;
        }
        self.transitions.insert(key, to_id);
        self
    }

    /// Adds a set of self-loop transitions for an event on every currently
    /// declared state.  Useful to express "this event is observed but has no
    /// effect".
    pub fn add_self_loops(&mut self, event: impl Into<Event>) -> &mut Self {
        let event = event.into();
        let ev_id = self.alphabet.insert(event);
        for s in 0..self.states.len() {
            self.transitions
                .entry((s, ev_id.index()))
                .or_insert(StateId(s));
        }
        self
    }

    /// Number of states added so far.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Builds the machine, checking all invariants.
    pub fn build(&self) -> Result<Dfsm> {
        if let Some(err) = self.errors.first() {
            return Err(err.clone());
        }
        if self.states.is_empty() {
            return Err(DfsmError::NoStates);
        }
        let initial = self.initial.ok_or(DfsmError::NoInitialState)?;
        let n = self.states.len();
        let k = self.alphabet.len();
        let mut table: Vec<Vec<StateId>> = Vec::with_capacity(n);
        for s in 0..n {
            let mut row = Vec::with_capacity(k);
            for e in 0..k {
                match self.transitions.get(&(s, e)) {
                    Some(&t) => row.push(t),
                    None if self.self_loop_completion => row.push(StateId(s)),
                    None => {
                        return Err(DfsmError::MissingTransition {
                            state: self.states[s].name.clone(),
                            event: self
                                .alphabet
                                .event(crate::event::EventId(e))
                                .map(|ev| ev.name().to_string())
                                .unwrap_or_else(|| format!("e{e}")),
                        })
                    }
                }
            }
            table.push(row);
        }
        Dfsm::from_parts(
            self.name.clone(),
            self.states.clone(),
            self.alphabet.clone(),
            table,
            initial,
        )
    }

    /// Builds the machine and additionally checks that every state is
    /// reachable from the initial state, as the paper's model assumes.
    pub fn build_reachable(&self) -> Result<Dfsm> {
        let m = self.build()?;
        m.check_all_reachable()?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_machine() {
        let mut b = DfsmBuilder::new("toggle");
        b.add_states(["off", "on"]);
        b.set_initial("off");
        b.add_transition("off", "press", "on");
        b.add_transition("on", "press", "off");
        let m = b.build_reachable().unwrap();
        assert_eq!(m.size(), 2);
        assert_eq!(m.alphabet().len(), 1);
        assert_eq!(m.initial(), StateId(0));
    }

    #[test]
    fn duplicate_state_is_an_error() {
        let mut b = DfsmBuilder::new("dup");
        b.add_state("a");
        b.add_state("a");
        b.set_initial("a");
        assert!(matches!(b.build(), Err(DfsmError::DuplicateState(_))));
    }

    #[test]
    fn missing_initial_is_an_error() {
        let mut b = DfsmBuilder::new("noinit");
        b.add_state("a");
        b.add_transition("a", "e", "a");
        assert!(matches!(b.build(), Err(DfsmError::NoInitialState)));
    }

    #[test]
    fn missing_transition_is_an_error_without_completion() {
        let mut b = DfsmBuilder::new("partial");
        b.add_states(["a", "b"]);
        b.set_initial("a");
        b.add_transition("a", "e", "b");
        // b has no transition on e.
        assert!(matches!(
            b.build(),
            Err(DfsmError::MissingTransition { .. })
        ));
    }

    #[test]
    fn self_loop_completion_fills_missing_transitions() {
        let mut b = DfsmBuilder::new("partial");
        b.complete_missing_with_self_loops();
        b.add_states(["a", "b"]);
        b.set_initial("a");
        b.add_transition("a", "e", "b");
        let m = b.build().unwrap();
        assert_eq!(m.apply_event(StateId(1), &Event::new("e")), StateId(1));
    }

    #[test]
    fn conflicting_transition_is_an_error() {
        let mut b = DfsmBuilder::new("conflict");
        b.add_states(["a", "b"]);
        b.set_initial("a");
        b.add_transition("a", "e", "a");
        b.add_transition("a", "e", "b");
        b.add_transition("b", "e", "b");
        assert!(matches!(
            b.build(),
            Err(DfsmError::ConflictingTransition { .. })
        ));
    }

    #[test]
    fn duplicate_identical_transition_is_ok() {
        let mut b = DfsmBuilder::new("dup-trans");
        b.add_states(["a"]);
        b.set_initial("a");
        b.add_transition("a", "e", "a");
        b.add_transition("a", "e", "a");
        assert!(b.build().is_ok());
    }

    #[test]
    fn set_initial_creates_state_if_missing() {
        let mut b = DfsmBuilder::new("auto");
        b.set_initial("start");
        b.add_transition("start", "go", "start");
        let m = b.build().unwrap();
        assert_eq!(m.state_name(m.initial()), "start");
    }

    #[test]
    fn unreachable_state_rejected_by_build_reachable() {
        let mut b = DfsmBuilder::new("unreach");
        b.add_states(["a", "island"]);
        b.set_initial("a");
        b.add_transition("a", "e", "a");
        b.add_transition("island", "e", "island");
        assert!(b.build().is_ok());
        assert!(matches!(
            b.build_reachable(),
            Err(DfsmError::UnreachableState(_))
        ));
    }

    #[test]
    fn add_self_loops_covers_all_states() {
        let mut b = DfsmBuilder::new("loops");
        b.add_states(["a", "b"]);
        b.set_initial("a");
        b.add_transition("a", "e", "b");
        b.add_transition("b", "e", "a");
        b.add_self_loops("noop");
        let m = b.build().unwrap();
        assert_eq!(m.alphabet().len(), 2);
        assert_eq!(m.apply_event(StateId(0), &Event::new("noop")), StateId(0));
        assert_eq!(m.apply_event(StateId(1), &Event::new("noop")), StateId(1));
    }

    #[test]
    fn add_state_with_output_is_preserved() {
        let mut b = DfsmBuilder::new("outputs");
        b.add_state_with_output("even", "0");
        b.add_state_with_output("odd", "1");
        b.set_initial("even");
        b.add_transition("even", "bit", "odd");
        b.add_transition("odd", "bit", "even");
        let m = b.build().unwrap();
        assert_eq!(m.state(StateId(0)).output.as_deref(), Some("0"));
    }
}
