//! Reachable cross product of a set of DFSMs.
//!
//! Given machines `A = {A1, …, An}`, the reachable cross product `R(A)`
//! (written `⊤` or "top" in the paper) is the machine whose states are the
//! *reachable* tuples of component states, whose alphabet is the union of
//! the component alphabets, and whose transition function applies each event
//! component-wise, with machines ignoring events outside their own alphabet
//! (Section 2).
//!
//! Every input machine is less than or equal to `⊤` in the closed-partition
//! order, so knowing the state of `⊤` determines the state of every input
//! machine; the fusion algorithms in `fsm-fusion-core` operate on quotients
//! of `⊤`.
//!
//! ## Packed construction
//!
//! Building `⊤` is itself a hot path at scale (it dominates the pipeline
//! before Algorithm 2 even starts), so the BFS interns states through a
//! **packed mixed-radix `u64` key** — tuple `(s1, …, sn)` becomes
//! `Σ si · stride_i` with `stride_i = ∏_{j<i} |Sj|` — instead of hashing a
//! heap-allocated `Vec<StateId>` per visited edge:
//!
//! * when the *full* product `∏ |Si|` is small, the interner is a dense
//!   `u32` table indexed directly by the key (one array read per edge);
//! * otherwise it is a `HashMap<u64, u32>` — still allocation-free per
//!   lookup;
//! * only when `∏ |Si|` overflows `u64` does construction fall back to the
//!   original tuple-keyed map, preserved as
//!   [`ReachableProduct::new_reference`].
//!
//! Per-event successors are pre-resolved into flat per-machine tables of
//! *stride-multiplied* entries, so expanding one state is `|Σ| · n`
//! additions with no per-pop tuple clone.  With `FSM_FUSION_WORKERS` (or an
//! explicit [`ReachableProduct::with_workers`] count) the BFS runs
//! level-synchronized: large frontiers are chunked across scoped worker
//! threads that compute successor keys in parallel, and the main thread
//! interns them in frontier × event order — exactly the sequential
//! discovery order, so state numbering is bit-identical to the sequential
//! build (`tests/product_properties.rs` pins packed, parallel and reference
//! constructions against each other).
//!
//! ## Streaming construction
//!
//! Past the dense-table regime the level-synchronized BFS has two
//! output-sized RAM costs *on top of* the final product: the per-level
//! successor-key buffer and the growing `Vec<Vec<StateId>>` transition
//! table.  [`ProductStrategy::Streaming`] removes both: states are expanded
//! one at a time straight out of the discovery order (the implicit FIFO —
//! state `t` is expanded once `t < num_states`), each row's `k` successor
//! ids are appended to a [`PageArena`], and sealed pages past
//! the configured memory budget are spilled to a temp file and replayed
//! only during final assembly.  The interner is chosen against the same
//! budget (a dense table must fit in half of it), so the peak resident
//! footprint during the BFS is `tuple_flat + interner + budget` instead of
//! everything at once.  Intern order is identical to the packed build —
//! frontier × event order — so the streamed product is bit-identical to
//! every other strategy.  The budget follows the workspace knob precedence:
//! explicit [`ProductBuilder::mem_budget`] > `FSM_FUSION_MEM_BUDGET` >
//! [`DEFAULT_MEM_BUDGET`]; the dense-interner crossover is likewise
//! [`ProductBuilder::dense_limit`] > `FSM_FUSION_DENSE_LIMIT` >
//! [`DEFAULT_DENSE_LIMIT`].

use std::collections::{HashMap, VecDeque};

use crate::arena::PageArena;
use crate::dfsm::Dfsm;
use crate::error::Result;
use crate::event::Alphabet;
use crate::state::{StateId, StateInfo};
use crate::workers::{configured_dense_limit, configured_mem_budget, configured_workers};

/// Default dense-interner crossover: full-product sizes up to this use the
/// dense direct-indexed interner (`4 bytes × limit` = 16 MiB at the cap);
/// larger products hash packed keys.  Overridable per builder
/// ([`ProductBuilder::dense_limit`]) or process (`FSM_FUSION_DENSE_LIMIT`).
pub const DEFAULT_DENSE_LIMIT: u64 = 1 << 22;

/// Default memory budget for [`ProductStrategy::Streaming`] builds:
/// 256 MiB of resident BFS scratch before successor pages spill to disk.
/// Overridable per builder ([`ProductBuilder::mem_budget`]) or process
/// (`FSM_FUSION_MEM_BUDGET`).
pub const DEFAULT_MEM_BUDGET: u64 = 256 << 20;

/// Minimum frontier size before a BFS level is chunked across worker
/// threads; below this the per-level spawn cost exceeds the successor
/// arithmetic being parallelized.
const PAR_LEVEL_MIN: usize = 256;

/// Construction strategy for [`ReachableProduct`], selected through a
/// [`ProductBuilder`].
///
/// Every strategy produces the identical product — same state numbering,
/// names, transitions and tuples (`tests/product_properties.rs`) — they
/// differ only in how the BFS is executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProductStrategy {
    /// Pick from the configured worker count: the packed sequential build
    /// for one worker, the frontier-chunked parallel build otherwise.
    #[default]
    Auto,
    /// The packed mixed-radix build on the calling thread.
    Packed,
    /// The packed build with frontier-chunked scoped worker threads.
    Parallel,
    /// The memory-budgeted sequential build: successor rows stream into a
    /// spill-capable [`PageArena`] instead of an all-in-RAM
    /// table (see the module docs).
    Streaming,
    /// The seed tuple-keyed BFS ([`ReachableProduct::new_reference`]).
    Reference,
}

/// What a [`ProductBuilder::build_with_stats`] construction actually did —
/// which paths were taken and how much the streaming arena spilled.  Zeroed
/// for non-streaming strategies except `dense_interner`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProductBuildStats {
    /// Whether the streaming (arena-backed) BFS ran.
    pub streamed: bool,
    /// Whether the interner was the dense direct-indexed table (as opposed
    /// to the packed-key hash map or the tuple-keyed fallback).
    pub dense_interner: bool,
    /// The memory budget the build ran under (streaming only; 0 otherwise).
    pub mem_budget: u64,
    /// Successor pages written to the spill file.
    pub spilled_pages: usize,
    /// Bytes written to the spill file.
    pub spilled_bytes: u64,
    /// Pages that should have spilled but stayed resident because the
    /// spill file was unavailable.
    pub spill_fallbacks: usize,
}

/// Config-driven constructor for [`ReachableProduct`].
///
/// The legacy constructors ([`ReachableProduct::new`],
/// [`ReachableProduct::with_name`]) consult the `FSM_FUSION_WORKERS`
/// environment variable on **every call**; a `ProductBuilder` instead
/// captures its configuration once — explicitly via [`ProductBuilder::workers`]
/// / [`ProductBuilder::strategy`], or from the environment once via
/// [`ProductBuilder::from_env`] — and then builds any number of products
/// with it.  `fsm-fusion-core`'s `FusionSession` owns one and threads it
/// through the whole pipeline.
///
/// Every sizing knob follows the same precedence — explicit > environment
/// snapshot > default: a value set through [`ProductBuilder::workers`] /
/// [`ProductBuilder::dense_limit`] / [`ProductBuilder::mem_budget`] always
/// wins, even on a builder created by [`ProductBuilder::from_env`].
///
/// Note: when `∏ |Si|` overflows `u64` the packed strategies cannot
/// represent the tuples and every strategy falls back to the reference
/// construction, exactly like the legacy constructors.
#[derive(Debug, Clone, Default)]
pub struct ProductBuilder {
    name: Option<String>,
    strategy: ProductStrategy,
    workers: Option<usize>,
    env_workers: Option<usize>,
    dense_limit: Option<u64>,
    env_dense_limit: Option<u64>,
    mem_budget: Option<u64>,
    env_mem_budget: Option<u64>,
    packed_capacity: Option<u64>,
}

impl ProductBuilder {
    /// A builder with the sequential defaults: name `"top"`, strategy
    /// [`ProductStrategy::Auto`], one worker, no environment consultation.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder whose fallback worker count, dense-interner limit and
    /// memory budget are snapshotted from `FSM_FUSION_WORKERS` /
    /// `FSM_FUSION_DENSE_LIMIT` / `FSM_FUSION_MEM_BUDGET` **now** — later
    /// changes to the environment do not affect it, and the explicit
    /// setters still take precedence.
    pub fn from_env() -> Self {
        ProductBuilder {
            env_workers: Some(configured_workers()),
            env_dense_limit: configured_dense_limit(),
            env_mem_budget: configured_mem_budget(),
            ..Self::default()
        }
    }

    /// Pure form of [`ProductBuilder::from_env`]: builds from already-read
    /// environment values so the precedence rules are testable without
    /// mutating the process environment (`None` = variable unset).
    pub fn from_env_values(
        workers: Option<usize>,
        dense_limit: Option<u64>,
        mem_budget: Option<u64>,
    ) -> Self {
        ProductBuilder {
            env_workers: workers,
            env_dense_limit: dense_limit,
            env_mem_budget: mem_budget,
            ..Self::default()
        }
    }

    /// Sets the name of the built product machine (default `"top"`).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Sets the construction strategy (default [`ProductStrategy::Auto`]).
    pub fn strategy(mut self, strategy: ProductStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets an explicit worker count, overriding any environment snapshot.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets an explicit dense-interner limit (full-product state count up
    /// to which the direct-indexed table is used), overriding any
    /// environment snapshot.
    pub fn dense_limit(mut self, limit: u64) -> Self {
        self.dense_limit = Some(limit);
        self
    }

    /// Sets an explicit streaming memory budget in bytes, overriding any
    /// environment snapshot.
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Caps the full-product size representable by packed `u64` keys;
    /// products larger than this take the tuple-keyed reference fallback,
    /// exactly as if `∏ |Si|` had overflowed `u64`.  A test/diagnostic
    /// knob: it makes the overflow fallback exercisable on small machines
    /// instead of requiring a genuine 2⁶⁴-state product
    /// (`tests/product_properties.rs`).
    pub fn packed_key_capacity(mut self, cap: u64) -> Self {
        self.packed_capacity = Some(cap);
        self
    }

    /// The worker count this builder resolves to: explicit > environment
    /// snapshot > 1.
    pub fn resolved_workers(&self) -> usize {
        self.workers.or(self.env_workers).unwrap_or(1).max(1)
    }

    /// The dense-interner limit this builder resolves to: explicit >
    /// environment snapshot > [`DEFAULT_DENSE_LIMIT`].
    pub fn resolved_dense_limit(&self) -> u64 {
        self.dense_limit
            .or(self.env_dense_limit)
            .unwrap_or(DEFAULT_DENSE_LIMIT)
    }

    /// The streaming memory budget this builder resolves to: explicit >
    /// environment snapshot > [`DEFAULT_MEM_BUDGET`].
    pub fn resolved_mem_budget(&self) -> u64 {
        self.mem_budget
            .or(self.env_mem_budget)
            .unwrap_or(DEFAULT_MEM_BUDGET)
    }

    /// Builds the reachable cross product of `machines` under this
    /// configuration.
    pub fn build(&self, machines: &[Dfsm]) -> Result<ReachableProduct> {
        self.build_with_stats(machines).map(|(p, _)| p)
    }

    /// [`ProductBuilder::build`] plus a [`ProductBuildStats`] describing
    /// which paths the construction took and how much it spilled.
    pub fn build_with_stats(
        &self,
        machines: &[Dfsm],
    ) -> Result<(ReachableProduct, ProductBuildStats)> {
        assert!(
            !machines.is_empty(),
            "reachable cross product of zero machines is undefined"
        );
        let name = self.name.clone().unwrap_or_else(|| "top".into());
        let cap = self.packed_capacity.unwrap_or(u64::MAX);
        let dense_limit = self.resolved_dense_limit();
        let workers = match self.strategy {
            ProductStrategy::Auto => self.resolved_workers(),
            ProductStrategy::Packed | ProductStrategy::Streaming => 1,
            // An explicitly parallel build with no count configured still
            // has to fan out; two workers is the smallest parallel build.
            ProductStrategy::Parallel => self.resolved_workers().max(2),
            ProductStrategy::Reference => {
                let p = ReachableProduct::build_reference(machines, name)?;
                return Ok((p, ProductBuildStats::default()));
            }
        };
        match Radix::new(machines, cap) {
            Some((radix, full)) if self.strategy == ProductStrategy::Streaming => {
                ReachableProduct::build_streaming(
                    machines,
                    name,
                    radix,
                    full,
                    dense_limit,
                    self.resolved_mem_budget(),
                )
            }
            Some((radix, full)) => {
                let dense = full <= dense_limit;
                let p = ReachableProduct::build_packed(
                    machines,
                    name,
                    workers,
                    radix,
                    full,
                    dense_limit,
                )?;
                Ok((
                    p,
                    ProductBuildStats {
                        dense_interner: dense,
                        ..Default::default()
                    },
                ))
            }
            // ∏ |Si| overflows u64 (or the configured cap): packed keys
            // cannot represent the tuples.
            None => {
                let p = ReachableProduct::build_reference(machines, name)?;
                Ok((p, ProductBuildStats::default()))
            }
        }
    }

    /// Extends `base` by one more factor machine, appended *last*, reusing
    /// the base product instead of rebuilding from the component machines.
    ///
    /// The new product's transitions factorize: on every event of the old
    /// union alphabet the base coordinate follows the base product's
    /// *stored* transition row, and on events only the new machine knows
    /// the base coordinate stays put — so expanding one state costs two
    /// table lookups instead of the cold build's per-component successor
    /// sum, and the base machines' step tables are never rebuilt.  Because
    /// [`Alphabet::union_all`] preserves insertion order, the old union
    /// alphabet is a prefix of the new one, and the incremental BFS visits
    /// states in exactly the cold build's frontier × event discovery order:
    /// the result is **bit-identical** (state numbering, names, transitions,
    /// tuples, index variant) to building all `arity + 1` machines cold
    /// through this builder.
    ///
    /// Returns the product together with a [`FactorExtension`] carrying the
    /// new-state → base-state projection used by `fsm-fusion-core`'s
    /// delta-aware fault-graph and closure-cache remapping.
    pub fn extend_factor(
        &self,
        base: &ReachableProduct,
        machine: &Dfsm,
    ) -> Result<(ReachableProduct, FactorExtension)> {
        let machines: Vec<Dfsm> = base
            .components()
            .iter()
            .cloned()
            .chain(std::iter::once(machine.clone()))
            .collect();
        let name = self.name.clone().unwrap_or_else(|| "top".into());
        let arity = machines.len();
        let alphabet = Alphabet::union_all(machines.iter().map(|m| m.alphabet()));
        let k = alphabet.len();
        let k_old = base.top().alphabet().len();
        debug_assert_eq!(
            base.top().alphabet().events(),
            &alphabet.events()[..k_old],
            "the old union alphabet must be a prefix of the new one"
        );
        // Per union event, the new machine's own event id (None = ignored).
        let resolved: Vec<Option<crate::event::EventId>> = alphabet
            .events()
            .iter()
            .map(|ev| machine.alphabet().id_of(ev))
            .collect();
        let s_new = machine.size() as u64;
        let n_base = base.size() as u64;

        // Intern (base state, new coordinate) pairs under the key
        // `x * |S_new| + c`; dense when the pair space is small.
        let pair_space = n_base * s_new;
        enum PairInterner {
            Dense(Vec<u32>),
            Map(HashMap<u64, u32>),
        }
        let mut interner = if pair_space <= self.resolved_dense_limit() {
            PairInterner::Dense(vec![u32::MAX; pair_space as usize])
        } else {
            PairInterner::Map(HashMap::new())
        };
        let mut mapping: Vec<u32> = Vec::new();
        let mut coords: Vec<u32> = Vec::new();
        let mut intern = |x: u32, c: u32, mapping: &mut Vec<u32>, coords: &mut Vec<u32>| -> u32 {
            let key = x as u64 * s_new + c as u64;
            let slot = match &mut interner {
                PairInterner::Dense(table) => &mut table[key as usize],
                PairInterner::Map(map) => map.entry(key).or_insert(u32::MAX),
            };
            if *slot == u32::MAX {
                *slot = mapping.len() as u32;
                mapping.push(x);
                coords.push(c);
            }
            *slot
        };

        // The base product's BFS put its initial state at id 0, so the new
        // initial pair is (0, new initial) — interned first, id 0.
        intern(
            0,
            machine.initial().index() as u32,
            &mut mapping,
            &mut coords,
        );

        // One-state-at-a-time BFS over the implicit FIFO (ids are assigned
        // in discovery order, so processing states in id order IS the
        // frontier × event order of the cold level-synchronized build).
        let base_table = base.top().transition_table();
        let mut transitions: Vec<Vec<StateId>> = Vec::new();
        let mut t = 0usize;
        while t < mapping.len() {
            let x = mapping[t];
            let c = coords[t];
            let base_row = &base_table[x as usize];
            let mut row = Vec::with_capacity(k);
            for (e, res) in resolved.iter().enumerate() {
                // Old-union events follow the stored base row; events the
                // base machines never knew leave the base coordinate put.
                let x2 = if e < k_old {
                    base_row[e].index() as u32
                } else {
                    x
                };
                let c2 = match res {
                    Some(id) => machine.next(StateId(c as usize), *id).index() as u32,
                    None => c,
                };
                row.push(StateId(intern(x2, c2, &mut mapping, &mut coords) as usize));
            }
            transitions.push(row);
            t += 1;
        }

        let num_states = mapping.len();
        let mut tuple_flat: Vec<StateId> = Vec::with_capacity(num_states * arity);
        for (&x, &c) in mapping.iter().zip(coords.iter()) {
            tuple_flat.extend_from_slice(base.tuple(StateId(x as usize)));
            tuple_flat.push(StateId(c as usize));
        }

        // The tuple index is built by the cold rules, so even the index
        // variant matches what a from-scratch build would have chosen.
        let cap = self.packed_capacity.unwrap_or(u64::MAX);
        let index = match Radix::new(&machines, cap) {
            Some((radix, full)) if full <= self.resolved_dense_limit() => {
                let mut table = vec![u32::MAX; full as usize];
                for (t, tuple) in tuple_flat.chunks(arity).enumerate() {
                    let key = radix.pack(tuple).expect("stored tuples are in range");
                    table[key as usize] = t as u32;
                }
                TupleIndex::Dense { radix, table }
            }
            Some((radix, _)) => {
                let map = tuple_flat
                    .chunks(arity)
                    .enumerate()
                    .map(|(t, tuple)| {
                        let key = radix.pack(tuple).expect("stored tuples are in range");
                        (key, t as u32)
                    })
                    .collect();
                TupleIndex::Packed { radix, map }
            }
            None => TupleIndex::Tuples(
                tuple_flat
                    .chunks(arity)
                    .enumerate()
                    .map(|(t, tuple)| (tuple.to_vec(), StateId(t)))
                    .collect(),
            ),
        };

        // State names splice the base product's (always "{a,…,e}" from a
        // prior finish) with the appended coordinate — bit-identical to the
        // cold join over every component, without re-walking the tuple.
        let states: Vec<StateInfo> = mapping
            .iter()
            .zip(coords.iter())
            .map(|(&x, &c)| {
                let base_name = base.top().state_name(StateId(x as usize));
                let coord = machine.state_name(StateId(c as usize));
                let mut n = String::with_capacity(base_name.len() + coord.len() + 1);
                n.push_str(&base_name[..base_name.len() - 1]);
                n.push(',');
                n.push_str(coord);
                n.push('}');
                StateInfo::named(n)
            })
            .collect();
        let product = ReachableProduct::finish_with_states(
            &machines,
            name,
            states,
            alphabet,
            arity,
            tuple_flat,
            transitions,
            index,
        )?;
        Ok((
            product,
            FactorExtension {
                mapping,
                reexpanded: num_states,
            },
        ))
    }
}

/// What a [`ProductBuilder::extend_factor`] construction reused from the
/// base product and what it had to re-derive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FactorExtension {
    /// `mapping[t]` is the base-product state that new product state `t`
    /// projects onto when the appended factor's coordinate is dropped.
    /// Every base state appears (old event paths replay unchanged), so this
    /// is a surjection onto the base product's states.
    pub mapping: Vec<u32>,
    /// Product states expanded by the incremental BFS — the new product's
    /// size.  Each expansion costs two lookups (one stored base row, one
    /// new-machine step) instead of the cold build's per-component
    /// successor sum, and no base-machine step tables are rebuilt.
    pub reexpanded: usize,
}

/// The mixed-radix packing of component-state tuples into `u64` keys.
#[derive(Debug, Clone)]
struct Radix {
    /// `|Si|` per component.
    sizes: Vec<u64>,
    /// `strides[i] = ∏_{j<i} sizes[j]` (little-endian mixed radix).
    strides: Vec<u64>,
}

impl Radix {
    /// `None` when `∏ |Si|` overflows `u64` or exceeds `cap` (the packed
    /// builders then fall back to the tuple-keyed reference construction).
    /// `cap` is `u64::MAX` everywhere except through
    /// [`ProductBuilder::packed_key_capacity`].
    fn new(machines: &[Dfsm], cap: u64) -> Option<(Radix, u64)> {
        let mut strides = Vec::with_capacity(machines.len());
        let mut sizes = Vec::with_capacity(machines.len());
        let mut acc: u64 = 1;
        for m in machines {
            strides.push(acc);
            let size = m.size() as u64;
            sizes.push(size);
            acc = acc.checked_mul(size).filter(|&a| a <= cap)?;
        }
        Some((Radix { sizes, strides }, acc))
    }

    /// Packs a full tuple, or `None` when any component is out of range
    /// (out-of-range components must be rejected *before* packing — they
    /// could otherwise alias a valid key).
    fn pack(&self, tuple: &[StateId]) -> Option<u64> {
        if tuple.len() != self.sizes.len() {
            return None;
        }
        let mut key = 0u64;
        for (i, &s) in tuple.iter().enumerate() {
            if (s.index() as u64) >= self.sizes[i] {
                return None;
            }
            key += s.index() as u64 * self.strides[i];
        }
        Some(key)
    }

    /// Appends the decoded components of `key` to `out`.
    fn decode_into(&self, key: u64, out: &mut Vec<StateId>) {
        let mut rem = key;
        for &size in &self.sizes {
            out.push(StateId((rem % size) as usize));
            rem /= size;
        }
    }
}

/// The tuple → product-state index behind [`ReachableProduct::find_tuple`].
#[derive(Debug, Clone)]
enum TupleIndex {
    /// Dense direct-indexed table over the full product
    /// (`u32::MAX` = unreachable tuple).
    Dense { radix: Radix, table: Vec<u32> },
    /// Packed-key hash map for full products too large for a dense table.
    Packed {
        radix: Radix,
        map: HashMap<u64, u32>,
    },
    /// The seed construction's tuple-keyed map: the reference path, and the
    /// fallback when `∏ |Si|` overflows `u64`.
    Tuples(HashMap<Vec<StateId>, StateId>),
}

/// The packed-key interner shared by the packed and streaming builds.
enum Interner {
    Dense(Vec<u32>),
    Map(HashMap<u64, u32>),
}

impl Interner {
    /// Interns `key`, appending its decoded tuple to `tuple_flat` on first
    /// sight, and returns the state's id.
    fn intern(
        &mut self,
        key: u64,
        num_states: &mut usize,
        radix: &Radix,
        tuple_flat: &mut Vec<StateId>,
    ) -> u32 {
        let slot = match self {
            Interner::Dense(table) => &mut table[key as usize],
            Interner::Map(map) => map.entry(key).or_insert(u32::MAX),
        };
        if *slot == u32::MAX {
            *slot = *num_states as u32;
            *num_states += 1;
            radix.decode_into(key, tuple_flat);
        }
        *slot
    }

    fn into_index(self, radix: Radix) -> TupleIndex {
        match self {
            Interner::Dense(table) => TupleIndex::Dense { radix, table },
            Interner::Map(map) => TupleIndex::Packed { radix, map },
        }
    }
}

/// Flat per-machine successor tables, pre-multiplied by each machine's
/// stride: expanding state `t` on event `e` is then
/// `Σ_i step[i][e · |Si| + si]` — pure additions, no per-edge multiply and
/// no tuple materialization.
fn step_tables(machines: &[Dfsm], alphabet: &Alphabet, radix: &Radix) -> Vec<Vec<u64>> {
    let k = alphabet.len();
    machines
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let size = m.size();
            let stride = radix.strides[i];
            let mut table = Vec::with_capacity(k * size);
            for ev in alphabet.events() {
                match m.alphabet().id_of(ev) {
                    Some(id) => {
                        for s in 0..size {
                            table.push(m.next(StateId(s), id).index() as u64 * stride);
                        }
                    }
                    // The machine ignores this event: stay in place.
                    None => {
                        for s in 0..size {
                            table.push(s as u64 * stride);
                        }
                    }
                }
            }
            table
        })
        .collect()
}

/// The reachable cross product `R(A)` of a set of machines, together with
/// the mapping from product states back to component states.
#[derive(Debug, Clone)]
pub struct ReachableProduct {
    top: Dfsm,
    components: Vec<Dfsm>,
    arity: usize,
    /// Component states of product state `t`:
    /// `tuple_flat[t * arity .. (t + 1) * arity]` (one flat allocation
    /// instead of a `Vec` per state).
    tuple_flat: Vec<StateId>,
    index: TupleIndex,
}

impl ReachableProduct {
    /// Builds the reachable cross product of the given machines.
    ///
    /// The product is constructed by breadth-first search from the tuple of
    /// initial states, so every product state is reachable by construction
    /// and the product state `0` is the initial state.  Uses the packed
    /// interner (see the module docs) and consults `FSM_FUSION_WORKERS`
    /// ([`configured_workers`]) for parallel frontier expansion; state
    /// numbering is identical for every engine.
    ///
    /// This is a thin shim over [`ProductBuilder::from_env`]; callers that
    /// build more than one product (or want the environment read once, not
    /// per call) should hold a [`ProductBuilder`] instead.
    pub fn new(machines: &[Dfsm]) -> Result<Self> {
        ProductBuilder::from_env().build(machines)
    }

    /// Like [`ReachableProduct::new`] but with an explicit machine name.
    pub fn with_name(machines: &[Dfsm], name: impl Into<String>) -> Result<Self> {
        ProductBuilder::from_env().name(name).build(machines)
    }

    /// Like [`ReachableProduct::new`] but with an explicit worker count for
    /// the frontier expansion (ignoring `FSM_FUSION_WORKERS`); `workers <=
    /// 1` selects the sequential packed build.
    pub fn with_workers(machines: &[Dfsm], workers: usize) -> Result<Self> {
        Self::with_name_workers(machines, "top", workers)
    }

    /// Full-control constructor: explicit name and worker count.
    pub fn with_name_workers(
        machines: &[Dfsm],
        name: impl Into<String>,
        workers: usize,
    ) -> Result<Self> {
        assert!(
            !machines.is_empty(),
            "reachable cross product of zero machines is undefined"
        );
        match Radix::new(machines, u64::MAX) {
            Some((radix, full)) => Self::build_packed(
                machines,
                name.into(),
                workers,
                radix,
                full,
                DEFAULT_DENSE_LIMIT,
            ),
            // ∏ |Si| overflows u64: packed keys cannot represent the tuples.
            None => Self::build_reference(machines, name.into()),
        }
    }

    /// The seed tuple-keyed BFS construction, preserved as the reference
    /// implementation the packed builders are pinned against
    /// (`tests/product_properties.rs`) and benchmarked next to
    /// (`product_build_scan_*` in `BENCH_fusion.json`).  Produces the
    /// identical product: same state numbering, names, transitions and
    /// tuples.
    pub fn new_reference(machines: &[Dfsm]) -> Result<Self> {
        assert!(
            !machines.is_empty(),
            "reachable cross product of zero machines is undefined"
        );
        Self::build_reference(machines, "top".into())
    }

    /// Packed BFS: states are interned through mixed-radix `u64` keys
    /// (dense table or key hash map), successors come from flat
    /// stride-multiplied tables, and large frontiers optionally fan out
    /// over scoped worker threads.
    fn build_packed(
        machines: &[Dfsm],
        name: String,
        workers: usize,
        radix: Radix,
        full: u64,
        dense_limit: u64,
    ) -> Result<Self> {
        let arity = machines.len();
        let alphabet = Alphabet::union_all(machines.iter().map(|m| m.alphabet()));
        let k = alphabet.len();
        let step = step_tables(machines, &alphabet, &radix);

        let mut interner = if full <= dense_limit {
            Interner::Dense(vec![u32::MAX; full as usize])
        } else {
            Interner::Map(HashMap::new())
        };

        // Number of states discovered so far; their components live in
        // `tuple_flat` (state `t` = `tuple_flat[t * arity..]`), so no
        // separate per-state key storage is needed.
        let mut num_states = 0usize;
        let mut tuple_flat: Vec<StateId> = Vec::new();
        // Interns `key`, appending its decoded tuple on first sight.
        let mut intern = |key: u64, num_states: &mut usize, tuple_flat: &mut Vec<StateId>| -> u32 {
            interner.intern(key, num_states, &radix, tuple_flat)
        };

        let initial_tuple: Vec<StateId> = machines.iter().map(|m| m.initial()).collect();
        let initial_key = radix
            .pack(&initial_tuple)
            .expect("initial states are in range");
        intern(initial_key, &mut num_states, &mut tuple_flat);

        // Shared successor-key kernel for both expansion branches below, so
        // the parallel and sequential builds can never diverge: fills
        // `out[(local - locals.start) * k + e]` with the packed key of
        // frontier state `level_start + local` under event `e`.
        let expand_rows = |level_start: usize,
                           locals: std::ops::Range<usize>,
                           out: &mut [u64],
                           tuple_flat: &[StateId]| {
            for (local, row) in locals.zip(out.chunks_mut(k)) {
                let t = level_start + local;
                let comps = &tuple_flat[t * arity..(t + 1) * arity];
                for (e, slot) in row.iter_mut().enumerate() {
                    *slot = comps
                        .iter()
                        .zip(step.iter())
                        .zip(radix.sizes.iter())
                        .map(|((&s, table), &size)| table[e * size as usize + s.index()])
                        .sum();
                }
            }
        };

        let mut transitions: Vec<Vec<StateId>> = Vec::new();
        let mut next_keys: Vec<u64> = Vec::new();
        let mut level_start = 0usize;
        // Level-synchronized BFS: FIFO discovery order is preserved because
        // each level's successors are interned in frontier × event order —
        // exactly the order the one-state-at-a-time queue would produce.
        // An empty union alphabet (k == 0) means the sole reachable state
        // has no successors at all; the chunked loops below cannot iterate
        // rows of width zero, so emit the empty transition rows directly.
        if k == 0 {
            transitions = vec![Vec::new(); num_states];
            level_start = num_states;
        }
        while level_start < num_states {
            let level_end = num_states;
            let level_len = level_end - level_start;
            next_keys.clear();
            next_keys.resize(level_len * k, 0);

            // Frontier-chunked expansion: the successor arithmetic for a
            // large level is split across scoped threads; interning (below)
            // stays on this thread in deterministic order.
            if workers > 1 && level_len >= PAR_LEVEL_MIN {
                let chunk = level_len.div_ceil(workers);
                std::thread::scope(|scope| {
                    for (ci, out) in next_keys.chunks_mut(chunk * k).enumerate() {
                        let start = ci * chunk;
                        let end = (start + out.len() / k).min(level_len);
                        let tuple_flat = &tuple_flat;
                        let expand_rows = &expand_rows;
                        scope.spawn(move || expand_rows(level_start, start..end, out, tuple_flat));
                    }
                });
            } else {
                expand_rows(level_start, 0..level_len, &mut next_keys, &tuple_flat);
            }

            for row_keys in next_keys.chunks(k) {
                let row: Vec<StateId> = row_keys
                    .iter()
                    .map(|&key| StateId(intern(key, &mut num_states, &mut tuple_flat) as usize))
                    .collect();
                transitions.push(row);
            }
            level_start = level_end;
        }

        let index = interner.into_index(radix);
        Self::finish(
            machines,
            name,
            alphabet,
            arity,
            tuple_flat,
            transitions,
            index,
        )
    }

    /// The memory-budgeted streaming BFS (see the module docs): states are
    /// expanded one at a time in discovery order (the state counter is the
    /// implicit FIFO), each row's successor ids stream into a
    /// [`PageArena`] that spills sealed pages past the budget, and the
    /// interner only gets the dense table when it fits in half the budget.
    /// Intern order is frontier × event order — identical to
    /// [`ReachableProduct::build_packed`] — so the result is bit-identical
    /// to every other strategy.
    fn build_streaming(
        machines: &[Dfsm],
        name: String,
        radix: Radix,
        full: u64,
        dense_limit: u64,
        budget: u64,
    ) -> Result<(Self, ProductBuildStats)> {
        let arity = machines.len();
        let alphabet = Alphabet::union_all(machines.iter().map(|m| m.alphabet()));
        let k = alphabet.len();
        let step = step_tables(machines, &alphabet, &radix);

        // The dense table must fit in half the budget (the arena gets the
        // rest) as well as under the configured dense limit.
        let dense = full <= dense_limit && full.saturating_mul(4) <= budget / 2;
        let mut interner = if dense {
            Interner::Dense(vec![u32::MAX; full as usize])
        } else {
            Interner::Map(HashMap::new())
        };
        let arena_budget = if dense { budget / 2 } else { budget };
        let mut arena = PageArena::with_budget(arena_budget);

        let mut num_states = 0usize;
        let mut tuple_flat: Vec<StateId> = Vec::new();
        let initial_tuple: Vec<StateId> = machines.iter().map(|m| m.initial()).collect();
        let initial_key = radix
            .pack(&initial_tuple)
            .expect("initial states are in range");
        interner.intern(initial_key, &mut num_states, &radix, &mut tuple_flat);

        // One reusable row of successor keys: computed fully (reading the
        // expanded state's components) before interning, which appends to
        // `tuple_flat`.
        let mut row_keys = vec![0u64; k];
        let mut comps: Vec<StateId> = Vec::with_capacity(arity);
        let mut t = 0usize;
        while t < num_states {
            comps.clear();
            comps.extend_from_slice(&tuple_flat[t * arity..(t + 1) * arity]);
            for (e, slot) in row_keys.iter_mut().enumerate() {
                *slot = comps
                    .iter()
                    .zip(step.iter())
                    .zip(radix.sizes.iter())
                    .map(|((&s, table), &size)| table[e * size as usize + s.index()])
                    .sum();
            }
            for &key in &row_keys {
                let id = interner.intern(key, &mut num_states, &radix, &mut tuple_flat);
                arena.push(id);
            }
            t += 1;
        }

        let stats = ProductBuildStats {
            streamed: true,
            dense_interner: dense,
            mem_budget: budget,
            spilled_pages: arena.spilled_pages(),
            spilled_bytes: arena.spilled_bytes(),
            spill_fallbacks: arena.spill_fallbacks(),
        };
        // Final assembly: replay the arena into the output-sized transition
        // table.  This is the first output-sized allocation besides
        // `tuple_flat`; the BFS scratch above stayed within the budget.
        let transitions: Vec<Vec<StateId>> = if k == 0 {
            vec![Vec::new(); num_states]
        } else {
            arena
                .into_rows(k)?
                .into_iter()
                .map(|row| row.into_iter().map(|id| StateId(id as usize)).collect())
                .collect()
        };

        let index = interner.into_index(radix);
        let p = Self::finish(
            machines,
            name,
            alphabet,
            arity,
            tuple_flat,
            transitions,
            index,
        )?;
        Ok((p, stats))
    }

    /// The seed BFS over explicit tuples with a tuple-keyed hash map.
    fn build_reference(machines: &[Dfsm], name: String) -> Result<Self> {
        let arity = machines.len();
        let alphabet = Alphabet::union_all(machines.iter().map(|m| m.alphabet()));

        // Pre-resolve, for every union event, the per-machine event id (or
        // None when the machine ignores that event).
        let resolved: Vec<Vec<Option<crate::event::EventId>>> = alphabet
            .events()
            .iter()
            .map(|ev| machines.iter().map(|m| m.alphabet().id_of(ev)).collect())
            .collect();

        let initial_tuple: Vec<StateId> = machines.iter().map(|m| m.initial()).collect();
        let mut tuples: Vec<Vec<StateId>> = vec![initial_tuple.clone()];
        let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
        index.insert(initial_tuple, StateId(0));
        let mut transitions: Vec<Vec<StateId>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(0);

        while let Some(t) = queue.pop_front() {
            let mut row = Vec::with_capacity(alphabet.len());
            for per_machine in resolved.iter() {
                // `tuples[t]` is read in place; the immutable borrow ends
                // with the collect, before any push below.
                let next_tuple: Vec<StateId> = machines
                    .iter()
                    .zip(per_machine.iter())
                    .enumerate()
                    .map(|(i, (m, ev))| match ev {
                        Some(id) => m.next(tuples[t][i], *id),
                        None => tuples[t][i],
                    })
                    .collect();
                let next_id = match index.get(&next_tuple) {
                    Some(&id) => id,
                    None => {
                        let id = StateId(tuples.len());
                        index.insert(next_tuple.clone(), id);
                        tuples.push(next_tuple);
                        queue.push_back(id.index());
                        id
                    }
                };
                row.push(next_id);
            }
            // Rows are produced in BFS order, which is also id order because
            // ids are assigned in discovery order and the queue is FIFO.
            debug_assert_eq!(transitions.len(), t);
            transitions.push(row);
        }

        let tuple_flat: Vec<StateId> = tuples.into_iter().flatten().collect();
        Self::finish(
            machines,
            name,
            alphabet,
            arity,
            tuple_flat,
            transitions,
            TupleIndex::Tuples(index),
        )
    }

    /// Shared tail of every construction: state names and the `Dfsm`.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        machines: &[Dfsm],
        name: String,
        alphabet: Alphabet,
        arity: usize,
        tuple_flat: Vec<StateId>,
        transitions: Vec<Vec<StateId>>,
        index: TupleIndex,
    ) -> Result<Self> {
        let states: Vec<StateInfo> = tuple_flat
            .chunks(arity)
            .map(|tuple| {
                let names: Vec<&str> = tuple
                    .iter()
                    .zip(machines.iter())
                    .map(|(&s, m)| m.state_name(s))
                    .collect();
                StateInfo::named(format!("{{{}}}", names.join(",")))
            })
            .collect();
        Self::finish_with_states(
            machines,
            name,
            states,
            alphabet,
            arity,
            tuple_flat,
            transitions,
            index,
        )
    }

    /// [`ReachableProduct::finish`] with the state names already
    /// materialized — the incremental `extend_factor` path derives them by
    /// splicing the base product's names instead of re-joining every
    /// component's.
    #[allow(clippy::too_many_arguments)]
    fn finish_with_states(
        machines: &[Dfsm],
        name: String,
        states: Vec<StateInfo>,
        alphabet: Alphabet,
        arity: usize,
        tuple_flat: Vec<StateId>,
        transitions: Vec<Vec<StateId>>,
        index: TupleIndex,
    ) -> Result<Self> {
        let top = Dfsm::from_parts(name, states, alphabet, transitions, StateId(0))?;
        Ok(ReachableProduct {
            top,
            components: machines.to_vec(),
            arity,
            tuple_flat,
            index,
        })
    }

    /// The product machine `⊤` itself.
    pub fn top(&self) -> &Dfsm {
        &self.top
    }

    /// The component machines, in the order they were given.
    pub fn components(&self) -> &[Dfsm] {
        &self.components
    }

    /// Number of product states (`|⊤|`).
    pub fn size(&self) -> usize {
        self.top.size()
    }

    /// Number of component machines.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The tuple of component states corresponding to a product state.
    pub fn tuple(&self, state: StateId) -> &[StateId] {
        &self.tuple_flat[state.index() * self.arity..(state.index() + 1) * self.arity]
    }

    /// The state of component `i` when the product is in `state`.
    pub fn component_state(&self, state: StateId, i: usize) -> StateId {
        debug_assert!(i < self.arity);
        self.tuple_flat[state.index() * self.arity + i]
    }

    /// Finds the product state for a full tuple of component states, if that
    /// combination is reachable.
    pub fn find_tuple(&self, tuple: &[StateId]) -> Option<StateId> {
        match &self.index {
            TupleIndex::Dense { radix, table } => {
                let key = radix.pack(tuple)?;
                match table[key as usize] {
                    u32::MAX => None,
                    id => Some(StateId(id as usize)),
                }
            }
            TupleIndex::Packed { radix, map } => {
                let key = radix.pack(tuple)?;
                map.get(&key).map(|&id| StateId(id as usize))
            }
            TupleIndex::Tuples(map) => map.get(tuple).copied(),
        }
    }

    /// The full (not necessarily reachable) state-space size `∏ |Ai|`.
    pub fn full_product_size(&self) -> u128 {
        self.components.iter().map(|m| m.size() as u128).product()
    }

    /// Groups product states by the state of component `i`: the result has
    /// one entry per component state, listing the product states that
    /// project onto it.  This is exactly the closed partition of `⊤`
    /// corresponding to machine `i` (used by `fsm-fusion-core`).
    pub fn projection_blocks(&self, i: usize) -> Vec<Vec<StateId>> {
        let mut blocks: Vec<Vec<StateId>> = vec![Vec::new(); self.components[i].size()];
        for (t, tuple) in self.tuple_flat.chunks(self.arity).enumerate() {
            blocks[tuple[i].index()].push(StateId(t));
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsmBuilder;
    use crate::event::Event;

    /// Mod-k counter of occurrences of `event`.
    fn counter(name: &str, event: &str, k: usize) -> Dfsm {
        let mut b = DfsmBuilder::new(name);
        for i in 0..k {
            b.add_state(format!("{name}{i}"));
        }
        b.set_initial(format!("{name}0"));
        for i in 0..k {
            b.add_transition(
                format!("{name}{i}"),
                event,
                format!("{name}{}", (i + 1) % k),
            );
        }
        b.build().unwrap()
    }

    /// Asserts that two constructions of the same product are identical in
    /// every observable way.
    fn assert_same_product(a: &ReachableProduct, b: &ReachableProduct) {
        assert_eq!(a.size(), b.size());
        assert_eq!(a.arity(), b.arity());
        assert_eq!(a.top().alphabet().events(), b.top().alphabet().events());
        for t in 0..a.size() {
            let t = StateId(t);
            assert_eq!(a.tuple(t), b.tuple(t));
            assert_eq!(a.top().state_name(t), b.top().state_name(t));
            for e in 0..a.top().alphabet().len() {
                assert_eq!(
                    a.top().next(t, crate::event::EventId(e)),
                    b.top().next(t, crate::event::EventId(e))
                );
            }
        }
        for i in 0..a.arity() {
            assert_eq!(a.projection_blocks(i), b.projection_blocks(i));
        }
    }

    #[test]
    fn product_of_independent_counters_is_full_product() {
        // Counters over *different* events: all 9 combinations reachable.
        let a = counter("a", "0", 3);
        let b = counter("b", "1", 3);
        let p = ReachableProduct::new(&[a, b]).unwrap();
        assert_eq!(p.size(), 9);
        assert_eq!(p.full_product_size(), 9);
        assert_eq!(p.arity(), 2);
        assert!(p.top().all_reachable());
    }

    #[test]
    fn product_of_lockstep_machines_is_small() {
        // Two counters over the *same* event move in lock step: only 3 of
        // the 9 tuples are reachable.
        let a = counter("a", "tick", 3);
        let b = counter("b", "tick", 3);
        let p = ReachableProduct::new(&[a, b]).unwrap();
        assert_eq!(p.size(), 3);
        assert_eq!(p.full_product_size(), 9);
    }

    #[test]
    fn product_transitions_match_componentwise_application() {
        let a = counter("a", "0", 3);
        let b = counter("b", "1", 2);
        let p = ReachableProduct::new(&[a.clone(), b.clone()]).unwrap();
        let e0 = Event::new("0");
        let e1 = Event::new("1");
        // Apply 0,1,0 on the product and on the components separately.
        let seq = [e0.clone(), e1.clone(), e0.clone()];
        let top_state = p.top().run(seq.iter());
        let a_state = a.run(seq.iter());
        let b_state = b.run(seq.iter());
        assert_eq!(p.component_state(top_state, 0), a_state);
        assert_eq!(p.component_state(top_state, 1), b_state);
    }

    #[test]
    fn find_tuple_and_projection_blocks() {
        let a = counter("a", "0", 2);
        let b = counter("b", "1", 2);
        let p = ReachableProduct::new(&[a, b]).unwrap();
        assert_eq!(p.size(), 4);
        let t = p.find_tuple(&[StateId(1), StateId(1)]).unwrap();
        assert_eq!(p.tuple(t), &[StateId(1), StateId(1)]);
        assert_eq!(p.find_tuple(&[StateId(5), StateId(0)]), None);
        let blocks = p.projection_blocks(0);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.iter().map(|b| b.len()).sum::<usize>(), 4);
        // Each block has exactly the product states whose first component
        // matches.
        for (a_state, block) in blocks.iter().enumerate() {
            for &t in block {
                assert_eq!(p.component_state(t, 0), StateId(a_state));
            }
        }
    }

    #[test]
    fn product_state_names_mention_components() {
        let a = counter("a", "0", 2);
        let b = counter("b", "1", 2);
        let p = ReachableProduct::new(&[a, b]).unwrap();
        assert_eq!(p.top().state_name(StateId(0)), "{a0,b0}");
    }

    #[test]
    fn single_machine_product_is_isomorphic_copy() {
        let a = counter("a", "0", 4);
        let p = ReachableProduct::new(std::slice::from_ref(&a)).unwrap();
        assert_eq!(p.size(), a.size());
        assert_eq!(p.top().alphabet().len(), 1);
    }

    #[test]
    fn packed_parallel_and_reference_builds_agree() {
        let machines = [
            counter("a", "0", 3),
            counter("b", "1", 4),
            counter("c", "0", 2),
        ];
        let reference = ReachableProduct::new_reference(&machines).unwrap();
        let packed = ReachableProduct::with_workers(&machines, 1).unwrap();
        let parallel = ReachableProduct::with_workers(&machines, 3).unwrap();
        assert!(matches!(packed.index, TupleIndex::Dense { .. }));
        assert_same_product(&reference, &packed);
        assert_same_product(&reference, &parallel);
        // Dense-table find_tuple agrees with the reference map, reachable
        // and unreachable tuples alike.
        for s0 in 0..3 {
            for s1 in 0..4 {
                for s2 in 0..2 {
                    let tuple = [StateId(s0), StateId(s1), StateId(s2)];
                    assert_eq!(packed.find_tuple(&tuple), reference.find_tuple(&tuple));
                }
            }
        }
    }

    #[test]
    fn large_full_product_uses_the_packed_hash_map() {
        // 12 lockstep machines of 6 states: full product 6^12 ≈ 2.2e9 is
        // far past the dense-table limit, but only 6 states are reachable.
        let machines: Vec<Dfsm> = (0..12)
            .map(|i| counter(&format!("m{i}"), "tick", 6))
            .collect();
        let p = ReachableProduct::new(&machines).unwrap();
        assert!(matches!(p.index, TupleIndex::Packed { .. }));
        assert_eq!(p.size(), 6);
        let reference = ReachableProduct::new_reference(&machines).unwrap();
        assert_same_product(&reference, &p);
        assert_eq!(
            p.find_tuple(&[StateId(2); 12]),
            reference.find_tuple(&[StateId(2); 12])
        );
        assert_eq!(p.find_tuple(&[StateId(6); 12]), None);
    }

    #[test]
    fn empty_alphabet_product_matches_reference() {
        // A machine with no events is legal (one state, no transitions);
        // the packed BFS must produce the same 1-state, 0-event product as
        // the reference build instead of choking on zero-width rows.
        let mut b = DfsmBuilder::new("still");
        b.add_state("only");
        b.set_initial("only");
        let m = b.build().unwrap();
        let packed = ReachableProduct::with_workers(std::slice::from_ref(&m), 2).unwrap();
        let reference = ReachableProduct::new_reference(std::slice::from_ref(&m)).unwrap();
        assert_same_product(&packed, &reference);
        assert_eq!(packed.size(), 1);
        assert_eq!(packed.top().alphabet().len(), 0);
        assert_eq!(packed.find_tuple(&[StateId(0)]), Some(StateId(0)));
    }

    #[test]
    fn product_builder_strategies_agree_and_name_applies() {
        let machines = [counter("a", "0", 3), counter("b", "1", 4)];
        let auto = ProductBuilder::new().build(&machines).unwrap();
        let packed = ProductBuilder::new()
            .strategy(ProductStrategy::Packed)
            .build(&machines)
            .unwrap();
        let parallel = ProductBuilder::new()
            .strategy(ProductStrategy::Parallel)
            .workers(3)
            .build(&machines)
            .unwrap();
        let reference = ProductBuilder::new()
            .strategy(ProductStrategy::Reference)
            .build(&machines)
            .unwrap();
        assert!(matches!(reference.index, TupleIndex::Tuples(_)));
        assert_same_product(&auto, &packed);
        assert_same_product(&auto, &parallel);
        assert_same_product(&auto, &reference);
        let named = ProductBuilder::new().name("R").build(&machines).unwrap();
        assert_eq!(named.top().name(), "R");
    }

    #[test]
    fn product_builder_explicit_workers_beat_the_env_snapshot() {
        // The precedence contract: an explicit count wins over whatever the
        // builder snapshotted from the environment (here: whatever the test
        // process environment happens to hold), and the default is 1.
        assert_eq!(ProductBuilder::new().resolved_workers(), 1);
        assert_eq!(ProductBuilder::new().workers(7).resolved_workers(), 7);
        assert_eq!(ProductBuilder::from_env().workers(7).resolved_workers(), 7);
        assert_eq!(ProductBuilder::new().workers(0).resolved_workers(), 1);
    }

    #[test]
    fn streaming_build_matches_packed_and_spills_under_tiny_budget() {
        let machines = [
            counter("a", "0", 8),
            counter("b", "1", 9),
            counter("c", "2", 6),
        ];
        let packed = ReachableProduct::with_workers(&machines, 1).unwrap();
        // A comfortable budget: no spilling, dense interner.
        let (roomy, stats) = ProductBuilder::new()
            .strategy(ProductStrategy::Streaming)
            .build_with_stats(&machines)
            .unwrap();
        assert!(stats.streamed);
        assert!(stats.dense_interner);
        assert_eq!(stats.spilled_pages, 0);
        assert_same_product(&packed, &roomy);
        // A starvation budget: the dense table (432 states × 4 bytes) no
        // longer fits in half of it, and the 432 × 3 successor ids overflow
        // the single resident page the floored budget allows, so the arena
        // must spill.
        let (tight, stats) = ProductBuilder::new()
            .strategy(ProductStrategy::Streaming)
            .mem_budget(512)
            .build_with_stats(&machines)
            .unwrap();
        assert!(stats.streamed);
        assert!(!stats.dense_interner);
        assert!(stats.spilled_pages > 0, "expected spilling: {stats:?}");
        assert_eq!(stats.spill_fallbacks, 0);
        assert_same_product(&packed, &tight);
        assert_eq!(
            tight.find_tuple(&[StateId(7), StateId(8), StateId(5)]),
            packed.find_tuple(&[StateId(7), StateId(8), StateId(5)])
        );
    }

    #[test]
    fn streaming_build_handles_the_empty_alphabet() {
        let mut b = DfsmBuilder::new("still");
        b.add_state("only");
        b.set_initial("only");
        let m = b.build().unwrap();
        let (p, stats) = ProductBuilder::new()
            .strategy(ProductStrategy::Streaming)
            .build_with_stats(std::slice::from_ref(&m))
            .unwrap();
        assert!(stats.streamed);
        assert_eq!(p.size(), 1);
        let reference = ReachableProduct::new_reference(std::slice::from_ref(&m)).unwrap();
        assert_same_product(&p, &reference);
    }

    #[test]
    fn dense_limit_knob_flips_the_interner_without_changing_the_product() {
        let machines = [counter("a", "0", 3), counter("b", "1", 4)];
        let (dense, stats) = ProductBuilder::new().build_with_stats(&machines).unwrap();
        assert!(stats.dense_interner);
        assert!(matches!(dense.index, TupleIndex::Dense { .. }));
        // Forcing the limit below the 12-state full product switches to the
        // packed hash map; the product itself is bit-identical.
        let (mapped, stats) = ProductBuilder::new()
            .dense_limit(11)
            .build_with_stats(&machines)
            .unwrap();
        assert!(!stats.dense_interner);
        assert!(matches!(mapped.index, TupleIndex::Packed { .. }));
        assert_same_product(&dense, &mapped);
        for s0 in 0..4 {
            for s1 in 0..5 {
                let tuple = [StateId(s0), StateId(s1)];
                assert_eq!(mapped.find_tuple(&tuple), dense.find_tuple(&tuple));
            }
        }
    }

    #[test]
    fn builder_knob_precedence_is_explicit_env_default() {
        let b = ProductBuilder::new();
        assert_eq!(b.resolved_dense_limit(), DEFAULT_DENSE_LIMIT);
        assert_eq!(b.resolved_mem_budget(), DEFAULT_MEM_BUDGET);
        let b = ProductBuilder::from_env_values(Some(3), Some(1000), Some(1 << 16));
        assert_eq!(b.resolved_workers(), 3);
        assert_eq!(b.resolved_dense_limit(), 1000);
        assert_eq!(b.resolved_mem_budget(), 1 << 16);
        let b = b.workers(7).dense_limit(5).mem_budget(42);
        assert_eq!(b.resolved_workers(), 7);
        assert_eq!(b.resolved_dense_limit(), 5);
        assert_eq!(b.resolved_mem_budget(), 42);
        // Unset env values fall through to the defaults.
        let b = ProductBuilder::from_env_values(None, None, None);
        assert_eq!(b.resolved_workers(), 1);
        assert_eq!(b.resolved_dense_limit(), DEFAULT_DENSE_LIMIT);
        assert_eq!(b.resolved_mem_budget(), DEFAULT_MEM_BUDGET);
    }

    #[test]
    fn packed_key_capacity_forces_the_tuple_fallback() {
        // 3 × 4 = 12 full states: far under u64, but over a cap of 11 — the
        // builder must take the reference path, and the result is pinned
        // identical to the packed build.
        let machines = [counter("a", "0", 3), counter("b", "1", 4)];
        let packed = ProductBuilder::new().build(&machines).unwrap();
        let capped = ProductBuilder::new()
            .packed_key_capacity(11)
            .build(&machines)
            .unwrap();
        assert!(matches!(capped.index, TupleIndex::Tuples(_)));
        assert_same_product(&packed, &capped);
        // A cap the product fits under changes nothing.
        let roomy = ProductBuilder::new()
            .packed_key_capacity(12)
            .build(&machines)
            .unwrap();
        assert!(matches!(roomy.index, TupleIndex::Dense { .. }));
        assert_same_product(&packed, &roomy);
    }

    /// Cold twin of an [`ProductBuilder::extend_factor`] call: the same
    /// builder building all machines from scratch.
    fn cold_extended(base: &ReachableProduct, machine: &Dfsm) -> ReachableProduct {
        let machines: Vec<Dfsm> = base
            .components()
            .iter()
            .cloned()
            .chain(std::iter::once(machine.clone()))
            .collect();
        ProductBuilder::new().build(&machines).unwrap()
    }

    #[test]
    fn extend_factor_matches_cold_build_for_disjoint_events() {
        // A third counter over a brand-new event: the pair BFS must produce
        // the 24-state product with the cold build's exact numbering.
        let base = ReachableProduct::new(&[counter("a", "0", 3), counter("b", "1", 4)]).unwrap();
        let c = counter("c", "2", 2);
        let (ext, stats) = ProductBuilder::new().extend_factor(&base, &c).unwrap();
        let cold = cold_extended(&base, &c);
        assert_same_product(&ext, &cold);
        assert_eq!(stats.reexpanded, ext.size());
        assert_eq!(stats.mapping.len(), ext.size());
        // The mapping really is the drop-last-coordinate projection.
        for t in 0..ext.size() {
            let tuple = ext.tuple(StateId(t));
            let x = StateId(stats.mapping[t] as usize);
            assert_eq!(&tuple[..base.arity()], base.tuple(x));
        }
        // And it is surjective onto the base product.
        let mut hit = vec![false; base.size()];
        for &x in &stats.mapping {
            hit[x as usize] = true;
        }
        assert!(hit.iter().all(|&h| h), "every base state must reappear");
    }

    #[test]
    fn extend_factor_matches_cold_build_for_shared_and_novel_events() {
        // The appended machine shares event "0" with the base AND brings a
        // novel event "2" — both the prefix-alphabet path and the
        // stay-in-place path are exercised.
        let base = ReachableProduct::new(&[counter("a", "0", 3), counter("b", "1", 2)]).unwrap();
        let mut b = DfsmBuilder::new("c");
        for i in 0..3 {
            b.add_state(format!("c{i}"));
        }
        b.set_initial("c0");
        for i in 0..3 {
            b.add_transition(format!("c{i}"), "0", format!("c{}", (i + 1) % 3));
            b.add_transition(format!("c{i}"), "2", format!("c{}", (i + 2) % 3));
        }
        b.complete_missing_with_self_loops();
        let c = b.build().unwrap();
        let (ext, stats) = ProductBuilder::new().extend_factor(&base, &c).unwrap();
        let cold = cold_extended(&base, &c);
        assert_same_product(&ext, &cold);
        assert_eq!(stats.reexpanded, ext.size());
        // Lockstep with "a" on event "0" keeps the product smaller than the
        // full 18-state space; the incremental build must agree on that too.
        assert_eq!(ext.size(), cold.size());
        for s0 in 0..3 {
            for s1 in 0..2 {
                for s2 in 0..3 {
                    let tuple = [StateId(s0), StateId(s1), StateId(s2)];
                    assert_eq!(ext.find_tuple(&tuple), cold.find_tuple(&tuple));
                }
            }
        }
    }

    #[test]
    fn extend_factor_chains_match_one_cold_build() {
        // Two successive extensions ≡ one cold build of all four machines.
        let base = ReachableProduct::new(std::slice::from_ref(&counter("a", "0", 2))).unwrap();
        let (p2, _) = ProductBuilder::new()
            .extend_factor(&base, &counter("b", "1", 3))
            .unwrap();
        let (p3, _) = ProductBuilder::new()
            .extend_factor(&p2, &counter("c", "0", 2))
            .unwrap();
        let cold = ProductBuilder::new()
            .build(&[
                counter("a", "0", 2),
                counter("b", "1", 3),
                counter("c", "0", 2),
            ])
            .unwrap();
        assert_same_product(&p3, &cold);
    }

    #[test]
    fn extend_factor_builds_the_cold_index_variant() {
        let base = ReachableProduct::new(&[counter("a", "0", 3), counter("b", "1", 4)]).unwrap();
        let c = counter("c", "2", 2);
        // 24 full states: dense both ways.
        let (dense, _) = ProductBuilder::new().extend_factor(&base, &c).unwrap();
        assert!(matches!(dense.index, TupleIndex::Dense { .. }));
        // A dense limit below 24 flips both the cold build and the
        // extension to the packed map.
        let (mapped, _) = ProductBuilder::new()
            .dense_limit(23)
            .extend_factor(&base, &c)
            .unwrap();
        assert!(matches!(mapped.index, TupleIndex::Packed { .. }));
        assert_same_product(&dense, &mapped);
        // A packed-key cap below 24 forces the tuple fallback, like cold.
        let (capped, _) = ProductBuilder::new()
            .packed_key_capacity(23)
            .extend_factor(&base, &c)
            .unwrap();
        assert!(matches!(capped.index, TupleIndex::Tuples(_)));
        assert_same_product(&dense, &capped);
        // The name knob applies to the extended product too.
        let (named, _) = ProductBuilder::new()
            .name("R")
            .extend_factor(&base, &c)
            .unwrap();
        assert_eq!(named.top().name(), "R");
    }

    #[test]
    fn u64_overflow_falls_back_to_the_tuple_map() {
        // 13 lockstep machines of 41 states: 41^13 ≈ 9e20 overflows u64, so
        // the packed constructors must take the reference path.
        let machines: Vec<Dfsm> = (0..13)
            .map(|i| counter(&format!("m{i}"), "tick", 41))
            .collect();
        let p = ReachableProduct::new(&machines).unwrap();
        assert!(matches!(p.index, TupleIndex::Tuples(_)));
        assert_eq!(p.size(), 41);
        assert_eq!(p.find_tuple(&[StateId(40); 13]), Some(StateId(40)),);
        assert_eq!(p.find_tuple(&[StateId(41); 13]), None);
    }
}
