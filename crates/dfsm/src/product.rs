//! Reachable cross product of a set of DFSMs.
//!
//! Given machines `A = {A1, …, An}`, the reachable cross product `R(A)`
//! (written `⊤` or "top" in the paper) is the machine whose states are the
//! *reachable* tuples of component states, whose alphabet is the union of
//! the component alphabets, and whose transition function applies each event
//! component-wise, with machines ignoring events outside their own alphabet
//! (Section 2).
//!
//! Every input machine is less than or equal to `⊤` in the closed-partition
//! order, so knowing the state of `⊤` determines the state of every input
//! machine; the fusion algorithms in `fsm-fusion-core` operate on quotients
//! of `⊤`.

use std::collections::{HashMap, VecDeque};

use crate::dfsm::Dfsm;
use crate::error::Result;
use crate::event::Alphabet;
use crate::state::{StateId, StateInfo};

/// The reachable cross product `R(A)` of a set of machines, together with
/// the mapping from product states back to component states.
#[derive(Debug, Clone)]
pub struct ReachableProduct {
    top: Dfsm,
    components: Vec<Dfsm>,
    /// `tuples[t]` is the vector of component states for product state `t`.
    tuples: Vec<Vec<StateId>>,
    /// Map from component-state tuple to product state id.
    index: HashMap<Vec<StateId>, StateId>,
}

impl ReachableProduct {
    /// Builds the reachable cross product of the given machines.
    ///
    /// The product is constructed by breadth-first search from the tuple of
    /// initial states, so every product state is reachable by construction
    /// and the product state `0` is the initial state.
    pub fn new(machines: &[Dfsm]) -> Result<Self> {
        Self::with_name(machines, "top")
    }

    /// Like [`ReachableProduct::new`] but with an explicit machine name.
    pub fn with_name(machines: &[Dfsm], name: impl Into<String>) -> Result<Self> {
        assert!(
            !machines.is_empty(),
            "reachable cross product of zero machines is undefined"
        );
        let alphabet = Alphabet::union_all(machines.iter().map(|m| m.alphabet()));

        // Pre-resolve, for every union event, the per-machine event id (or
        // None when the machine ignores that event).
        let resolved: Vec<Vec<Option<crate::event::EventId>>> = alphabet
            .events()
            .iter()
            .map(|ev| machines.iter().map(|m| m.alphabet().id_of(ev)).collect())
            .collect();

        let initial_tuple: Vec<StateId> = machines.iter().map(|m| m.initial()).collect();
        let mut tuples: Vec<Vec<StateId>> = vec![initial_tuple.clone()];
        let mut index: HashMap<Vec<StateId>, StateId> = HashMap::new();
        index.insert(initial_tuple, StateId(0));
        let mut transitions: Vec<Vec<StateId>> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(0);

        while let Some(t) = queue.pop_front() {
            let tuple = tuples[t].clone();
            let mut row = Vec::with_capacity(alphabet.len());
            for (e_idx, per_machine) in resolved.iter().enumerate() {
                let _ = e_idx;
                let next_tuple: Vec<StateId> = tuple
                    .iter()
                    .zip(machines.iter().zip(per_machine.iter()))
                    .map(|(&s, (m, ev))| match ev {
                        Some(id) => m.next(s, *id),
                        None => s,
                    })
                    .collect();
                let next_id = match index.get(&next_tuple) {
                    Some(&id) => id,
                    None => {
                        let id = StateId(tuples.len());
                        index.insert(next_tuple.clone(), id);
                        tuples.push(next_tuple);
                        queue.push_back(id.index());
                        id
                    }
                };
                row.push(next_id);
            }
            // Rows are produced in BFS order, which is also id order because
            // ids are assigned in discovery order and the queue is FIFO.
            debug_assert_eq!(transitions.len(), t);
            transitions.push(row);
        }

        let states: Vec<StateInfo> = tuples
            .iter()
            .map(|tuple| {
                let names: Vec<&str> = tuple
                    .iter()
                    .zip(machines.iter())
                    .map(|(&s, m)| m.state_name(s))
                    .collect();
                StateInfo::named(format!("{{{}}}", names.join(",")))
            })
            .collect();

        let top = Dfsm::from_parts(name.into(), states, alphabet, transitions, StateId(0))?;
        Ok(ReachableProduct {
            top,
            components: machines.to_vec(),
            tuples,
            index,
        })
    }

    /// The product machine `⊤` itself.
    pub fn top(&self) -> &Dfsm {
        &self.top
    }

    /// The component machines, in the order they were given.
    pub fn components(&self) -> &[Dfsm] {
        &self.components
    }

    /// Number of product states (`|⊤|`).
    pub fn size(&self) -> usize {
        self.top.size()
    }

    /// Number of component machines.
    pub fn arity(&self) -> usize {
        self.components.len()
    }

    /// The tuple of component states corresponding to a product state.
    pub fn tuple(&self, state: StateId) -> &[StateId] {
        &self.tuples[state.index()]
    }

    /// The state of component `i` when the product is in `state`.
    pub fn component_state(&self, state: StateId, i: usize) -> StateId {
        self.tuples[state.index()][i]
    }

    /// Finds the product state for a full tuple of component states, if that
    /// combination is reachable.
    pub fn find_tuple(&self, tuple: &[StateId]) -> Option<StateId> {
        self.index.get(tuple).copied()
    }

    /// The full (not necessarily reachable) state-space size `∏ |Ai|`.
    pub fn full_product_size(&self) -> u128 {
        self.components.iter().map(|m| m.size() as u128).product()
    }

    /// Groups product states by the state of component `i`: the result has
    /// one entry per component state, listing the product states that
    /// project onto it.  This is exactly the closed partition of `⊤`
    /// corresponding to machine `i` (used by `fsm-fusion-core`).
    pub fn projection_blocks(&self, i: usize) -> Vec<Vec<StateId>> {
        let mut blocks: Vec<Vec<StateId>> = vec![Vec::new(); self.components[i].size()];
        for (t, tuple) in self.tuples.iter().enumerate() {
            blocks[tuple[i].index()].push(StateId(t));
        }
        blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsmBuilder;
    use crate::event::Event;

    /// Mod-k counter of occurrences of `event`.
    fn counter(name: &str, event: &str, k: usize) -> Dfsm {
        let mut b = DfsmBuilder::new(name);
        for i in 0..k {
            b.add_state(format!("{name}{i}"));
        }
        b.set_initial(format!("{name}0"));
        for i in 0..k {
            b.add_transition(
                format!("{name}{i}"),
                event,
                format!("{name}{}", (i + 1) % k),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn product_of_independent_counters_is_full_product() {
        // Counters over *different* events: all 9 combinations reachable.
        let a = counter("a", "0", 3);
        let b = counter("b", "1", 3);
        let p = ReachableProduct::new(&[a, b]).unwrap();
        assert_eq!(p.size(), 9);
        assert_eq!(p.full_product_size(), 9);
        assert_eq!(p.arity(), 2);
        assert!(p.top().all_reachable());
    }

    #[test]
    fn product_of_lockstep_machines_is_small() {
        // Two counters over the *same* event move in lock step: only 3 of
        // the 9 tuples are reachable.
        let a = counter("a", "tick", 3);
        let b = counter("b", "tick", 3);
        let p = ReachableProduct::new(&[a, b]).unwrap();
        assert_eq!(p.size(), 3);
        assert_eq!(p.full_product_size(), 9);
    }

    #[test]
    fn product_transitions_match_componentwise_application() {
        let a = counter("a", "0", 3);
        let b = counter("b", "1", 2);
        let p = ReachableProduct::new(&[a.clone(), b.clone()]).unwrap();
        let e0 = Event::new("0");
        let e1 = Event::new("1");
        // Apply 0,1,0 on the product and on the components separately.
        let seq = [e0.clone(), e1.clone(), e0.clone()];
        let top_state = p.top().run(seq.iter());
        let a_state = a.run(seq.iter());
        let b_state = b.run(seq.iter());
        assert_eq!(p.component_state(top_state, 0), a_state);
        assert_eq!(p.component_state(top_state, 1), b_state);
    }

    #[test]
    fn find_tuple_and_projection_blocks() {
        let a = counter("a", "0", 2);
        let b = counter("b", "1", 2);
        let p = ReachableProduct::new(&[a, b]).unwrap();
        assert_eq!(p.size(), 4);
        let t = p.find_tuple(&[StateId(1), StateId(1)]).unwrap();
        assert_eq!(p.tuple(t), &[StateId(1), StateId(1)]);
        assert_eq!(p.find_tuple(&[StateId(5), StateId(0)]), None);
        let blocks = p.projection_blocks(0);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks.iter().map(|b| b.len()).sum::<usize>(), 4);
        // Each block has exactly the product states whose first component
        // matches.
        for (a_state, block) in blocks.iter().enumerate() {
            for &t in block {
                assert_eq!(p.component_state(t, 0), StateId(a_state));
            }
        }
    }

    #[test]
    fn product_state_names_mention_components() {
        let a = counter("a", "0", 2);
        let b = counter("b", "1", 2);
        let p = ReachableProduct::new(&[a, b]).unwrap();
        assert_eq!(p.top().state_name(StateId(0)), "{a0,b0}");
    }

    #[test]
    fn single_machine_product_is_isomorphic_copy() {
        let a = counter("a", "0", 4);
        let p = ReachableProduct::new(std::slice::from_ref(&a)).unwrap();
        assert_eq!(p.size(), a.size());
        assert_eq!(p.top().alphabet().len(), 1);
    }
}
