//! Isomorphism checking between DFSMs.
//!
//! Two machines are isomorphic here when there is a bijection between their
//! state sets that maps initial state to initial state and commutes with the
//! transition function for every shared event name.  Because both machines
//! are deterministic and (by the paper's model) fully reachable, the
//! bijection — if it exists — is uniquely determined by a lock-step
//! breadth-first traversal from the initial states, which makes the check
//! linear in the number of transitions.
//!
//! This is used by tests and examples to verify, e.g., that the fusion found
//! for the Fig. 1 mod-3 counters is (isomorphic to) the `{n0 + n1} mod 3`
//! counter the paper describes.

use std::collections::VecDeque;

use crate::dfsm::Dfsm;
use crate::state::StateId;

/// Checks structural isomorphism of two machines over a *shared* alphabet.
///
/// Returns `Some(mapping)` where `mapping[a_state] = b_state` when the
/// machines are isomorphic, and `None` otherwise.  Machines with different
/// sizes or different alphabets (as sets of event names) are never
/// isomorphic.  Unreachable states (which the paper's model excludes) cause
/// the check to fail unless both machines have none.
pub fn isomorphism(a: &Dfsm, b: &Dfsm) -> Option<Vec<StateId>> {
    if a.size() != b.size() {
        return None;
    }
    // Alphabets must be equal as sets.
    if a.alphabet().len() != b.alphabet().len() {
        return None;
    }
    for ev in a.alphabet().events() {
        if !b.alphabet().contains(ev) {
            return None;
        }
    }
    // Resolve event ids of b in the order of a's alphabet.
    let b_event: Vec<_> = a
        .alphabet()
        .events()
        .iter()
        .map(|ev| b.alphabet().id_of(ev).expect("checked above"))
        .collect();

    let n = a.size();
    let mut map = vec![usize::MAX; n];
    let mut rmap = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    map[a.initial().index()] = b.initial().index();
    rmap[b.initial().index()] = a.initial().index();
    queue.push_back(a.initial());
    let mut visited = 0usize;
    while let Some(sa) = queue.pop_front() {
        visited += 1;
        let sb = StateId(map[sa.index()]);
        for (e, _) in a.alphabet().iter() {
            let ta = a.next(sa, e);
            let tb = b.next(sb, b_event[e.index()]);
            let expected = map[ta.index()];
            if expected == usize::MAX {
                if rmap[tb.index()] != usize::MAX {
                    return None; // not injective
                }
                map[ta.index()] = tb.index();
                rmap[tb.index()] = ta.index();
                queue.push_back(ta);
            } else if expected != tb.index() {
                return None;
            }
        }
    }
    // Every state of a must have been visited (machines are assumed
    // reachable); otherwise the mapping is partial and we refuse to call the
    // machines isomorphic.
    if visited != n || map.contains(&usize::MAX) {
        return None;
    }
    Some(map.into_iter().map(StateId).collect())
}

/// Convenience wrapper returning only a boolean.
pub fn are_isomorphic(a: &Dfsm, b: &Dfsm) -> bool {
    isomorphism(a, b).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsmBuilder;

    fn counter(name: &str, event: &str, k: usize, offset: usize) -> Dfsm {
        let mut b = DfsmBuilder::new(name);
        for i in 0..k {
            b.add_state(format!("{name}{i}"));
        }
        b.set_initial(format!("{name}{offset}"));
        for i in 0..k {
            b.add_transition(
                format!("{name}{i}"),
                event,
                format!("{name}{}", (i + 1) % k),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn identical_structure_different_names_is_isomorphic() {
        let a = counter("a", "t", 5, 0);
        let b = counter("b", "t", 5, 0);
        let map = isomorphism(&a, &b).unwrap();
        assert_eq!(map.len(), 5);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn different_initial_state_is_still_isomorphic_for_cycles() {
        // A pure cycle looks the same from any starting point.
        let a = counter("a", "t", 4, 0);
        let b = counter("b", "t", 4, 2);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn different_sizes_are_not_isomorphic() {
        let a = counter("a", "t", 3, 0);
        let b = counter("b", "t", 4, 0);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn different_alphabets_are_not_isomorphic() {
        let a = counter("a", "t", 3, 0);
        let b = counter("b", "u", 3, 0);
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn different_structure_same_size_is_not_isomorphic() {
        let a = counter("a", "t", 3, 0);
        let mut bb = DfsmBuilder::new("b");
        bb.add_states(["b0", "b1", "b2"]);
        bb.set_initial("b0");
        bb.add_transition("b0", "t", "b1");
        bb.add_transition("b1", "t", "b0"); // 2-cycle plus a tail
        bb.add_transition("b2", "t", "b0");
        let b = bb.build().unwrap();
        assert!(!are_isomorphic(&a, &b));
    }

    #[test]
    fn mapping_commutes_with_transitions() {
        let a = counter("a", "t", 6, 0);
        let b = counter("b", "t", 6, 0);
        let map = isomorphism(&a, &b).unwrap();
        for s in a.state_ids() {
            for (e, ev) in a.alphabet().iter() {
                let _ = e;
                let lhs = map[a.apply_event(s, ev).index()];
                let rhs = b.apply_event(map[s.index()], ev);
                assert_eq!(lhs, rhs);
            }
        }
    }
}
