//! Error types for the DFSM substrate.

use std::fmt;

use crate::event::Event;
use crate::state::StateId;

/// Errors raised when building or manipulating DFSMs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are described by the variant docs and Display impl
pub enum DfsmError {
    /// The machine has no states.
    NoStates,
    /// No initial state was specified.
    NoInitialState,
    /// A state name was used twice.
    DuplicateState(String),
    /// A transition refers to a state that does not exist.
    UnknownState(String),
    /// A transition refers to an event that is not in the alphabet and the
    /// builder was configured to reject implicit alphabet growth.
    UnknownEvent(String),
    /// The transition function is not total: the given state is missing a
    /// transition for the given event.
    MissingTransition { state: String, event: String },
    /// Two conflicting transitions were declared for the same state/event.
    ConflictingTransition {
        state: String,
        event: String,
        existing: String,
        attempted: String,
    },
    /// A state is not reachable from the initial state.  The paper's model
    /// (Section 2) assumes every state is reachable.
    UnreachableState(String),
    /// A state id is out of range for the machine.
    StateOutOfRange { state: StateId, size: usize },
    /// An event was applied that the machine cannot interpret (only possible
    /// through the strict application API; the lenient API ignores it).
    EventNotInAlphabet(Event),
    /// A machine claimed to be less than or equal to another is not
    /// (Algorithm 1 detected an inconsistency during lock-step simulation).
    NotLessOrEqual { reason: String },
    /// The streaming product builder's spill arena failed to read back a
    /// page it had previously written (the underlying I/O error, rendered).
    Spill(String),
}

impl fmt::Display for DfsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsmError::NoStates => write!(f, "machine has no states"),
            DfsmError::NoInitialState => write!(f, "machine has no initial state"),
            DfsmError::DuplicateState(s) => write!(f, "duplicate state name `{s}`"),
            DfsmError::UnknownState(s) => write!(f, "unknown state `{s}`"),
            DfsmError::UnknownEvent(e) => write!(f, "unknown event `{e}`"),
            DfsmError::MissingTransition { state, event } => {
                write!(f, "missing transition from `{state}` on event `{event}`")
            }
            DfsmError::ConflictingTransition {
                state,
                event,
                existing,
                attempted,
            } => write!(
                f,
                "conflicting transition from `{state}` on `{event}`: already goes to `{existing}`, attempted `{attempted}`"
            ),
            DfsmError::UnreachableState(s) => write!(f, "state `{s}` is unreachable"),
            DfsmError::StateOutOfRange { state, size } => {
                write!(f, "state {state} out of range for machine of size {size}")
            }
            DfsmError::EventNotInAlphabet(e) => {
                write!(f, "event `{e}` is not in the machine's alphabet")
            }
            DfsmError::NotLessOrEqual { reason } => {
                write!(f, "machine is not less than or equal to the reference machine: {reason}")
            }
            DfsmError::Spill(reason) => {
                write!(f, "spill arena I/O failure: {reason}")
            }
        }
    }
}

impl std::error::Error for DfsmError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, DfsmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DfsmError::MissingTransition {
            state: "a0".into(),
            event: "0".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("a0"));
        assert!(msg.contains('0'));

        let e = DfsmError::ConflictingTransition {
            state: "s".into(),
            event: "e".into(),
            existing: "x".into(),
            attempted: "y".into(),
        };
        assert!(e.to_string().contains("conflicting"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&DfsmError::NoStates);
    }
}
