//! The deterministic finite state machine type.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use crate::error::{DfsmError, Result};
use crate::event::{Alphabet, Event, EventId};
use crate::state::{StateId, StateInfo};

/// A deterministic finite state machine (Definition 1 of the paper).
///
/// A DFSM is a quadruple `(X, Σ, δ, x0)`:
///
/// * `X` — a finite set of states ([`Dfsm::states`]),
/// * `Σ` — a finite event alphabet ([`Dfsm::alphabet`]),
/// * `δ : X × Σ → X` — a *total* transition function ([`Dfsm::next`]),
/// * `x0` — the initial state ([`Dfsm::initial`]).
///
/// Following the system model of Section 2, events that are not in the
/// machine's alphabet are ignored when applied through
/// [`Dfsm::apply_event`]: the machine stays in its current state.  This is
/// how a set of machines with different alphabets consumes a single shared
/// event stream.
///
/// `Dfsm` values are immutable once built; use [`crate::DfsmBuilder`] to
/// construct them.  Execution state (the "current state" that faults erase
/// or corrupt) lives outside the machine, in [`crate::Executor`] or in the
/// `fsm-distsys` servers, mirroring the paper's observation that faults
/// affect the execution state while "the underlying DFSM remains intact".
#[derive(Clone, PartialEq, Eq)]
pub struct Dfsm {
    name: String,
    states: Vec<StateInfo>,
    alphabet: Alphabet,
    /// `transitions[s][e]` is the successor of state `s` on event `e`.
    transitions: Vec<Vec<StateId>>,
    initial: StateId,
}

impl Dfsm {
    /// Constructs a machine directly from its parts: state metadata, an
    /// alphabet, a dense transition table (`transitions[s][e]` is the
    /// successor of state `s` on event `e`, with `e` indexing the alphabet
    /// in id order) and an initial state.
    ///
    /// The structural invariants are validated ([`Dfsm::validate`]); for
    /// incremental, name-based construction prefer [`crate::DfsmBuilder`].
    /// This constructor is what quotient and product constructions use when
    /// they already have dense tables.
    pub fn from_parts(
        name: String,
        states: Vec<StateInfo>,
        alphabet: Alphabet,
        transitions: Vec<Vec<StateId>>,
        initial: StateId,
    ) -> Result<Self> {
        let m = Dfsm {
            name,
            states,
            alphabet,
            transitions,
            initial,
        };
        m.validate()?;
        Ok(m)
    }

    /// Checks the structural invariants of the machine: at least one state,
    /// a total transition table with in-range targets, and an in-range
    /// initial state.
    pub fn validate(&self) -> Result<()> {
        if self.states.is_empty() {
            return Err(DfsmError::NoStates);
        }
        if self.initial.index() >= self.states.len() {
            return Err(DfsmError::StateOutOfRange {
                state: self.initial,
                size: self.states.len(),
            });
        }
        if self.transitions.len() != self.states.len() {
            return Err(DfsmError::MissingTransition {
                state: format!("<table has {} rows>", self.transitions.len()),
                event: "<any>".into(),
            });
        }
        for (s, row) in self.transitions.iter().enumerate() {
            if row.len() != self.alphabet.len() {
                return Err(DfsmError::MissingTransition {
                    state: self.states[s].name.clone(),
                    event: format!("<row has {} entries>", row.len()),
                });
            }
            for &t in row {
                if t.index() >= self.states.len() {
                    return Err(DfsmError::StateOutOfRange {
                        state: t,
                        size: self.states.len(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The machine's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy of this machine with a different name.
    pub fn renamed(&self, name: impl Into<String>) -> Dfsm {
        let mut m = self.clone();
        m.name = name.into();
        m
    }

    /// Number of states (`|A|` in the paper).
    pub fn size(&self) -> usize {
        self.states.len()
    }

    /// The state metadata, indexed by [`StateId`].
    pub fn states(&self) -> &[StateInfo] {
        &self.states
    }

    /// Metadata for one state.
    pub fn state(&self, id: StateId) -> &StateInfo {
        &self.states[id.index()]
    }

    /// The name of one state.
    pub fn state_name(&self, id: StateId) -> &str {
        &self.states[id.index()].name
    }

    /// Looks up a state id by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s.name == name).map(StateId)
    }

    /// The event alphabet `Σ`.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The initial state `x0`.
    pub fn initial(&self) -> StateId {
        self.initial
    }

    /// Iterator over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len()).map(StateId)
    }

    /// The transition function `δ` for an event already resolved to this
    /// machine's alphabet.
    pub fn next(&self, state: StateId, event: EventId) -> StateId {
        self.transitions[state.index()][event.index()]
    }

    /// Applies an event by name.  Events outside the machine's alphabet are
    /// ignored (the machine stays put), per the system model of Section 2.
    pub fn apply_event(&self, state: StateId, event: &Event) -> StateId {
        match self.alphabet.id_of(event) {
            Some(id) => self.next(state, id),
            None => state,
        }
    }

    /// Applies an event by name, returning an error if the event is not in
    /// the machine's alphabet.
    pub fn apply_event_strict(&self, state: StateId, event: &Event) -> Result<StateId> {
        match self.alphabet.id_of(event) {
            Some(id) => Ok(self.next(state, id)),
            None => Err(DfsmError::EventNotInAlphabet(event.clone())),
        }
    }

    /// Runs a sequence of events from the initial state and returns the
    /// final state.  Unknown events are ignored.
    pub fn run<'a, I: IntoIterator<Item = &'a Event>>(&self, events: I) -> StateId {
        self.run_from(self.initial, events)
    }

    /// Runs a sequence of events from an arbitrary state.
    pub fn run_from<'a, I: IntoIterator<Item = &'a Event>>(
        &self,
        start: StateId,
        events: I,
    ) -> StateId {
        let mut s = start;
        for e in events {
            s = self.apply_event(s, e);
        }
        s
    }

    /// Runs a sequence of events and returns every intermediate state,
    /// starting with `start` (so the result has `len(events) + 1` entries).
    pub fn trace_from<'a, I: IntoIterator<Item = &'a Event>>(
        &self,
        start: StateId,
        events: I,
    ) -> Vec<StateId> {
        let mut out = vec![start];
        let mut s = start;
        for e in events {
            s = self.apply_event(s, e);
            out.push(s);
        }
        out
    }

    /// The set of states reachable from the initial state.
    pub fn reachable_states(&self) -> BTreeSet<StateId> {
        let mut seen = vec![false; self.size()];
        let mut queue = VecDeque::new();
        seen[self.initial.index()] = true;
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            for (e, _) in self.alphabet.iter() {
                let t = self.next(s, e);
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    queue.push_back(t);
                }
            }
        }
        seen.iter()
            .enumerate()
            .filter(|(_, &v)| v)
            .map(|(i, _)| StateId(i))
            .collect()
    }

    /// Whether every state is reachable from the initial state (the paper's
    /// model assumes this).
    pub fn all_reachable(&self) -> bool {
        self.reachable_states().len() == self.size()
    }

    /// Returns an error naming an unreachable state, if any.
    pub fn check_all_reachable(&self) -> Result<()> {
        let reach = self.reachable_states();
        for id in self.state_ids() {
            if !reach.contains(&id) {
                return Err(DfsmError::UnreachableState(self.state_name(id).into()));
            }
        }
        Ok(())
    }

    /// Returns a copy of this machine restricted to its reachable states.
    /// State names are preserved; ids are re-assigned densely in BFS order
    /// from the initial state.
    pub fn trimmed(&self) -> Dfsm {
        let mut order = Vec::new();
        let mut index_of = vec![usize::MAX; self.size()];
        let mut queue = VecDeque::new();
        index_of[self.initial.index()] = 0;
        order.push(self.initial);
        queue.push_back(self.initial);
        while let Some(s) = queue.pop_front() {
            for (e, _) in self.alphabet.iter() {
                let t = self.next(s, e);
                if index_of[t.index()] == usize::MAX {
                    index_of[t.index()] = order.len();
                    order.push(t);
                    queue.push_back(t);
                }
            }
        }
        let states: Vec<StateInfo> = order
            .iter()
            .map(|&s| self.states[s.index()].clone())
            .collect();
        let transitions: Vec<Vec<StateId>> = order
            .iter()
            .map(|&s| {
                self.alphabet
                    .iter()
                    .map(|(e, _)| StateId(index_of[self.next(s, e).index()]))
                    .collect()
            })
            .collect();
        Dfsm {
            name: self.name.clone(),
            states,
            alphabet: self.alphabet.clone(),
            transitions,
            initial: StateId(0),
        }
    }

    /// Raw access to the transition table (`table[s][e]`), used by the
    /// fusion algorithms which iterate over all states and events densely.
    pub fn transition_table(&self) -> &[Vec<StateId>] {
        &self.transitions
    }

    /// Returns the successor state names of a state as `(event, successor)`
    /// pairs, useful for debugging and display.
    pub fn successors(&self, state: StateId) -> Vec<(&Event, StateId)> {
        self.alphabet
            .iter()
            .map(|(id, ev)| (ev, self.next(state, id)))
            .collect()
    }

    /// Number of transitions (states × events).
    pub fn transition_count(&self) -> usize {
        self.size() * self.alphabet.len()
    }
}

impl fmt::Debug for Dfsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dfsm({}, {} states, {} events)",
            self.name,
            self.size(),
            self.alphabet.len()
        )
    }
}

impl fmt::Display for Dfsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DFSM {} ({} states, initial = {})",
            self.name,
            self.size(),
            self.state_name(self.initial)
        )?;
        for s in self.state_ids() {
            write!(f, "  {}", self.state_name(s))?;
            for (e, ev) in self.alphabet.iter() {
                write!(f, "  --{}-->{}", ev, self.state_name(self.next(s, e)))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsmBuilder;

    fn mod3_counter() -> Dfsm {
        // Counts occurrences of event "tick" modulo 3; ignores "other".
        let mut b = DfsmBuilder::new("mod3");
        b.add_states(["c0", "c1", "c2"]);
        b.set_initial("c0");
        b.add_transition("c0", "tick", "c1");
        b.add_transition("c1", "tick", "c2");
        b.add_transition("c2", "tick", "c0");
        b.build().unwrap()
    }

    #[test]
    fn apply_event_ignores_unknown_events() {
        let m = mod3_counter();
        let s = m.initial();
        assert_eq!(m.apply_event(s, &Event::new("noise")), s);
        assert_eq!(m.apply_event(s, &Event::new("tick")), StateId(1));
        assert!(m.apply_event_strict(s, &Event::new("noise")).is_err());
    }

    #[test]
    fn run_counts_modulo_three() {
        let m = mod3_counter();
        let tick = Event::new("tick");
        let noise = Event::new("noise");
        let seq = [
            tick.clone(),
            noise.clone(),
            tick.clone(),
            tick.clone(),
            noise.clone(),
            tick.clone(),
        ];
        // 4 ticks => state c1.
        assert_eq!(m.run(seq.iter()), StateId(1));
    }

    #[test]
    fn trace_has_one_more_entry_than_events() {
        let m = mod3_counter();
        let tick = Event::new("tick");
        let seq = [tick.clone(), tick.clone()];
        let trace = m.trace_from(m.initial(), seq.iter());
        assert_eq!(trace, vec![StateId(0), StateId(1), StateId(2)]);
    }

    #[test]
    fn reachability_and_trim() {
        let m = mod3_counter();
        assert!(m.all_reachable());
        assert!(m.check_all_reachable().is_ok());
        let t = m.trimmed();
        assert_eq!(t.size(), 3);
        assert_eq!(t.initial(), StateId(0));
    }

    #[test]
    fn state_lookup_by_name() {
        let m = mod3_counter();
        assert_eq!(m.state_by_name("c2"), Some(StateId(2)));
        assert_eq!(m.state_by_name("zz"), None);
        assert_eq!(m.state_name(StateId(1)), "c1");
    }

    #[test]
    fn display_and_debug_mention_name() {
        let m = mod3_counter();
        assert!(format!("{m:?}").contains("mod3"));
        assert!(format!("{m}").contains("c0"));
        assert_eq!(m.transition_count(), 3);
        assert_eq!(m.successors(StateId(0)).len(), 1);
    }

    #[test]
    fn renamed_keeps_structure() {
        let m = mod3_counter().renamed("other");
        assert_eq!(m.name(), "other");
        assert_eq!(m.size(), 3);
    }

    #[test]
    fn validate_rejects_out_of_range_initial() {
        let m = mod3_counter();
        let bad = Dfsm {
            initial: StateId(99),
            ..m
        };
        assert!(matches!(
            bad.validate(),
            Err(DfsmError::StateOutOfRange { .. })
        ));
    }
}
