//! Events and alphabets.
//!
//! Events are the inputs applied to every machine in the system by the
//! environment (Section 2 of the paper).  A machine only reacts to events
//! that belong to its own alphabet; all other events are ignored.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An input event.
///
/// Events are identified by name.  Cloning an [`Event`] is cheap (the name is
/// reference counted), and events compare, hash and order by name, so the
/// same logical event can be shared across many machines with different
/// alphabets.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event(Arc<str>);

impl Event {
    /// Creates a new event with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Event(Arc::from(name.as_ref()))
    }

    /// The name of the event.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Event({})", self.0)
    }
}

impl From<&str> for Event {
    fn from(s: &str) -> Self {
        Event::new(s)
    }
}

impl From<String> for Event {
    fn from(s: String) -> Self {
        Event::new(s)
    }
}

/// Index of an event inside an [`Alphabet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub usize);

impl EventId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An ordered set of events.
///
/// Alphabets assign a dense [`EventId`] to every event so that transition
/// tables can be stored as flat vectors.  The order of events is the order of
/// insertion, which keeps transition tables reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    events: Vec<Event>,
    index: BTreeMap<Event, EventId>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet from an iterator of events, ignoring duplicates.
    pub fn from_events<I, E>(events: I) -> Self
    where
        I: IntoIterator<Item = E>,
        E: Into<Event>,
    {
        let mut a = Self::new();
        for e in events {
            a.insert(e.into());
        }
        a
    }

    /// Inserts an event, returning its id.  Inserting an existing event
    /// returns the existing id.
    pub fn insert(&mut self, event: Event) -> EventId {
        if let Some(&id) = self.index.get(&event) {
            return id;
        }
        let id = EventId(self.events.len());
        self.events.push(event.clone());
        self.index.insert(event, id);
        id
    }

    /// Looks up an event id by event.
    pub fn id_of(&self, event: &Event) -> Option<EventId> {
        self.index.get(event).copied()
    }

    /// Looks up an event by id.
    pub fn event(&self, id: EventId) -> Option<&Event> {
        self.events.get(id.0)
    }

    /// Whether the alphabet contains the event.
    pub fn contains(&self, event: &Event) -> bool {
        self.index.contains_key(event)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over `(EventId, &Event)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &Event)> {
        self.events.iter().enumerate().map(|(i, e)| (EventId(i), e))
    }

    /// All events in id order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The union of two alphabets.  Events of `self` keep their relative
    /// order and come first.
    pub fn union(&self, other: &Alphabet) -> Alphabet {
        let mut out = self.clone();
        for e in other.events() {
            out.insert(e.clone());
        }
        out
    }

    /// Union of an arbitrary number of alphabets.
    pub fn union_all<'a, I: IntoIterator<Item = &'a Alphabet>>(alphabets: I) -> Alphabet {
        let mut out = Alphabet::new();
        for a in alphabets {
            for e in a.events() {
                out.insert(e.clone());
            }
        }
        out
    }

    /// The intersection of two alphabets (events present in both).
    pub fn intersection(&self, other: &Alphabet) -> Alphabet {
        Alphabet::from_events(self.events().iter().filter(|e| other.contains(e)).cloned())
    }

    /// Whether the two alphabets share no events.
    pub fn is_disjoint(&self, other: &Alphabet) -> bool {
        self.intersection(other).is_empty()
    }
}

impl<E: Into<Event>> FromIterator<E> for Alphabet {
    fn from_iter<I: IntoIterator<Item = E>>(iter: I) -> Self {
        Alphabet::from_events(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_equality_is_by_name() {
        let a = Event::new("tick");
        let b = Event::new("tick");
        let c = Event::new("tock");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.name(), "tick");
        assert_eq!(format!("{a}"), "tick");
    }

    #[test]
    fn alphabet_assigns_dense_ids_in_insertion_order() {
        let mut a = Alphabet::new();
        let id0 = a.insert(Event::new("x"));
        let id1 = a.insert(Event::new("y"));
        let id0b = a.insert(Event::new("x"));
        assert_eq!(id0, EventId(0));
        assert_eq!(id1, EventId(1));
        assert_eq!(id0, id0b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.event(id1).unwrap().name(), "y");
        assert_eq!(a.id_of(&Event::new("y")), Some(EventId(1)));
        assert_eq!(a.id_of(&Event::new("z")), None);
    }

    #[test]
    fn alphabet_union_preserves_left_order() {
        let a = Alphabet::from_events(["0", "1"]);
        let b = Alphabet::from_events(["1", "2"]);
        let u = a.union(&b);
        let names: Vec<_> = u.events().iter().map(|e| e.name().to_string()).collect();
        assert_eq!(names, vec!["0", "1", "2"]);
    }

    #[test]
    fn alphabet_union_all_and_intersection() {
        let a = Alphabet::from_events(["0", "1"]);
        let b = Alphabet::from_events(["1", "2"]);
        let c = Alphabet::from_events(["2", "3"]);
        let u = Alphabet::union_all([&a, &b, &c]);
        assert_eq!(u.len(), 4);
        let i = a.intersection(&b);
        assert_eq!(i.len(), 1);
        assert!(i.contains(&Event::new("1")));
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&c));
    }

    #[test]
    fn alphabet_from_iterator_dedups() {
        let a: Alphabet = ["a", "b", "a", "c"].into_iter().collect();
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn empty_alphabet() {
        let a = Alphabet::new();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
        assert_eq!(a.iter().count(), 0);
    }
}
