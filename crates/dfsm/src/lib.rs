//! # fsm-dfsm — deterministic finite state machine substrate
//!
//! This crate provides the DFSM model used throughout the fusion-based
//! fault-tolerance library (a reproduction of *"A Fusion-based Approach for
//! Tolerating Faults in Finite State Machines"*, Ogale, Balasubramanian and
//! Garg, IPDPS 2009):
//!
//! * [`Dfsm`] — the machine quadruple `(X, Σ, δ, x0)` of Definition 1, with
//!   a *total* transition function and the convention that events outside a
//!   machine's alphabet are ignored (Section 2's system model).
//! * [`DfsmBuilder`] — checked construction of machines.
//! * [`Executor`] — the mutable execution state that crash faults erase and
//!   Byzantine faults corrupt.
//! * [`ReachableProduct`] — the reachable cross product `R(A)` / `⊤`
//!   (Section 2), the machine every fusion is a quotient of.
//! * [`minimize_by_output`] / [`minimize_by_labels`] — Moore-style
//!   reduction, reflecting the paper's assumption that inputs are "reduced a
//!   priori".
//! * [`isomorphism`] — structural equality of machines up to state renaming,
//!   used to check generated fusions against the paper's hand-derived ones.
//! * [`to_dot`] — Graphviz export.
//!
//! Higher layers:
//!
//! * `fsm-fusion-core` implements closed partitions, fault graphs and the
//!   fusion generation / recovery algorithms on top of this crate.
//! * `fsm-machines` provides the concrete machines used in the paper's
//!   evaluation (MESI, TCP, counters, …).
//! * `fsm-distsys` simulates the distributed system of Section 2.
//!
//! ## Quick example
//!
//! ```
//! use fsm_dfsm::{DfsmBuilder, Event, ReachableProduct};
//!
//! // The two mod-3 counters of the paper's Figure 1.
//! let mut a = DfsmBuilder::new("A");
//! a.add_states(["a0", "a1", "a2"]);
//! a.set_initial("a0");
//! for i in 0..3 {
//!     a.add_transition(format!("a{i}"), "0", format!("a{}", (i + 1) % 3));
//!     a.add_transition(format!("a{i}"), "1", format!("a{i}"));
//! }
//! let mut b = DfsmBuilder::new("B");
//! b.add_states(["b0", "b1", "b2"]);
//! b.set_initial("b0");
//! for i in 0..3 {
//!     b.add_transition(format!("b{i}"), "1", format!("b{}", (i + 1) % 3));
//!     b.add_transition(format!("b{i}"), "0", format!("b{i}"));
//! }
//! let a = a.build().unwrap();
//! let b = b.build().unwrap();
//!
//! // Their reachable cross product has 9 states (Figure 1(iii)).
//! let top = ReachableProduct::new(&[a.clone(), b.clone()]).unwrap();
//! assert_eq!(top.size(), 9);
//!
//! // Running the same events on the product and the parts agrees.
//! let events = [Event::new("0"), Event::new("1"), Event::new("0")];
//! let t = top.top().run(events.iter());
//! assert_eq!(top.component_state(t, 0), a.run(events.iter()));
//! assert_eq!(top.component_state(t, 1), b.run(events.iter()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod arena;
mod builder;
mod dfsm;
mod dot;
mod error;
mod event;
mod executor;
mod isomorphism;
mod minimize;
mod product;
mod state;
mod workers;

pub use arena::PageArena;
pub use builder::DfsmBuilder;
pub use dfsm::Dfsm;
pub use dot::{to_dot, to_dot_default, DotOptions};
pub use error::{DfsmError, Result};
pub use event::{Alphabet, Event, EventId};
pub use executor::Executor;
pub use isomorphism::{are_isomorphic, isomorphism};
pub use minimize::{minimize_by_labels, minimize_by_output, Minimized};
pub use product::{
    FactorExtension, ProductBuildStats, ProductBuilder, ProductStrategy, ReachableProduct,
    DEFAULT_DENSE_LIMIT, DEFAULT_MEM_BUDGET,
};
pub use state::{StateId, StateInfo};
pub use workers::{
    configured_dense_limit, configured_mem_budget, configured_workers, parse_byte_size,
    parse_workers,
};
