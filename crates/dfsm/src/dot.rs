//! Graphviz DOT export for DFSMs.
//!
//! Useful for visually inspecting the machines, the reachable cross product
//! and the generated fusion machines (the paper's Figures 1–3 are exactly
//! such drawings).

use std::fmt::Write as _;

use crate::dfsm::Dfsm;

/// Options controlling DOT output.
#[derive(Debug, Clone)]
pub struct DotOptions {
    /// Graph orientation; `true` renders left-to-right.
    pub horizontal: bool,
    /// Whether to merge parallel edges between the same pair of states into
    /// a single edge labelled with all events.
    pub merge_parallel_edges: bool,
    /// Whether to include self-loops.
    pub show_self_loops: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            horizontal: true,
            merge_parallel_edges: true,
            show_self_loops: false,
        }
    }
}

/// Renders the machine as a Graphviz DOT digraph.
pub fn to_dot(machine: &Dfsm, options: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(machine.name()));
    if options.horizontal {
        let _ = writeln!(out, "  rankdir=LR;");
    }
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  __start [shape=point, label=\"\"];");
    let _ = writeln!(
        out,
        "  __start -> \"{}\";",
        sanitize(machine.state_name(machine.initial()))
    );
    for s in machine.state_ids() {
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\"];",
            sanitize(machine.state_name(s)),
            sanitize(machine.state_name(s))
        );
    }
    for s in machine.state_ids() {
        if options.merge_parallel_edges {
            // Group events by destination.
            let mut by_dest: std::collections::BTreeMap<usize, Vec<String>> = Default::default();
            for (e, ev) in machine.alphabet().iter() {
                let t = machine.next(s, e);
                by_dest.entry(t.index()).or_default().push(ev.to_string());
            }
            for (t, events) in by_dest {
                if t == s.index() && !options.show_self_loops {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{}\"];",
                    sanitize(machine.state_name(s)),
                    sanitize(machine.state_name(crate::state::StateId(t))),
                    sanitize(&events.join(","))
                );
            }
        } else {
            for (e, ev) in machine.alphabet().iter() {
                let t = machine.next(s, e);
                if t == s && !options.show_self_loops {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{}\"];",
                    sanitize(machine.state_name(s)),
                    sanitize(machine.state_name(t)),
                    sanitize(ev.name())
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders with default options.
pub fn to_dot_default(machine: &Dfsm) -> String {
    to_dot(machine, &DotOptions::default())
}

fn sanitize(s: &str) -> String {
    s.replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfsmBuilder;

    fn toggle() -> Dfsm {
        let mut b = DfsmBuilder::new("toggle");
        b.add_states(["off", "on"]);
        b.set_initial("off");
        b.add_transition("off", "press", "on");
        b.add_transition("on", "press", "off");
        b.add_self_loops("noop");
        b.build().unwrap()
    }

    #[test]
    fn dot_output_contains_states_and_edges() {
        let dot = to_dot_default(&toggle());
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"off\" -> \"on\""));
        assert!(dot.contains("\"on\" -> \"off\""));
        assert!(dot.contains("__start -> \"off\""));
        // Self loops hidden by default.
        assert!(!dot.contains("\"off\" -> \"off\""));
    }

    #[test]
    fn dot_can_show_self_loops_and_unmerged_edges() {
        let opts = DotOptions {
            horizontal: false,
            merge_parallel_edges: false,
            show_self_loops: true,
        };
        let dot = to_dot(&toggle(), &opts);
        assert!(dot.contains("\"off\" -> \"off\" [label=\"noop\"]"));
        assert!(!dot.contains("rankdir"));
    }

    #[test]
    fn dot_escapes_quotes_in_names() {
        let mut b = DfsmBuilder::new("weird\"name");
        b.add_state("a\"b");
        b.set_initial("a\"b");
        b.add_transition("a\"b", "e", "a\"b");
        let m = b.build().unwrap();
        let dot = to_dot_default(&m);
        assert!(dot.contains("\\\""));
    }
}
