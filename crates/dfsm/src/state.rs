//! States and state identifiers.

use std::fmt;

/// Index of a state inside a [`crate::Dfsm`].
///
/// State ids are dense indices `0..n` assigned in insertion order by the
/// [`crate::DfsmBuilder`].  The initial state may have any id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub usize);

impl StateId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for StateId {
    fn from(i: usize) -> Self {
        StateId(i)
    }
}

/// Metadata attached to a state: a human-readable name and an optional
/// output label.
///
/// Output labels are not part of the paper's DFSM quadruple, but they are
/// useful when minimizing machines (Moore-style reduction, Section 1's
/// "reduced a priori" assumption) and when pretty-printing protocol machines
/// such as MESI or TCP.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateInfo {
    /// Human-readable state name, e.g. `"ESTABLISHED"` or `"a0"`.
    pub name: String,
    /// Optional output label used for Moore-style minimization.
    pub output: Option<String>,
}

impl StateInfo {
    /// Creates state metadata with no output label.
    pub fn named(name: impl Into<String>) -> Self {
        StateInfo {
            name: name.into(),
            output: None,
        }
    }

    /// Creates state metadata with an output label.
    pub fn with_output(name: impl Into<String>, output: impl Into<String>) -> Self {
        StateInfo {
            name: name.into(),
            output: Some(output.into()),
        }
    }
}

impl fmt::Display for StateInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.output {
            Some(o) => write!(f, "{}[{}]", self.name, o),
            None => f.write_str(&self.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_id_roundtrip() {
        let s = StateId(7);
        assert_eq!(s.index(), 7);
        assert_eq!(StateId::from(7), s);
        assert_eq!(format!("{s}"), "s7");
    }

    #[test]
    fn state_info_display() {
        assert_eq!(format!("{}", StateInfo::named("idle")), "idle");
        assert_eq!(
            format!("{}", StateInfo::with_output("idle", "0")),
            "idle[0]"
        );
    }

    #[test]
    fn state_info_equality() {
        assert_eq!(StateInfo::named("a"), StateInfo::named("a"));
        assert_ne!(StateInfo::named("a"), StateInfo::with_output("a", "x"));
    }
}
