//! A memory-budgeted, spill-capable page arena for the streaming product
//! builder.
//!
//! [`crate::ProductBuilder`]'s streaming strategy discovers product states
//! one at a time and appends each state's `k` successor ids here instead of
//! growing an all-in-RAM `Vec<Vec<StateId>>`.  The arena seals fixed-size
//! pages of `u32` elements as they fill; once the resident set reaches the
//! configured byte budget, newly sealed pages are written to an anonymous
//! temp file and only their `(offset, len)` is retained.  When the BFS
//! finishes, [`PageArena::into_rows`] replays resident and spilled pages in
//! append order to assemble the final transition table — so the *peak*
//! resident footprint during construction is the budget, not the output
//! size, and the output-sized allocation happens only once, after the BFS
//! scratch is gone.
//!
//! Spilling is best-effort: if the temp file cannot be created or a page
//! write fails, the page stays resident (the budget becomes advisory) and
//! the failure is counted in [`PageArena::spill_fallbacks`] — construction
//! never fails because `/tmp` does.  Read-back errors of pages that *were*
//! written are real data loss and surface as [`DfsmError::Spill`].  The
//! temp file is unlinked when the arena is dropped.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::{DfsmError, Result};

/// Sealed pages target this many bytes; tiny budgets shrink pages so at
/// least two fit in half the budget.
const TARGET_PAGE_BYTES: u64 = 64 * 1024;

/// Pages never shrink below this many bytes, however small the budget.
const MIN_PAGE_BYTES: u64 = 1024;

static SPILL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A sealed page: either still resident or swapped out to the spill file.
#[derive(Debug)]
enum PageSlot {
    Resident(Vec<u32>),
    Spilled { offset: u64, len: usize },
}

/// The spill file, unlinked on drop.
#[derive(Debug)]
struct SpillFile {
    file: File,
    path: PathBuf,
    write_pos: u64,
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// An append-only sequence of `u32` elements with a resident-memory budget
/// (see the module docs).
#[derive(Debug)]
pub struct PageArena {
    /// Elements per sealed page.
    page_len: usize,
    /// Sealed pages allowed to stay resident before spilling starts.
    max_resident: usize,
    pages: Vec<PageSlot>,
    /// The open page being appended to.
    current: Vec<u32>,
    /// Sealed pages currently resident.
    resident: usize,
    len: usize,
    spill: Option<SpillFile>,
    spill_attempted: bool,
    spilled_pages: usize,
    spilled_bytes: u64,
    spill_fallbacks: usize,
    /// Reused byte buffer for page serialization.
    io_buf: Vec<u8>,
}

impl PageArena {
    /// An arena aiming to keep its sealed resident pages within
    /// `budget_bytes / 2` (the other half is headroom for the open page,
    /// the caller's per-row scratch, and read-back buffers).
    pub fn with_budget(budget_bytes: u64) -> Self {
        let page_bytes = (budget_bytes / 4).clamp(MIN_PAGE_BYTES, TARGET_PAGE_BYTES);
        let page_len = (page_bytes / 4).max(1) as usize;
        let max_resident = ((budget_bytes / 2) / page_bytes).max(1) as usize;
        PageArena {
            page_len,
            max_resident,
            pages: Vec::new(),
            current: Vec::with_capacity(page_len),
            resident: 0,
            len: 0,
            spill: None,
            spill_attempted: false,
            spilled_pages: 0,
            spilled_bytes: 0,
            spill_fallbacks: 0,
            io_buf: Vec::new(),
        }
    }

    /// Total elements appended.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements per sealed page.
    pub fn page_len(&self) -> usize {
        self.page_len
    }

    /// Sealed pages written to the spill file so far.
    pub fn spilled_pages(&self) -> usize {
        self.spilled_pages
    }

    /// Bytes written to the spill file so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    /// Pages that should have spilled but stayed resident because the
    /// spill file could not be created or written.
    pub fn spill_fallbacks(&self) -> usize {
        self.spill_fallbacks
    }

    /// Appends one element, sealing (and possibly spilling) the open page
    /// when it fills.
    pub fn push(&mut self, v: u32) {
        self.current.push(v);
        self.len += 1;
        if self.current.len() == self.page_len {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let page = std::mem::replace(&mut self.current, Vec::with_capacity(self.page_len));
        if self.resident < self.max_resident {
            self.resident += 1;
            self.pages.push(PageSlot::Resident(page));
            return;
        }
        match self.write_page(&page) {
            Some((offset, len)) => {
                self.spilled_pages += 1;
                self.spilled_bytes += 4 * len as u64;
                self.pages.push(PageSlot::Spilled { offset, len });
            }
            None => {
                self.spill_fallbacks += 1;
                self.resident += 1;
                self.pages.push(PageSlot::Resident(page));
            }
        }
    }

    /// Writes a page to the spill file, returning its `(offset, len)`, or
    /// `None` when the file cannot be created or written.
    fn write_page(&mut self, page: &[u32]) -> Option<(u64, usize)> {
        if self.spill.is_none() && !self.spill_attempted {
            self.spill_attempted = true;
            self.spill = open_spill_file();
        }
        let spill = self.spill.as_mut()?;
        self.io_buf.clear();
        for &v in page {
            self.io_buf.extend_from_slice(&v.to_le_bytes());
        }
        let offset = spill.write_pos;
        match spill
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| spill.file.write_all(&self.io_buf))
        {
            Ok(()) => {
                spill.write_pos += self.io_buf.len() as u64;
                Some((offset, page.len()))
            }
            Err(_) => None,
        }
    }

    /// Consumes the arena, replaying every page in append order and
    /// chunking the elements into rows of `k`.  The element count must be
    /// an exact multiple of `k`.
    pub fn into_rows(mut self, k: usize) -> Result<Vec<Vec<u32>>> {
        debug_assert!(k > 0 && self.len % k == 0);
        let mut rows = Vec::with_capacity(self.len / k);
        let mut row = Vec::with_capacity(k);
        let pages = std::mem::take(&mut self.pages);
        let emit = |vals: &[u32], rows: &mut Vec<Vec<u32>>, row: &mut Vec<u32>| {
            for &v in vals {
                row.push(v);
                if row.len() == k {
                    rows.push(std::mem::replace(row, Vec::with_capacity(k)));
                }
            }
        };
        let mut page_buf: Vec<u32> = Vec::new();
        for slot in pages {
            match slot {
                PageSlot::Resident(page) => emit(&page, &mut rows, &mut row),
                PageSlot::Spilled { offset, len } => {
                    self.read_page(offset, len, &mut page_buf)?;
                    emit(&page_buf, &mut rows, &mut row);
                }
            }
        }
        emit(&std::mem::take(&mut self.current), &mut rows, &mut row);
        debug_assert!(row.is_empty());
        Ok(rows)
    }

    fn read_page(&mut self, offset: u64, len: usize, out: &mut Vec<u32>) -> Result<()> {
        let spill = self
            .spill
            .as_mut()
            .ok_or_else(|| DfsmError::Spill("spill file vanished".into()))?;
        self.io_buf.clear();
        self.io_buf.resize(4 * len, 0);
        spill
            .file
            .seek(SeekFrom::Start(offset))
            .and_then(|_| spill.file.read_exact(&mut self.io_buf))
            .map_err(|e| DfsmError::Spill(e.to_string()))?;
        out.clear();
        out.extend(
            self.io_buf
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
        Ok(())
    }
}

fn open_spill_file() -> Option<SpillFile> {
    let dir = std::env::temp_dir();
    let id = SPILL_COUNTER.fetch_add(1, Ordering::Relaxed);
    let path = dir.join(format!(
        "fsm-fusion-spill-{}-{}.bin",
        std::process::id(),
        id
    ));
    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)
        .ok()?;
    Some(SpillFile {
        file,
        path,
        write_pos: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_budget_spills_and_replays_in_order() {
        // Pages of MIN_PAGE_BYTES (256 elements), 1 resident page: pushing
        // 10 pages' worth must spill most of them and still replay exactly.
        let mut arena = PageArena::with_budget(2 * MIN_PAGE_BYTES);
        assert_eq!(arena.page_len(), 256);
        let total = 2560usize;
        for v in 0..total as u32 {
            arena.push(v);
        }
        assert!(arena.spilled_pages() > 0, "expected spilling");
        assert_eq!(arena.spill_fallbacks(), 0);
        assert_eq!(arena.len(), total);
        let rows = arena.into_rows(4).unwrap();
        assert_eq!(rows.len(), total / 4);
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                assert_eq!(v as usize, r * 4 + c);
            }
        }
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let mut arena = PageArena::with_budget(2 * MIN_PAGE_BYTES);
        for v in 0..4096u32 {
            arena.push(v);
        }
        assert!(arena.spilled_pages() > 0);
        let path = arena.spill.as_ref().unwrap().path.clone();
        assert!(path.exists());
        drop(arena);
        assert!(!path.exists());
    }

    #[test]
    fn large_budget_never_touches_disk() {
        let mut arena = PageArena::with_budget(64 << 20);
        for v in 0..100_000u32 {
            arena.push(v);
        }
        assert_eq!(arena.spilled_pages(), 0);
        assert_eq!(arena.spilled_bytes(), 0);
        let rows = arena.into_rows(5).unwrap();
        assert_eq!(rows.len(), 20_000);
        assert_eq!(rows[19_999][4], 99_999);
    }

    #[test]
    fn partial_trailing_page_is_replayed() {
        let mut arena = PageArena::with_budget(2 * MIN_PAGE_BYTES);
        // Not a multiple of the page length, but a multiple of k = 3.
        for v in 0..999u32 {
            arena.push(v);
        }
        let rows = arena.into_rows(3).unwrap();
        assert_eq!(rows.len(), 333);
        assert_eq!(rows[332], vec![996, 997, 998]);
    }
}
