//! The `FSM_FUSION_*` environment knobs shared across the workspace.
//!
//! One process-wide convention selects the parallel engines everywhere: the
//! reachable-product builder in this crate
//! ([`crate::ReachableProduct::new`]) and the Algorithm-2 / lattice engines
//! in `fsm-fusion-core` (which re-exports [`configured_workers`]) all
//! consult the same variables, so a test suite or deployment opts a whole
//! pipeline into parallelism with a single `export`.  The same module hosts
//! the sizing knobs of the product builder: `FSM_FUSION_DENSE_LIMIT` (the
//! dense-interner crossover) and `FSM_FUSION_MEM_BUDGET` (the streaming
//! build's resident-memory budget).  Every knob follows the established
//! precedence: explicit builder/config call > environment snapshot >
//! default.

/// Worker count requested through the `FSM_FUSION_WORKERS` environment
/// variable: unset, empty, `0` or `1` select the sequential paths, `auto`
/// selects [`std::thread::available_parallelism`], and any other number is
/// used as given.  Unparseable values fall back to sequential.
pub fn configured_workers() -> usize {
    match std::env::var("FSM_FUSION_WORKERS") {
        Ok(v) => parse_workers(&v),
        Err(_) => 1,
    }
}

/// The `FSM_FUSION_WORKERS` value convention, as a pure function so the
/// parsing rules are testable (and reusable by `fsm-fusion-core`'s
/// `FusionConfig`) without mutating the process environment.
pub fn parse_workers(value: &str) -> usize {
    match value.trim() {
        "" | "0" | "1" => 1,
        "auto" => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        s => s.parse().unwrap_or(1),
    }
}

/// Dense-interner limit requested through `FSM_FUSION_DENSE_LIMIT`, or
/// `None` when the variable is unset/unparseable (callers then fall back
/// to `ProductBuilder`'s compiled-in default).  Accepts the same byte-size
/// grammar as [`parse_byte_size`], interpreted as a *state count* — plain
/// numbers are counts, and `k`/`m`/`g` suffixes scale by 2¹⁰/2²⁰/2³⁰.
pub fn configured_dense_limit() -> Option<u64> {
    std::env::var("FSM_FUSION_DENSE_LIMIT")
        .ok()
        .and_then(|v| parse_byte_size(&v))
}

/// Memory budget requested through `FSM_FUSION_MEM_BUDGET` (bytes, with
/// optional `k`/`m`/`g` suffixes), or `None` when unset/unparseable.
pub fn configured_mem_budget() -> Option<u64> {
    std::env::var("FSM_FUSION_MEM_BUDGET")
        .ok()
        .and_then(|v| parse_byte_size(&v))
}

/// The size-value convention shared by `FSM_FUSION_DENSE_LIMIT` and
/// `FSM_FUSION_MEM_BUDGET`, as a pure function so the rules are testable
/// without mutating the process environment: a plain non-negative integer,
/// optionally scaled by a case-insensitive `k`/`m`/`g` (or `kb`/`mb`/`gb`,
/// `kib`/`mib`/`gib`) suffix.  Empty or unparseable values are `None`, as
/// are values whose scaled magnitude overflows `u64`.
pub fn parse_byte_size(value: &str) -> Option<u64> {
    let s = value.trim().to_ascii_lowercase();
    if s.is_empty() {
        return None;
    }
    let (digits, mult) = match s.find(|c: char| !c.is_ascii_digit()) {
        None => (s.as_str(), 1u64),
        Some(pos) => {
            let mult = match &s[pos..] {
                "k" | "kb" | "kib" => 1u64 << 10,
                "m" | "mb" | "mib" => 1u64 << 20,
                "g" | "gb" | "gib" => 1u64 << 30,
                _ => return None,
            };
            (&s[..pos], mult)
        }
    };
    if digits.is_empty() {
        return None;
    }
    digits.parse::<u64>().ok()?.checked_mul(mult)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_workers_follows_the_env_convention() {
        // The parser is a pure function, so the rules are testable without
        // mutating the process environment (other tests in this binary run
        // concurrently).
        for sequential in ["", " ", "0", "1", " 1 ", "garbage", "-3", "2.5"] {
            assert_eq!(parse_workers(sequential), 1, "value {sequential:?}");
        }
        assert_eq!(parse_workers("2"), 2);
        assert_eq!(parse_workers(" 16 "), 16);
        assert!(parse_workers("auto") >= 1);
        // And the env-reading wrapper stays callable.
        assert!(configured_workers() >= 1);
    }

    #[test]
    fn parse_byte_size_follows_the_env_convention() {
        assert_eq!(parse_byte_size("0"), Some(0));
        assert_eq!(parse_byte_size("4194304"), Some(4194304));
        assert_eq!(parse_byte_size(" 64k "), Some(64 << 10));
        assert_eq!(parse_byte_size("64K"), Some(64 << 10));
        assert_eq!(parse_byte_size("3m"), Some(3 << 20));
        assert_eq!(parse_byte_size("3MiB"), Some(3 << 20));
        assert_eq!(parse_byte_size("2gb"), Some(2u64 << 30));
        for bad in [
            "",
            " ",
            "k",
            "-1",
            "2.5m",
            "64x",
            "garbage",
            "99999999999999999999",
        ] {
            assert_eq!(parse_byte_size(bad), None, "value {bad:?}");
        }
        // Scaled overflow is rejected, not wrapped.
        assert_eq!(parse_byte_size("99999999999999999g"), None);
    }
}
