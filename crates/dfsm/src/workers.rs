//! The `FSM_FUSION_WORKERS` environment knob.
//!
//! One process-wide convention selects the parallel engines everywhere: the
//! reachable-product builder in this crate
//! ([`crate::ReachableProduct::new`]) and the Algorithm-2 / lattice engines
//! in `fsm-fusion-core` (which re-exports [`configured_workers`]) all
//! consult the same variable, so a test suite or deployment opts a whole
//! pipeline into parallelism with a single `export`.

/// Worker count requested through the `FSM_FUSION_WORKERS` environment
/// variable: unset, empty, `0` or `1` select the sequential paths, `auto`
/// selects [`std::thread::available_parallelism`], and any other number is
/// used as given.  Unparseable values fall back to sequential.
pub fn configured_workers() -> usize {
    match std::env::var("FSM_FUSION_WORKERS") {
        Ok(v) => parse_workers(&v),
        Err(_) => 1,
    }
}

/// The `FSM_FUSION_WORKERS` value convention, as a pure function so the
/// parsing rules are testable (and reusable by `fsm-fusion-core`'s
/// `FusionConfig`) without mutating the process environment.
pub fn parse_workers(value: &str) -> usize {
    match value.trim() {
        "" | "0" | "1" => 1,
        "auto" => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        s => s.parse().unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_workers_follows_the_env_convention() {
        // The parser is a pure function, so the rules are testable without
        // mutating the process environment (other tests in this binary run
        // concurrently).
        for sequential in ["", " ", "0", "1", " 1 ", "garbage", "-3", "2.5"] {
            assert_eq!(parse_workers(sequential), 1, "value {sequential:?}");
        }
        assert_eq!(parse_workers("2"), 2);
        assert_eq!(parse_workers(" 16 "), 16);
        assert!(parse_workers("auto") >= 1);
        // And the env-reading wrapper stays callable.
        assert!(configured_workers() >= 1);
    }
}
