//! The machine ↔ code analogy of Section 3, made executable.
//!
//! Given a set of machines represented as block assignments over the states
//! of `⊤` (each machine assigns every `⊤` state a block id — its own state),
//! every `⊤` state induces a *code word*: the vector of block ids across the
//! machines.  Two `⊤` states then differ in exactly as many positions as
//! there are machines that distinguish them, so:
//!
//! > the fault-graph weight of edge `(ti, tj)` equals the Hamming distance
//! > between the code words of `ti` and `tj`, and `dmin` equals the code's
//! > minimum distance.
//!
//! The `fsm-fusion-core` crate does not depend on this crate; instead the
//! integration tests and the `analogy` benchmark feed fusion partitions in
//! as plain block assignments and check that both sides agree, which is the
//! cross-validation the paper's analogy suggests.

use crate::hamming::{hamming_distance, minimum_distance};

/// Builds the code word of every `⊤` state from per-machine block
/// assignments (`assignments[m][t]` = block of machine `m` when `⊤` is in
/// state `t`).
pub fn codewords(assignments: &[Vec<usize>]) -> Vec<Vec<usize>> {
    if assignments.is_empty() {
        return Vec::new();
    }
    let n = assignments[0].len();
    for a in assignments {
        assert_eq!(a.len(), n, "all assignments must cover the same state set");
    }
    (0..n)
        .map(|t| assignments.iter().map(|a| a[t]).collect())
        .collect()
}

/// The Hamming distance between the code words of two `⊤` states — by the
/// analogy, the fault-graph weight of that edge.
pub fn state_distance(assignments: &[Vec<usize>], ti: usize, tj: usize) -> usize {
    let wi: Vec<usize> = assignments.iter().map(|a| a[ti]).collect();
    let wj: Vec<usize> = assignments.iter().map(|a| a[tj]).collect();
    hamming_distance(&wi, &wj)
}

/// The minimum distance of the induced code — by the analogy, `dmin` of the
/// machine set.  Returns `None` when there are fewer than two `⊤` states.
pub fn code_minimum_distance(assignments: &[Vec<usize>]) -> Option<usize> {
    let words = codewords(assignments);
    minimum_distance(&words)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 3 running example: ⊤ has 4 states; A = {t0,t3|t1|t2},
    /// B = {t0|t1|t2,t3}, M1 = {t0,t2|t1|t3}, M2 = {t0|t1,t2|t3} expressed
    /// as block assignments.
    fn fig3_assignments() -> Vec<Vec<usize>> {
        vec![
            vec![0, 1, 2, 0], // A
            vec![0, 1, 2, 2], // B
            vec![0, 1, 0, 2], // M1
            vec![0, 1, 1, 2], // M2
        ]
    }

    #[test]
    fn codewords_have_one_symbol_per_machine() {
        let words = codewords(&fig3_assignments());
        assert_eq!(words.len(), 4);
        assert!(words.iter().all(|w| w.len() == 4));
        assert_eq!(words[0], vec![0, 0, 0, 0]);
        assert_eq!(words[3], vec![0, 2, 2, 2]);
        assert!(codewords(&[]).is_empty());
    }

    #[test]
    fn analogy_reproduces_fig4_weights() {
        let a = fig3_assignments();
        // With only A: weight(t0,t3) = 0, all other edges 1 (Fig. 4(i)).
        let only_a = vec![a[0].clone()];
        assert_eq!(state_distance(&only_a, 0, 3), 0);
        assert_eq!(state_distance(&only_a, 0, 1), 1);
        assert_eq!(code_minimum_distance(&only_a), Some(0));
        // With A and B: dmin = 1 (Fig. 4(ii)).
        let ab = vec![a[0].clone(), a[1].clone()];
        assert_eq!(code_minimum_distance(&ab), Some(1));
        // With all four machines: dmin = 3 (Fig. 4(iii)).
        assert_eq!(code_minimum_distance(&a), Some(3));
        assert_eq!(state_distance(&a, 1, 3), 4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(code_minimum_distance(&[vec![0]]), None);
        assert_eq!(code_minimum_distance(&[]), None);
    }

    #[test]
    #[should_panic(expected = "same state set")]
    fn mismatched_assignment_lengths_panic() {
        codewords(&[vec![0, 1], vec![0, 1, 2]]);
    }
}
