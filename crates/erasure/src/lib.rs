//! # fsm-erasure — the coding-theory substrate of the paper's analogy
//!
//! Section 3 of *"A Fusion-based Approach for Tolerating Faults in Finite
//! State Machines"* explains fault graphs through erasure codes: the states
//! of the reachable cross product are the valid code words, each machine
//! contributes one symbol, edge weights are Hamming distances and `dmin`
//! plays the role of the code's minimum distance (erasures ↔ crash faults,
//! errors ↔ Byzantine faults).
//!
//! This crate implements that substrate from scratch:
//!
//! * [`hamming`] — Hamming distance / weight and minimum-distance helpers.
//! * [`code`] — tiny block codes: repetition (the analogue of replication),
//!   single parity over `Z_q` (the analogue of the `(n0+n1) mod 3` fusion)
//!   and the binary \[7,4\] Hamming code.
//! * [`analogy`] — turning machine partitions into code words so `dmin` can
//!   be cross-validated against code distance (used by the integration
//!   tests and the `analogy` benchmark).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analogy;
pub mod code;
pub mod hamming;

pub use analogy::{code_minimum_distance, codewords, state_distance};
pub use code::{BlockCode, Hamming74, ParityCode, RepetitionCode};
pub use hamming::{
    erasures_tolerated, errors_tolerated, hamming_distance, hamming_weight, minimum_distance,
};
