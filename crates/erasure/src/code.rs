//! Small block codes used to make the paper's erasure-coding analogy
//! concrete.
//!
//! * [`RepetitionCode`] — each data symbol is copied `n` times; the coding
//!   analogue of replication.
//! * [`ParityCode`] — one extra symbol equal to the sum of the data symbols
//!   (mod alphabet size); the coding analogue of the `(n0 + n1) mod 3`
//!   fusion machine of Fig. 1.
//! * [`Hamming74`] — the classical \[7,4\] binary Hamming code, included as a
//!   non-trivial code with minimum distance 3 (corrects one error /
//!   recovers two erasures), matching the fault tolerance of the paper's
//!   `{A, B, M1, M2}` example.

use crate::hamming::minimum_distance;

/// A block code over symbols of type `u8` (interpreted mod `q` for the
/// q-ary codes).
pub trait BlockCode {
    /// Number of data symbols per block.
    fn data_len(&self) -> usize;
    /// Number of coded symbols per block.
    fn code_len(&self) -> usize;
    /// Encodes a block of [`BlockCode::data_len`] symbols.
    fn encode(&self, data: &[u8]) -> Vec<u8>;
    /// Decodes a received word in which missing (erased) symbols are `None`.
    /// Returns the recovered data block, or `None` when recovery is
    /// impossible.
    fn decode_erasures(&self, received: &[Option<u8>]) -> Option<Vec<u8>>;

    /// The code's minimum distance, computed by brute force over all code
    /// words (fine for the tiny codes here).
    fn min_distance(&self, alphabet: u8) -> usize {
        let k = self.data_len();
        let mut words = Vec::new();
        let mut data = vec![0u8; k];
        loop {
            words.push(self.encode(&data));
            // Increment data as a base-`alphabet` counter.
            let mut i = 0;
            loop {
                if i == k {
                    return minimum_distance(&words).unwrap_or(usize::MAX);
                }
                data[i] += 1;
                if data[i] < alphabet {
                    break;
                }
                data[i] = 0;
                i += 1;
            }
        }
    }
}

/// The `n`-fold repetition code: the coding-theory analogue of keeping `n−1`
/// replicas of a machine.
#[derive(Debug, Clone)]
pub struct RepetitionCode {
    /// Total number of copies (including the original).
    pub copies: usize,
}

impl BlockCode for RepetitionCode {
    fn data_len(&self) -> usize {
        1
    }

    fn code_len(&self) -> usize {
        self.copies
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), 1);
        vec![data[0]; self.copies]
    }

    fn decode_erasures(&self, received: &[Option<u8>]) -> Option<Vec<u8>> {
        received.iter().find_map(|s| s.map(|v| vec![v]))
    }
}

/// A single-parity code over `Z_q`: `k` data symbols plus one check symbol
/// equal to their sum mod `q`.  Any single erasure is recoverable — exactly
/// how the fused `(n0 + n1) mod 3` counter recovers one crashed counter.
#[derive(Debug, Clone)]
pub struct ParityCode {
    /// Number of data symbols.
    pub data_symbols: usize,
    /// Alphabet size `q`.
    pub modulus: u8,
}

impl BlockCode for ParityCode {
    fn data_len(&self) -> usize {
        self.data_symbols
    }

    fn code_len(&self) -> usize {
        self.data_symbols + 1
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), self.data_symbols);
        let sum: u32 = data.iter().map(|&d| d as u32).sum();
        let mut out = data.to_vec();
        out.push((sum % self.modulus as u32) as u8);
        out
    }

    fn decode_erasures(&self, received: &[Option<u8>]) -> Option<Vec<u8>> {
        assert_eq!(received.len(), self.code_len());
        let missing: Vec<usize> = (0..received.len())
            .filter(|&i| received[i].is_none())
            .collect();
        match missing.len() {
            0 => Some(
                received[..self.data_symbols]
                    .iter()
                    .map(|s| s.expect("checked"))
                    .collect(),
            ),
            1 => {
                let q = self.modulus as u32;
                let idx = missing[0];
                let known_sum: u32 = received
                    .iter()
                    .take(self.data_symbols)
                    .flatten()
                    .map(|&v| v as u32)
                    .sum();
                let mut data: Vec<u8> = Vec::with_capacity(self.data_symbols);
                if idx == self.data_symbols {
                    // Only the parity symbol is missing.
                    for s in &received[..self.data_symbols] {
                        data.push(s.expect("data symbols present"));
                    }
                } else {
                    let parity = received[self.data_symbols].expect("parity present") as u32;
                    let recovered = (parity + q * self.data_symbols as u32 - known_sum) % q;
                    for (i, s) in received[..self.data_symbols].iter().enumerate() {
                        data.push(if i == idx {
                            recovered as u8
                        } else {
                            s.expect("present")
                        });
                    }
                }
                Some(data)
            }
            _ => None,
        }
    }
}

/// The binary \[7,4\] Hamming code (minimum distance 3).
#[derive(Debug, Clone, Default)]
pub struct Hamming74;

impl Hamming74 {
    /// Parity positions use the standard generator: p1 = d1⊕d2⊕d4,
    /// p2 = d1⊕d3⊕d4, p3 = d2⊕d3⊕d4; code word layout
    /// `[d1, d2, d3, d4, p1, p2, p3]`.
    fn parities(data: &[u8]) -> [u8; 3] {
        let d = |i: usize| data[i] & 1;
        [d(0) ^ d(1) ^ d(3), d(0) ^ d(2) ^ d(3), d(1) ^ d(2) ^ d(3)]
    }

    /// Decodes a (complete) received word, correcting up to one bit error.
    pub fn decode_correcting(&self, received: &[u8]) -> Vec<u8> {
        assert_eq!(received.len(), 7);
        let mut word: Vec<u8> = received.iter().map(|&b| b & 1).collect();
        let p = Self::parities(&word[..4]);
        let syndrome = [p[0] ^ word[4], p[1] ^ word[5], p[2] ^ word[6]];
        // Map the syndrome to the offending position.
        let flip = match syndrome {
            [0, 0, 0] => None,
            [1, 1, 1] => Some(3),
            [1, 1, 0] => Some(0),
            [1, 0, 1] => Some(1),
            [0, 1, 1] => Some(2),
            [1, 0, 0] => Some(4),
            [0, 1, 0] => Some(5),
            [0, 0, 1] => Some(6),
            _ => unreachable!("syndrome bits are binary"),
        };
        if let Some(i) = flip {
            word[i] ^= 1;
        }
        word[..4].to_vec()
    }
}

impl BlockCode for Hamming74 {
    fn data_len(&self) -> usize {
        4
    }

    fn code_len(&self) -> usize {
        7
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        assert_eq!(data.len(), 4);
        let mut out: Vec<u8> = data.iter().map(|&b| b & 1).collect();
        out.extend_from_slice(&Self::parities(data));
        out
    }

    fn decode_erasures(&self, received: &[Option<u8>]) -> Option<Vec<u8>> {
        assert_eq!(received.len(), 7);
        let erased: Vec<usize> = (0..7).filter(|&i| received[i].is_none()).collect();
        if erased.len() > 2 {
            return None;
        }
        // Brute-force the erased bits (at most 4 combinations) and keep the
        // assignment whose re-encoding is consistent.
        for guess in 0u8..(1 << erased.len()) {
            let mut word: Vec<u8> = Vec::with_capacity(7);
            for (i, s) in received.iter().enumerate() {
                match s {
                    Some(v) => word.push(v & 1),
                    None => {
                        let pos = erased.iter().position(|&e| e == i).expect("erased");
                        word.push((guess >> pos) & 1);
                    }
                }
            }
            let reencoded = self.encode(&word[..4]);
            if reencoded == word {
                return Some(word[..4].to_vec());
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repetition_code_recovers_from_any_single_survivor() {
        let code = RepetitionCode { copies: 3 };
        let encoded = code.encode(&[7]);
        assert_eq!(encoded, vec![7, 7, 7]);
        assert_eq!(code.code_len(), 3);
        assert_eq!(code.decode_erasures(&[None, Some(7), None]), Some(vec![7]));
        assert_eq!(code.decode_erasures(&[None, None, None]), None);
        // Its distance equals the number of copies (over a binary alphabet).
        assert_eq!(code.min_distance(2), 3);
    }

    #[test]
    fn parity_code_recovers_any_single_erasure() {
        let code = ParityCode {
            data_symbols: 4,
            modulus: 3,
        };
        let data = [1u8, 2, 0, 2];
        let encoded = code.encode(&data);
        assert_eq!(encoded.len(), 5);
        // Parity symbol is the data sum mod 3: (1 + 2 + 0 + 2) % 3 = 2.
        assert_eq!(encoded[4], 2);
        for erased in 0..5 {
            let mut received: Vec<Option<u8>> = encoded.iter().map(|&v| Some(v)).collect();
            received[erased] = None;
            assert_eq!(
                code.decode_erasures(&received),
                Some(data.to_vec()),
                "erased position {erased}"
            );
        }
        // Two erasures are unrecoverable.
        let mut received: Vec<Option<u8>> = encoded.iter().map(|&v| Some(v)).collect();
        received[0] = None;
        received[1] = None;
        assert_eq!(code.decode_erasures(&received), None);
        // Minimum distance 2 → tolerates exactly one erasure.
        assert_eq!(code.min_distance(3), 2);
    }

    #[test]
    fn parity_code_mirrors_fig1_fusion() {
        // Two mod-3 "machines" (data symbols) plus the parity symbol is the
        // coding-theory picture of {A, B, F1}: one crash anywhere can be
        // undone.
        let code = ParityCode {
            data_symbols: 2,
            modulus: 3,
        };
        for a in 0..3u8 {
            for b in 0..3u8 {
                let encoded = code.encode(&[a, b]);
                let received = vec![None, Some(encoded[1]), Some(encoded[2])];
                assert_eq!(code.decode_erasures(&received), Some(vec![a, b]));
            }
        }
    }

    #[test]
    fn hamming74_roundtrip_and_single_error_correction() {
        let code = Hamming74;
        for value in 0u8..16 {
            let data: Vec<u8> = (0..4).map(|i| (value >> i) & 1).collect();
            let encoded = code.encode(&data);
            assert_eq!(encoded.len(), 7);
            // No error.
            assert_eq!(code.decode_correcting(&encoded), data);
            // Every single-bit error is corrected.
            for flip in 0..7 {
                let mut corrupted = encoded.clone();
                corrupted[flip] ^= 1;
                assert_eq!(code.decode_correcting(&corrupted), data, "flip {flip}");
            }
        }
    }

    #[test]
    fn hamming74_recovers_up_to_two_erasures() {
        let code = Hamming74;
        let data = vec![1u8, 0, 1, 1];
        let encoded = code.encode(&data);
        for i in 0..7 {
            for j in (i + 1)..7 {
                let mut received: Vec<Option<u8>> = encoded.iter().map(|&v| Some(v)).collect();
                received[i] = None;
                received[j] = None;
                assert_eq!(code.decode_erasures(&received), Some(data.clone()));
            }
        }
        // Three erasures may be ambiguous.
        let received = vec![
            None,
            None,
            None,
            Some(encoded[3]),
            Some(encoded[4]),
            Some(encoded[5]),
            Some(encoded[6]),
        ];
        let _ = code.decode_erasures(&received); // must not panic
    }

    #[test]
    fn hamming74_min_distance_is_three() {
        assert_eq!(Hamming74.min_distance(2), 3);
        assert_eq!(Hamming74.data_len(), 4);
        assert_eq!(Hamming74.code_len(), 7);
    }
}
