//! Hamming distance and minimum-distance computations.
//!
//! Section 3 of the paper grounds fault graphs in classical coding theory:
//! the states of the reachable cross product play the role of valid code
//! words, and the weight of a fault-graph edge is the Hamming distance
//! between the corresponding code words when each machine contributes one
//! "symbol" (its own state).  These helpers make that analogy executable so
//! tests and benches can cross-validate `dmin` against code distance.

/// The Hamming distance between two equal-length symbol sequences: the
/// number of positions where they differ.
///
/// Panics if the slices have different lengths (distances between words of
/// different lengths are undefined).
pub fn hamming_distance<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    assert_eq!(a.len(), b.len(), "Hamming distance needs equal lengths");
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
}

/// The Hamming weight of a binary word: the number of `true` positions.
pub fn hamming_weight(a: &[bool]) -> usize {
    a.iter().filter(|&&x| x).count()
}

/// The minimum pairwise Hamming distance of a set of equal-length words —
/// the quantity that bounds how many erasures (`d − 1`) and errors
/// (`⌊(d − 1)/2⌋`) a code can tolerate, exactly mirroring the paper's
/// Theorems 1 and 2 for `dmin`.
///
/// Returns `None` for fewer than two words.
pub fn minimum_distance<T: PartialEq>(words: &[Vec<T>]) -> Option<usize> {
    if words.len() < 2 {
        return None;
    }
    let mut min = usize::MAX;
    for i in 0..words.len() {
        for j in (i + 1)..words.len() {
            min = min.min(hamming_distance(&words[i], &words[j]));
        }
    }
    Some(min)
}

/// Erasure tolerance of a code with minimum distance `d`: `d − 1`
/// (the analogue of Observation 1 for crash faults).
pub fn erasures_tolerated(min_distance: usize) -> usize {
    min_distance.saturating_sub(1)
}

/// Error tolerance of a code with minimum distance `d`: `⌊(d − 1)/2⌋`
/// (the analogue of Observation 1 for Byzantine faults).
pub fn errors_tolerated(min_distance: usize) -> usize {
    min_distance.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_distance_counts_differences() {
        assert_eq!(hamming_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(hamming_distance(&[1, 2, 3], &[1, 0, 3]), 1);
        assert_eq!(hamming_distance(&[0u8; 4], &[1u8; 4]), 4);
        assert_eq!(hamming_distance::<u8>(&[], &[]), 0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn hamming_distance_requires_equal_lengths() {
        hamming_distance(&[1], &[1, 2]);
    }

    #[test]
    fn hamming_weight_counts_ones() {
        assert_eq!(hamming_weight(&[true, false, true, true]), 3);
        assert_eq!(hamming_weight(&[]), 0);
    }

    #[test]
    fn minimum_distance_over_word_sets() {
        let words = vec![vec![0, 0, 0], vec![1, 1, 0], vec![0, 1, 1]];
        assert_eq!(minimum_distance(&words), Some(2));
        assert_eq!(minimum_distance(&words[..1]), None);
        let identical = vec![vec![1, 2], vec![1, 2]];
        assert_eq!(minimum_distance(&identical), Some(0));
    }

    #[test]
    fn tolerance_formulas_match_observation1() {
        assert_eq!(erasures_tolerated(3), 2);
        assert_eq!(errors_tolerated(3), 1);
        assert_eq!(erasures_tolerated(0), 0);
        assert_eq!(errors_tolerated(1), 0);
        assert_eq!(errors_tolerated(5), 2);
    }
}
