//! Recovery from crash and Byzantine faults (Algorithm 3, Section 5.2).
//!
//! Every machine in the system (originals and fusions) corresponds to a
//! closed partition of `⊤`, so its current state can be expressed as the
//! *set of `⊤` states* in the matching block (the "set representation" of
//! Algorithm 1).  Recovery collects these sets from the machines that can
//! still report a state, counts for every `⊤` state in how many reported
//! sets it appears, and picks the state with the maximum count (Algorithm 3).
//!
//! * With at most `f` **crash** faults in an `(f, m)`-fusion system the
//!   maximum is unique and correct (Theorem 6).
//! * With at most `⌊f/2⌋` **Byzantine** faults the true state still wins the
//!   vote because it appears in every non-faulty machine's report.
//!
//! [`RecoveryEngine`] packages the partitions of a whole system and exposes
//! typed recovery, fault detection and state translation helpers on top of
//! the raw [`recover_top_state`] vote.

use std::collections::BTreeSet;

use fsm_dfsm::StateId;

use crate::error::{FusionError, Result};
use crate::partition::Partition;

/// What a machine reports when the recovery protocol asks for its state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineReport {
    /// The machine crashed and lost its execution state.
    Crashed,
    /// The machine reports being in the given block of its own partition
    /// (equivalently: in the machine state with this index).  A Byzantine
    /// machine may report any block, not necessarily the true one.
    State(usize),
}

impl MachineReport {
    /// Whether the machine reported anything at all.
    pub fn is_available(&self) -> bool {
        matches!(self, MachineReport::State(_))
    }
}

/// Outcome of a successful recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The recovered state of the top machine.
    pub top_state: usize,
    /// The vote count for the winning state.
    pub votes: usize,
    /// Recovered state (block index) of every machine in the system, in the
    /// order the partitions were registered.
    pub machine_states: Vec<usize>,
    /// Indices of machines whose report was inconsistent with the recovered
    /// state — with crash-only faults this is empty; under Byzantine faults
    /// these are the liars that were out-voted.
    pub suspected_byzantine: Vec<usize>,
}

/// The raw Algorithm 3 vote: given the reported state sets (each a set of
/// `⊤` state indices), count every `⊤` state and return the one with the
/// maximum count.
///
/// Returns an error when no machine reported anything or when the maximum is
/// not unique (which means more faults occurred than the system tolerates).
pub fn recover_top_state(top_size: usize, reports: &[BTreeSet<usize>]) -> Result<usize> {
    if reports.is_empty() {
        return Err(FusionError::NothingToRecoverFrom);
    }
    let mut count = vec![0usize; top_size];
    for set in reports {
        for &t in set {
            if t >= top_size {
                return Err(FusionError::InvalidReport(format!(
                    "top state {t} out of range 0..{top_size}"
                )));
            }
            count[t] += 1;
        }
    }
    let max = *count.iter().max().unwrap_or(&0);
    if max == 0 {
        return Err(FusionError::NothingToRecoverFrom);
    }
    let winners: Vec<usize> = (0..top_size).filter(|&t| count[t] == max).collect();
    if winners.len() > 1 {
        return Err(FusionError::AmbiguousRecovery {
            candidates: winners,
        });
    }
    Ok(winners[0])
}

/// A recovery engine for a fixed system of machines, each represented by its
/// closed partition of `⊤`.
///
/// The machine order used when registering partitions is the order expected
/// in [`RecoveryEngine::recover`]'s report slice; by convention the original
/// machines come first and the fusion machines afterwards, but the engine
/// does not care.
#[derive(Debug, Clone)]
pub struct RecoveryEngine {
    top_size: usize,
    partitions: Vec<Partition>,
    names: Vec<String>,
}

impl RecoveryEngine {
    /// Creates an engine for a `⊤` with `top_size` states.
    pub fn new(top_size: usize) -> Self {
        RecoveryEngine {
            top_size,
            partitions: Vec::new(),
            names: Vec::new(),
        }
    }

    /// Creates an engine and registers all partitions at once.
    pub fn with_partitions(top_size: usize, partitions: &[Partition]) -> Result<Self> {
        let mut e = Self::new(top_size);
        for (i, p) in partitions.iter().enumerate() {
            e.add_machine(format!("machine{i}"), p.clone())?;
        }
        Ok(e)
    }

    /// Registers a machine by name and partition.  Returns its index.
    pub fn add_machine(&mut self, name: impl Into<String>, partition: Partition) -> Result<usize> {
        if partition.len() != self.top_size {
            return Err(FusionError::PartitionSizeMismatch {
                expected: self.top_size,
                actual: partition.len(),
            });
        }
        self.partitions.push(partition);
        self.names.push(name.into());
        Ok(self.partitions.len() - 1)
    }

    /// Number of registered machines.
    pub fn num_machines(&self) -> usize {
        self.partitions.len()
    }

    /// The registered partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The registered machine names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The state (block index) machine `i` is in when `⊤` is in `top_state`.
    pub fn machine_state_for_top(&self, i: usize, top_state: usize) -> usize {
        self.partitions[i].block_of(top_state)
    }

    /// The set of `⊤` states consistent with machine `i` being in state
    /// (block) `block`.  Out-of-range blocks yield the empty set.
    pub fn block_as_top_set(&self, i: usize, block: usize) -> BTreeSet<usize> {
        self.partitions[i].iter_block(block).collect()
    }

    /// Runs Algorithm 3 over a report from every machine (crashed machines
    /// report [`MachineReport::Crashed`]) and reconstructs the state of the
    /// whole system.
    pub fn recover(&self, reports: &[MachineReport]) -> Result<Recovery> {
        if reports.len() != self.partitions.len() {
            return Err(FusionError::InvalidReport(format!(
                "expected {} reports, got {}",
                self.partitions.len(),
                reports.len()
            )));
        }
        let mut sets: Vec<BTreeSet<usize>> = Vec::new();
        for (i, r) in reports.iter().enumerate() {
            match r {
                MachineReport::Crashed => {}
                MachineReport::State(block) => {
                    if *block >= self.partitions[i].num_blocks() {
                        return Err(FusionError::InvalidReport(format!(
                            "machine {} ({}) reported block {} but only has {} states",
                            i,
                            self.names[i],
                            block,
                            self.partitions[i].num_blocks()
                        )));
                    }
                    sets.push(self.block_as_top_set(i, *block));
                }
            }
        }
        let top_state = recover_top_state(self.top_size, &sets)?;
        let votes = sets.iter().filter(|s| s.contains(&top_state)).count();
        let machine_states: Vec<usize> = (0..self.partitions.len())
            .map(|i| self.machine_state_for_top(i, top_state))
            .collect();
        let suspected_byzantine: Vec<usize> = reports
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                MachineReport::State(block) if *block != machine_states[i] => Some(i),
                _ => None,
            })
            .collect();
        Ok(Recovery {
            top_state,
            votes,
            machine_states,
            suspected_byzantine,
        })
    }

    /// Convenience for crash-only scenarios: `states[i]` is `Some(block)`
    /// for surviving machines and `None` for crashed ones.
    pub fn recover_from_crashes(&self, states: &[Option<usize>]) -> Result<Recovery> {
        let reports: Vec<MachineReport> = states
            .iter()
            .map(|s| match s {
                Some(b) => MachineReport::State(*b),
                None => MachineReport::Crashed,
            })
            .collect();
        self.recover(&reports)
    }

    /// Translates a recovered `⊤` state into the state of machine `i`,
    /// returning the [`StateId`] in the corresponding quotient machine.
    pub fn translate(&self, i: usize, top_state: usize) -> StateId {
        StateId(self.machine_state_for_top(i, top_state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Section 5.2: ⊤ with 4 states, machines
    /// A = {t0,t3 | t1 | t2}, B = {t0 | t1 | t2,t3},
    /// M1 = {t0,t2 | t1 | t3}, M2 = {t0 | t1,t2 | t3}
    /// (an (2,2)-fusion system tolerating 2 crash / 1 Byzantine fault).
    fn engine() -> RecoveryEngine {
        let a = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
        let b = Partition::from_blocks(4, &[vec![0], vec![1], vec![2, 3]]).unwrap();
        let m1 = Partition::from_blocks(4, &[vec![0, 2], vec![1], vec![3]]).unwrap();
        let m2 = Partition::from_blocks(4, &[vec![0], vec![1, 2], vec![3]]).unwrap();
        let mut e = RecoveryEngine::new(4);
        e.add_machine("A", a).unwrap();
        e.add_machine("B", b).unwrap();
        e.add_machine("M1", m1).unwrap();
        e.add_machine("M2", m2).unwrap();
        e
    }

    #[test]
    fn raw_vote_picks_unique_maximum() {
        // Paper's example: top in t3, B and M1 crashed; A reports {t0,t3},
        // M2 reports {t3} → t3 wins with 2 votes.
        let reports = vec![BTreeSet::from([0usize, 3]), BTreeSet::from([3usize])];
        assert_eq!(recover_top_state(4, &reports).unwrap(), 3);
    }

    #[test]
    fn raw_vote_detects_ambiguity_and_empty_input() {
        let reports = vec![BTreeSet::from([0usize, 3])];
        assert!(matches!(
            recover_top_state(4, &reports),
            Err(FusionError::AmbiguousRecovery { .. })
        ));
        assert!(matches!(
            recover_top_state(4, &[]),
            Err(FusionError::NothingToRecoverFrom)
        ));
        let empty_sets = vec![BTreeSet::new(), BTreeSet::new()];
        assert!(recover_top_state(4, &empty_sets).is_err());
        let bad = vec![BTreeSet::from([9usize])];
        assert!(matches!(
            recover_top_state(4, &bad),
            Err(FusionError::InvalidReport(_))
        ));
    }

    #[test]
    fn crash_recovery_restores_every_machine_state() {
        let e = engine();
        // True top state: t3 → A in block 0 ({t0,t3}), B in block 2
        // ({t2,t3}), M1 in block 2 ({t3}), M2 in block 2 ({t3}).
        // Crash B and M1 (two crash faults, the maximum tolerated).
        let reports = vec![
            MachineReport::State(0),
            MachineReport::Crashed,
            MachineReport::Crashed,
            MachineReport::State(2),
        ];
        let r = e.recover(&reports).unwrap();
        assert_eq!(r.top_state, 3);
        assert_eq!(r.machine_states, vec![0, 2, 2, 2]);
        assert!(r.suspected_byzantine.is_empty());
        assert_eq!(r.votes, 2);
    }

    #[test]
    fn crash_recovery_via_option_api() {
        let e = engine();
        let r = e
            .recover_from_crashes(&[Some(0), None, None, Some(2)])
            .unwrap();
        assert_eq!(r.top_state, 3);
        assert_eq!(e.translate(1, r.top_state), StateId(2));
    }

    #[test]
    fn byzantine_recovery_outvotes_a_single_liar() {
        let e = engine();
        // True top state t0: A block 0, B block 0, M1 block 0, M2 block 0.
        // M1 lies and reports block 2 ({t3}).
        let reports = vec![
            MachineReport::State(0),
            MachineReport::State(0),
            MachineReport::State(2),
            MachineReport::State(0),
        ];
        let r = e.recover(&reports).unwrap();
        assert_eq!(r.top_state, 0);
        assert_eq!(r.suspected_byzantine, vec![2]);
    }

    #[test]
    fn paper_byzantine_example_with_b_lying() {
        // Section 3's example: top in t3; B lies reporting {t0}; A, M1, M2
        // report truthfully ({t0,t3}, {t3}, {t3}).
        let e = engine();
        let reports = vec![
            MachineReport::State(0), // A: {t0,t3}
            MachineReport::State(0), // B lies: {t0}
            MachineReport::State(2), // M1: {t3}
            MachineReport::State(2), // M2: {t3}
        ];
        let r = e.recover(&reports).unwrap();
        assert_eq!(r.top_state, 3);
        assert_eq!(r.suspected_byzantine, vec![1]);
    }

    #[test]
    fn two_byzantine_faults_defeat_this_system() {
        // The paper shows this system cannot tolerate two Byzantine faults:
        // with top in t3 and both B and M1 lying towards t0, the vote picks
        // the wrong state (t0) — recovery "succeeds" but incorrectly, or
        // ties; either way the answer is not guaranteed to be t3.
        let e = engine();
        let reports = vec![
            MachineReport::State(0), // A truthful: {t0,t3}
            MachineReport::State(0), // B lies: {t0}
            MachineReport::State(0), // M1 lies: {t0,t2}
            MachineReport::State(2), // M2 truthful: {t3}
        ];
        let r = e.recover(&reports);
        match r {
            Ok(rec) => assert_ne!(rec.top_state, 3, "with 2 liars the vote is corrupted"),
            Err(FusionError::AmbiguousRecovery { .. }) => {}
            Err(other) => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn report_validation() {
        let e = engine();
        // Wrong number of reports.
        assert!(e.recover(&[MachineReport::Crashed]).is_err());
        // Block index out of range.
        let reports = vec![
            MachineReport::State(7),
            MachineReport::Crashed,
            MachineReport::Crashed,
            MachineReport::Crashed,
        ];
        assert!(matches!(
            e.recover(&reports),
            Err(FusionError::InvalidReport(_))
        ));
        // Everything crashed.
        let reports = vec![MachineReport::Crashed; 4];
        assert!(matches!(
            e.recover(&reports),
            Err(FusionError::NothingToRecoverFrom)
        ));
    }

    #[test]
    fn engine_accessors() {
        let e = engine();
        assert_eq!(e.num_machines(), 4);
        assert_eq!(e.names()[0], "A");
        assert_eq!(e.partitions().len(), 4);
        assert_eq!(e.block_as_top_set(0, 0), BTreeSet::from([0, 3]));
        assert!(e.block_as_top_set(0, 9).is_empty());
        assert_eq!(e.machine_state_for_top(1, 3), 2);
        assert!(MachineReport::State(1).is_available());
        assert!(!MachineReport::Crashed.is_available());
    }

    #[test]
    fn with_partitions_constructor() {
        let a = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
        let b = Partition::from_blocks(4, &[vec![0], vec![1], vec![2, 3]]).unwrap();
        let e = RecoveryEngine::with_partitions(4, &[a, b]).unwrap();
        assert_eq!(e.num_machines(), 2);
        let bad = Partition::singletons(3);
        let mut e2 = RecoveryEngine::new(4);
        assert!(e2.add_machine("bad", bad).is_err());
    }
}
