//! Explicit configuration for the fusion engines: [`FusionConfig`] and the
//! knobs it bundles.
//!
//! Before the session API, engine selection lived in the
//! `FSM_FUSION_WORKERS` environment variable and was re-read on **every**
//! call to [`crate::generate_fusion`] / [`crate::enumerate_lattice`].  A
//! [`FusionConfig`] makes every choice explicit and resolves the
//! environment **once**, at [`FusionConfig::from_env`]:
//!
//! * [`Engine`] — which Algorithm-2 / lattice engine runs the descent,
//! * the worker count for the pooled engines and the parallel product
//!   builder,
//! * [`ProductStrategy`] (re-exported from [`fsm_dfsm`]) — how the
//!   reachable cross product is constructed, together with its sizing
//!   knobs: the dense-interner limit ([`FusionConfig::dense_limit`],
//!   `FSM_FUSION_DENSE_LIMIT`) and the streaming build's memory budget
//!   ([`FusionConfig::mem_budget`], `FSM_FUSION_MEM_BUDGET`),
//! * [`CachePolicy`] — whether the session keeps a cross-call closure
//!   cache, and how large it may grow.
//!
//! **Precedence.**  Explicit builder calls beat the environment snapshot,
//! which beats the defaults: a worker count set through
//! [`FusionConfig::workers`] wins even on a config created by
//! [`FusionConfig::from_env`], and likewise for [`FusionConfig::engine`].
//! The pure resolution rules are pinned by unit tests here (no environment
//! mutation needed) and by `tests/session_properties.rs`.
//!
//! Build the configured session with [`FusionConfig::build`].

pub use fsm_dfsm::ProductStrategy;
use fsm_dfsm::{parse_byte_size, parse_workers, DEFAULT_DENSE_LIMIT, DEFAULT_MEM_BUDGET};

use crate::session::FusionSession;

/// Which Algorithm-2 / lattice engine a [`FusionSession`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Pick from the resolved worker count: [`Engine::Pooled`] when more
    /// than one worker is configured, [`Engine::Sequential`] otherwise —
    /// the pre-session dispatch rule of [`crate::generate_fusion`].
    #[default]
    Auto,
    /// The canonical single-threaded descent
    /// ([`crate::generate_fusion_seq`]).
    Sequential,
    /// The batched engine over the **persistent process-wide** worker pool
    /// ([`crate::generate_fusion_par`]); the session holds one pool handle
    /// for its lifetime.
    Pooled,
    /// The batched engine over a **freshly spawned private pool** whose
    /// threads are joined when the session's machine context is dropped —
    /// the cold-start behavior kept for benchmarking
    /// ([`crate::generate_fusion_par_spawn`]).
    Spawn,
}

impl Engine {
    /// Parses the `FSM_FUSION_ENGINE` environment convention:
    /// `seq`/`sequential`, `pooled`, `spawn`, or `auto`.  Unknown values
    /// fall back to [`Engine::Auto`] (matching how unparseable
    /// `FSM_FUSION_WORKERS` values fall back to sequential).
    pub fn parse(value: &str) -> Engine {
        match value.trim().to_ascii_lowercase().as_str() {
            "seq" | "sequential" => Engine::Sequential,
            "pooled" => Engine::Pooled,
            "spawn" => Engine::Spawn,
            _ => Engine::Auto,
        }
    }
}

/// How a [`FusionSession`]'s cross-call closure cache behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// No cache: every candidate closure is recomputed, exactly like the
    /// free-function engines.
    Disabled,
    /// Keep closures across calls, bounded to this many cached **elements**
    /// (entries × `|⊤|`, i.e. roughly `8 × bound` bytes).  When an
    /// insertion would exceed the bound, whole descent levels are evicted
    /// *oldest first* (counted in [`crate::CacheStats::evicted`]) until it
    /// fits; an insertion that cannot fit even then is skipped, so a
    /// single oversized closure never cold-starts subsequent sweeps.
    Bounded(usize),
}

impl CachePolicy {
    /// The default bound: 4 Mi cached elements (≈ 32 MiB of assignments),
    /// which holds several thousand cached closures at `|⊤| = 729`.
    pub const DEFAULT_BOUND: usize = 1 << 22;
}

impl Default for CachePolicy {
    fn default() -> Self {
        CachePolicy::Bounded(Self::DEFAULT_BOUND)
    }
}

/// Builder for a [`FusionSession`]: engine, worker count, product-builder
/// strategy and cache policy, with the environment consulted only when (and
/// once, at the moment) [`FusionConfig::from_env`] is used.
///
/// ```
/// use fsm_fusion_core::{CachePolicy, Engine, FusionConfig};
///
/// let mut session = FusionConfig::new()
///     .engine(Engine::Sequential)
///     .cache(CachePolicy::Bounded(1 << 20))
///     .build();
/// assert_eq!(session.engine(), Engine::Sequential);
/// # let _ = &mut session;
/// ```
#[derive(Debug, Clone, Default)]
pub struct FusionConfig {
    engine: Option<Engine>,
    env_engine: Option<Engine>,
    workers: Option<usize>,
    env_workers: Option<usize>,
    dense_limit: Option<u64>,
    env_dense_limit: Option<u64>,
    mem_budget: Option<u64>,
    env_mem_budget: Option<u64>,
    product: ProductStrategy,
    cache: CachePolicy,
}

impl FusionConfig {
    /// A config with the explicit defaults: [`Engine::Auto`], one worker,
    /// [`ProductStrategy::Auto`], the default bounded cache — and **no**
    /// environment consultation, ever.
    pub fn new() -> Self {
        Self::default()
    }

    /// A config whose `Auto` fallbacks are snapshotted from the environment
    /// **now**: `FSM_FUSION_WORKERS` (worker count, the same convention as
    /// [`fsm_dfsm::configured_workers`]), `FSM_FUSION_ENGINE` (engine, see
    /// [`Engine::parse`]), and the product-builder sizing knobs
    /// `FSM_FUSION_DENSE_LIMIT` / `FSM_FUSION_MEM_BUDGET` (the
    /// [`fsm_dfsm::parse_byte_size`] convention).  Later changes to the
    /// environment do not affect the config, and explicit builder calls
    /// still take precedence.
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var("FSM_FUSION_ENGINE").ok().as_deref(),
            std::env::var("FSM_FUSION_WORKERS").ok().as_deref(),
            std::env::var("FSM_FUSION_DENSE_LIMIT").ok().as_deref(),
            std::env::var("FSM_FUSION_MEM_BUDGET").ok().as_deref(),
        )
    }

    /// The pure form of [`FusionConfig::from_env`]: resolution from
    /// explicit variable values, so the precedence rules are testable
    /// without mutating the process environment.
    pub fn from_env_values(
        engine: Option<&str>,
        workers: Option<&str>,
        dense_limit: Option<&str>,
        mem_budget: Option<&str>,
    ) -> Self {
        FusionConfig {
            env_engine: engine.map(Engine::parse),
            env_workers: workers.map(parse_workers),
            env_dense_limit: dense_limit.and_then(parse_byte_size),
            env_mem_budget: mem_budget.and_then(parse_byte_size),
            ..Self::default()
        }
    }

    /// Sets the engine explicitly, overriding any environment snapshot.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// Sets the worker count explicitly, overriding any environment
    /// snapshot (clamped to at least one).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the product-builder strategy (default
    /// [`ProductStrategy::Auto`]).
    pub fn product(mut self, strategy: ProductStrategy) -> Self {
        self.product = strategy;
        self
    }

    /// Sets the product builder's dense-interner limit (a full-product
    /// *state count*) explicitly, overriding any `FSM_FUSION_DENSE_LIMIT`
    /// snapshot.
    pub fn dense_limit(mut self, limit: u64) -> Self {
        self.dense_limit = Some(limit);
        self
    }

    /// Sets the streaming product builder's resident-memory budget
    /// (bytes) explicitly, overriding any `FSM_FUSION_MEM_BUDGET`
    /// snapshot.
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes);
        self
    }

    /// Sets the closure-cache policy (default
    /// [`CachePolicy::Bounded`] at [`CachePolicy::DEFAULT_BOUND`]).
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.cache = policy;
        self
    }

    /// The worker count this config resolves to:
    /// **explicit > environment snapshot > 1**.
    ///
    /// `Engine::Auto` with an `auto` environment value resolves through
    /// [`fsm_dfsm::configured_workers`]'s convention at snapshot time, so the count
    /// is already concrete here.
    pub fn resolved_workers(&self) -> usize {
        self.workers.or(self.env_workers).unwrap_or(1).max(1)
    }

    /// The engine this config resolves to (never [`Engine::Auto`]):
    /// **explicit > environment snapshot > auto-detect**, where auto-detect
    /// picks [`Engine::Pooled`] iff [`FusionConfig::resolved_workers`] is
    /// more than one.
    pub fn resolved_engine(&self) -> Engine {
        match self.engine.or(self.env_engine).unwrap_or(Engine::Auto) {
            Engine::Auto if self.resolved_workers() > 1 => Engine::Pooled,
            Engine::Auto => Engine::Sequential,
            explicit => explicit,
        }
    }

    /// The product strategy this config resolves to (never
    /// [`ProductStrategy::Auto`]): the configured strategy, with `Auto`
    /// picking [`ProductStrategy::Parallel`] iff more than one worker is
    /// resolved.
    pub fn resolved_product(&self) -> ProductStrategy {
        match self.product {
            ProductStrategy::Auto if self.resolved_workers() > 1 => ProductStrategy::Parallel,
            ProductStrategy::Auto => ProductStrategy::Packed,
            explicit => explicit,
        }
    }

    /// The dense-interner limit this config resolves to:
    /// **explicit > environment snapshot >
    /// [`fsm_dfsm::DEFAULT_DENSE_LIMIT`]**.
    pub fn resolved_dense_limit(&self) -> u64 {
        self.dense_limit
            .or(self.env_dense_limit)
            .unwrap_or(DEFAULT_DENSE_LIMIT)
    }

    /// The streaming memory budget this config resolves to:
    /// **explicit > environment snapshot >
    /// [`fsm_dfsm::DEFAULT_MEM_BUDGET`]**.
    pub fn resolved_mem_budget(&self) -> u64 {
        self.mem_budget
            .or(self.env_mem_budget)
            .unwrap_or(DEFAULT_MEM_BUDGET)
    }

    /// The configured cache policy.
    pub fn cache_policy(&self) -> CachePolicy {
        self.cache
    }

    /// Builds the configured [`FusionSession`].
    pub fn build(self) -> FusionSession {
        FusionSession::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_parse_convention() {
        assert_eq!(Engine::parse("seq"), Engine::Sequential);
        assert_eq!(Engine::parse(" Sequential "), Engine::Sequential);
        assert_eq!(Engine::parse("pooled"), Engine::Pooled);
        assert_eq!(Engine::parse("spawn"), Engine::Spawn);
        assert_eq!(Engine::parse("auto"), Engine::Auto);
        assert_eq!(Engine::parse("garbage"), Engine::Auto);
    }

    #[test]
    fn precedence_explicit_beats_env_beats_default() {
        // Workers: explicit > env > auto-detect (1).
        assert_eq!(FusionConfig::new().resolved_workers(), 1);
        let env = FusionConfig::from_env_values(None, Some("4"), None, None);
        assert_eq!(env.resolved_workers(), 4);
        assert_eq!(env.clone().workers(2).resolved_workers(), 2);
        assert_eq!(env.workers(1).resolved_workers(), 1);

        // Engine: explicit > env > auto-detect from the resolved workers.
        assert_eq!(FusionConfig::new().resolved_engine(), Engine::Sequential);
        assert_eq!(
            FusionConfig::new().workers(4).resolved_engine(),
            Engine::Pooled
        );
        let env = FusionConfig::from_env_values(Some("spawn"), Some("4"), None, None);
        assert_eq!(env.resolved_engine(), Engine::Spawn);
        assert_eq!(
            env.engine(Engine::Sequential).resolved_engine(),
            Engine::Sequential
        );
        // An explicitly sequential engine wins even when the env asks for
        // workers — the regression the session API exists to fix.
        let env = FusionConfig::from_env_values(None, Some("8"), None, None);
        assert_eq!(env.resolved_engine(), Engine::Pooled);
        assert_eq!(
            env.engine(Engine::Sequential).resolved_engine(),
            Engine::Sequential
        );
    }

    #[test]
    fn product_strategy_resolution_follows_workers() {
        assert_eq!(
            FusionConfig::new().resolved_product(),
            ProductStrategy::Packed
        );
        assert_eq!(
            FusionConfig::new().workers(3).resolved_product(),
            ProductStrategy::Parallel
        );
        assert_eq!(
            FusionConfig::new()
                .product(ProductStrategy::Reference)
                .resolved_product(),
            ProductStrategy::Reference
        );
    }

    #[test]
    fn unparseable_env_values_fall_back() {
        let c = FusionConfig::from_env_values(Some("bogus"), Some("bogus"), None, None);
        assert_eq!(c.resolved_workers(), 1);
        assert_eq!(c.resolved_engine(), Engine::Sequential);
    }

    #[test]
    fn sizing_knobs_follow_the_same_precedence() {
        use fsm_dfsm::{DEFAULT_DENSE_LIMIT, DEFAULT_MEM_BUDGET};

        // Defaults come from the dfsm crate's compiled-in constants.
        let c = FusionConfig::new();
        assert_eq!(c.resolved_dense_limit(), DEFAULT_DENSE_LIMIT);
        assert_eq!(c.resolved_mem_budget(), DEFAULT_MEM_BUDGET);

        // Environment snapshots use the byte-size grammar...
        let env = FusionConfig::from_env_values(None, None, Some("4k"), Some("64m"));
        assert_eq!(env.resolved_dense_limit(), 4 << 10);
        assert_eq!(env.resolved_mem_budget(), 64 << 20);

        // ...explicit builder calls beat them...
        let explicit = env.clone().dense_limit(100).mem_budget(1 << 16);
        assert_eq!(explicit.resolved_dense_limit(), 100);
        assert_eq!(explicit.resolved_mem_budget(), 1 << 16);

        // ...and unparseable env values fall through to the defaults.
        let bad = FusionConfig::from_env_values(None, None, Some("bogus"), Some("-3"));
        assert_eq!(bad.resolved_dense_limit(), DEFAULT_DENSE_LIMIT);
        assert_eq!(bad.resolved_mem_budget(), DEFAULT_MEM_BUDGET);
    }

    #[test]
    fn cache_policy_default_is_bounded() {
        assert_eq!(
            FusionConfig::new().cache_policy(),
            CachePolicy::Bounded(CachePolicy::DEFAULT_BOUND)
        );
        let c = FusionConfig::new().cache(CachePolicy::Disabled);
        assert_eq!(c.cache_policy(), CachePolicy::Disabled);
    }
}
