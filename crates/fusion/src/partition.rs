//! Partitions of a state set (Section 2.1 of the paper).
//!
//! A partition of the state set of the top machine `⊤` groups its states
//! into disjoint blocks.  Every machine that is less than or equal to `⊤`
//! corresponds to a *closed* partition (see [`crate::closed`]); this module
//! provides the partition data structure itself and the order relation the
//! paper defines between machines.
//!
//! Ordering convention (Definition in Section 2.1): `P1 ≤ P2` iff every
//! block of `P2` is contained in a block of `P1`; i.e. `P1` is the *coarser*
//! (less informative) partition.  The top machine corresponds to the finest
//! partition (all singletons) and the bottom machine `⊥` to the single-block
//! partition.
//!
//! `Partition` is the canonical element-indexed form used across the public
//! API; the word-level bitset form used by the hot paths lives in
//! [`crate::bitset`] (see [`Partition::to_bitset`]).  The operations here
//! are map-free single passes; the original `BTreeMap`-based element scans
//! are preserved in [`crate::reference`] for cross-validation.

use std::collections::BTreeMap;
use std::fmt;

use crate::bitset::{join_assignments, BitsetPartition};
use crate::error::{FusionError, Result};

/// A partition of the set `{0, …, n-1}` into disjoint blocks.
///
/// Internally stored as a block index per element, with blocks numbered
/// canonically by order of first occurrence, so two equal partitions always
/// have identical representations (and `PartialEq`/`Hash` behave as set
/// equality of the block structure).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Partition {
    /// `block_of[x]` is the canonical block index of element `x`.
    block_of: Vec<usize>,
    /// Number of blocks.
    num_blocks: usize,
}

impl Partition {
    /// The finest partition: every element in its own block.  Corresponds to
    /// the top machine `⊤` itself.
    pub fn singletons(n: usize) -> Self {
        Partition {
            block_of: (0..n).collect(),
            num_blocks: n,
        }
    }

    /// The coarsest partition: all elements in one block.  Corresponds to
    /// the bottom machine `⊥`.
    pub fn single_block(n: usize) -> Self {
        Partition {
            block_of: vec![0; n.max(1)],
            num_blocks: 1,
        }
    }

    /// Overwrites `self` with the contents of `other`, reusing `self`'s
    /// buffer — the allocation-free `clone_from` the closure-cache hit path
    /// uses (the derived `Clone::clone_from` would reallocate).
    pub(crate) fn copy_from(&mut self, other: &Partition) {
        self.block_of.clear();
        self.block_of.extend_from_slice(&other.block_of);
        self.num_blocks = other.num_blocks;
    }

    /// Builds a partition from an explicit block assignment
    /// (`assignment[x]` = arbitrary label of the block containing `x`).
    ///
    /// Labels bounded by a small multiple of the element count (the common
    /// case: block indices, union-find roots) are canonicalized through a
    /// dense relabel table in one pass; arbitrary sparse labels fall back to
    /// a `BTreeMap`.
    pub fn from_assignment(assignment: &[usize]) -> Self {
        let n = assignment.len();
        let max_label = match assignment.iter().copied().max() {
            None => {
                return Partition {
                    block_of: Vec::new(),
                    num_blocks: 0,
                }
            }
            Some(m) => m,
        };
        let mut block_of = Vec::with_capacity(n);
        let mut num_blocks = 0usize;
        if max_label < 4 * n {
            let mut table = vec![usize::MAX; max_label + 1];
            for &label in assignment {
                if table[label] == usize::MAX {
                    table[label] = num_blocks;
                    num_blocks += 1;
                }
                block_of.push(table[label]);
            }
        } else {
            let mut canon: BTreeMap<usize, usize> = BTreeMap::new();
            for &label in assignment {
                let next = canon.len();
                block_of.push(*canon.entry(label).or_insert(next));
            }
            num_blocks = canon.len();
        }
        Partition {
            block_of,
            num_blocks,
        }
    }

    /// Builds directly from an assignment that is already canonical
    /// (first-occurrence ordered labels `0..num_blocks`).  Callers must
    /// uphold the invariant; debug builds verify it.
    pub(crate) fn from_canonical_parts(block_of: Vec<usize>, num_blocks: usize) -> Self {
        debug_assert_eq!(
            Partition::from_assignment(&block_of).block_of,
            block_of,
            "assignment is not canonical"
        );
        Partition {
            block_of,
            num_blocks,
        }
    }

    /// In-place counterpart of [`Partition::from_canonical_parts`]: hands the
    /// caller the existing assignment buffer to overwrite, so scratch-reusing
    /// closure loops ([`crate::closed::ClosureKernel::close_merged_into`])
    /// can refresh a `Partition` without allocating.  `fill` must leave the
    /// buffer holding a canonical (first-occurrence ordered) assignment and
    /// return its block count; debug builds verify the invariant.
    pub(crate) fn refresh_canonical_with(&mut self, fill: impl FnOnce(&mut Vec<usize>) -> usize) {
        self.num_blocks = fill(&mut self.block_of);
        // Canonical ⟺ every label is at most one past the running maximum
        // (first occurrences appear in increasing label order).  Checked
        // without allocating so debug builds stay compatible with the
        // counting-allocator test pinning the inner loop
        // (`tests/alloc_free.rs`).
        #[cfg(debug_assertions)]
        {
            let mut next = 0usize;
            for &b in &self.block_of {
                assert!(b <= next, "refreshed assignment is not canonical");
                if b == next {
                    next += 1;
                }
            }
            assert_eq!(next, self.num_blocks, "refreshed block count is wrong");
        }
    }

    /// Builds a partition over `n` elements from explicit blocks.  The
    /// blocks must be disjoint and cover `{0, …, n-1}` exactly.
    pub fn from_blocks(n: usize, blocks: &[Vec<usize>]) -> Result<Self> {
        let mut assignment = vec![usize::MAX; n];
        for (b, block) in blocks.iter().enumerate() {
            for &x in block {
                if x >= n {
                    return Err(FusionError::InvalidPartition(format!(
                        "element {x} out of range 0..{n}"
                    )));
                }
                if assignment[x] != usize::MAX {
                    return Err(FusionError::InvalidPartition(format!(
                        "element {x} appears in more than one block"
                    )));
                }
                assignment[x] = b;
            }
        }
        if let Some(x) = assignment.iter().position(|&b| b == usize::MAX) {
            return Err(FusionError::InvalidPartition(format!(
                "element {x} is not covered by any block"
            )));
        }
        Ok(Self::from_assignment(&assignment))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.block_of.len()
    }

    /// Whether the partition is over an empty set.
    pub fn is_empty(&self) -> bool {
        self.block_of.is_empty()
    }

    /// Number of blocks.  This is the number of states of the machine the
    /// partition corresponds to (`|M|` in the paper).
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The canonical block index of an element.
    pub fn block_of(&self, x: usize) -> usize {
        self.block_of[x]
    }

    /// The raw block assignment.
    pub fn assignment(&self) -> &[usize] {
        &self.block_of
    }

    /// Whether two elements are in the same block.
    pub fn same_block(&self, x: usize, y: usize) -> bool {
        self.block_of[x] == self.block_of[y]
    }

    /// Whether the partition *separates* (distinguishes) two elements — the
    /// property counted by fault-graph edge weights (Definition 3).
    pub fn separates(&self, x: usize, y: usize) -> bool {
        self.block_of[x] != self.block_of[y]
    }

    /// Converts to the word-level bitset form used by the hot paths
    /// ([`crate::bitset::BitsetPartition`]).  Convert once, compare many
    /// times.
    pub fn to_bitset(&self) -> BitsetPartition {
        BitsetPartition::from_partition(self)
    }

    /// The blocks in compressed (CSR) layout: two flat allocations instead
    /// of the `Vec<Vec<usize>>` that [`Partition::blocks`] builds.  Use this
    /// (or [`Partition::iter_block`]) whenever only block membership is
    /// needed.
    pub fn block_groups(&self) -> BlockGroups {
        let mut counts = vec![0usize; self.num_blocks];
        for &b in &self.block_of {
            counts[b] += 1;
        }
        // offsets[b] is the start of block b; one extra entry marks the end.
        let mut offsets = Vec::with_capacity(self.num_blocks + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor: Vec<usize> = offsets[..self.num_blocks].to_vec();
        let mut elements = vec![0usize; self.block_of.len()];
        for (x, &b) in self.block_of.iter().enumerate() {
            elements[cursor[b]] = x;
            cursor[b] += 1;
        }
        BlockGroups { offsets, elements }
    }

    /// The blocks as explicit element lists, in canonical block order.
    ///
    /// Allocates one `Vec` per block; callers that only need membership
    /// should prefer [`Partition::block_groups`] or
    /// [`Partition::iter_block`].
    pub fn blocks(&self) -> Vec<Vec<usize>> {
        let groups = self.block_groups();
        groups.iter().map(|b| b.to_vec()).collect()
    }

    /// Iterator over the elements of one block, without allocating.
    pub fn iter_block(&self, b: usize) -> impl Iterator<Item = usize> + '_ {
        self.block_of
            .iter()
            .enumerate()
            .filter(move |&(_, &bb)| bb == b)
            .map(|(x, _)| x)
    }

    /// The elements of one block.
    pub fn block(&self, b: usize) -> Vec<usize> {
        self.iter_block(b).collect()
    }

    /// Whether this is the finest (singleton) partition.
    pub fn is_singletons(&self) -> bool {
        self.num_blocks == self.len()
    }

    /// Whether this is the single-block partition.
    pub fn is_single_block(&self) -> bool {
        self.num_blocks <= 1
    }

    /// Paper order (Definition in Section 2.1): `self ≤ other` iff every
    /// block of `other` is contained in a block of `self`, i.e. `other`
    /// refines `self` (`self` is coarser or equal).
    ///
    /// One sentinel-table pass over the elements.  For amortized use (one
    /// partition compared against many) prefer converting to
    /// [`BitsetPartition`] once and using its word-at-a-time
    /// [`BitsetPartition::le`].
    pub fn le(&self, other: &Partition) -> bool {
        assert_eq!(self.len(), other.len(), "partitions over different sets");
        // other refines self ⟺ whenever other puts x,y together, so does
        // self.  Check via: for each block label of other, all members map
        // to a single block of self.
        let mut rep: Vec<usize> = vec![usize::MAX; other.num_blocks];
        for (&sb, &ob) in self.block_of.iter().zip(&other.block_of) {
            if rep[ob] == usize::MAX {
                rep[ob] = sb;
            } else if rep[ob] != sb {
                return false;
            }
        }
        true
    }

    /// Strict version of [`Partition::le`].
    pub fn lt(&self, other: &Partition) -> bool {
        self.le(other) && self != other
    }

    /// Whether the two partitions are incomparable in the paper's order.
    pub fn incomparable(&self, other: &Partition) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Greatest lower bound in the machine order: the coarsest common
    /// refinement is the *join* of machines; the meet (greatest machine less
    /// than both) is the partition whose blocks are the connected components
    /// of "same block in self OR same block in other".
    pub fn meet(&self, other: &Partition) -> Partition {
        assert_eq!(self.len(), other.len());
        let n = self.len();
        let mut uf = UnionFind::new(n);
        // Union elements that share a block in either partition, tracking
        // the first element seen per block in flat tables.
        let mut first_in_self = vec![usize::MAX; self.num_blocks];
        let mut first_in_other = vec![usize::MAX; other.num_blocks];
        for x in 0..n {
            let sb = self.block_of[x];
            if first_in_self[sb] == usize::MAX {
                first_in_self[sb] = x;
            } else {
                uf.union(x, first_in_self[sb]);
            }
            let ob = other.block_of[x];
            if first_in_other[ob] == usize::MAX {
                first_in_other[ob] = x;
            } else {
                uf.union(x, first_in_other[ob]);
            }
        }
        uf.into_partition()
    }

    /// Least upper bound in the machine order: blocks are the non-empty
    /// intersections of blocks of `self` and `other` (the common
    /// refinement).
    pub fn join(&self, other: &Partition) -> Partition {
        assert_eq!(self.len(), other.len());
        let (assignment, num_blocks) =
            join_assignments(self.len(), self.num_blocks, other.num_blocks, |x| {
                (self.block_of[x], other.block_of[x])
            });
        Partition::from_canonical_parts(assignment, num_blocks)
    }

    /// Returns a new partition with the blocks containing `x` and `y`
    /// merged.
    pub fn merge_elements(&self, x: usize, y: usize) -> Partition {
        let bx = self.block_of[x];
        let by = self.block_of[y];
        if bx == by {
            return self.clone();
        }
        let assignment: Vec<usize> = self
            .block_of
            .iter()
            .map(|&b| if b == by { bx } else { b })
            .collect();
        Partition::from_assignment(&assignment)
    }

    /// Returns a new partition with two whole blocks merged.
    pub fn merge_blocks(&self, b1: usize, b2: usize) -> Partition {
        if b1 == b2 {
            return self.clone();
        }
        let assignment: Vec<usize> = self
            .block_of
            .iter()
            .map(|&b| if b == b2 { b1 } else { b })
            .collect();
        Partition::from_assignment(&assignment)
    }
}

impl fmt::Debug for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Partition{}", self)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let groups = self.block_groups();
        write!(f, "{{")?;
        for (i, b) in groups.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            let items: Vec<String> = b.iter().map(|x| x.to_string()).collect();
            write!(f, "{}", items.join(","))?;
        }
        write!(f, "}}")
    }
}

/// The blocks of a partition in compressed sparse row (CSR) layout: a flat
/// element array plus per-block offsets.  Built once by
/// [`Partition::block_groups`]; every block is then a slice view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockGroups {
    /// `offsets[b]..offsets[b + 1]` is the range of block `b` in `elements`.
    offsets: Vec<usize>,
    /// Elements grouped by block, each block in increasing element order.
    elements: Vec<usize>,
}

impl BlockGroups {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The elements of block `b`, in increasing order.
    pub fn block(&self, b: usize) -> &[usize] {
        &self.elements[self.offsets[b]..self.offsets[b + 1]]
    }

    /// Iterator over all blocks, in canonical block order.
    pub fn iter(&self) -> impl Iterator<Item = &[usize]> {
        (0..self.len()).map(|b| self.block(b))
    }
}

/// A small union-find used by partition closure operations.
///
/// `find` uses iterative path halving, so deep merge chains cannot overflow
/// the stack and the hot closure loops stay allocation-free.
#[derive(Debug, Clone, Default)]
pub(crate) struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    pub(crate) fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
        }
    }

    /// Re-initializes for `n` elements, reusing the existing buffers.  After
    /// warm-up (first call at a given `n`) this allocates nothing, which is
    /// what lets [`crate::closed::CloseScratch`] keep Algorithm 2's inner
    /// loop allocation-free.
    pub(crate) fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n);
        self.rank.clear();
        self.rank.resize(n, 0);
    }

    pub(crate) fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    pub(crate) fn union(&mut self, x: usize, y: usize) -> bool {
        let rx = self.find(x);
        let ry = self.find(y);
        if rx == ry {
            return false;
        }
        match self.rank[rx].cmp(&self.rank[ry]) {
            std::cmp::Ordering::Less => self.parent[rx] = ry,
            std::cmp::Ordering::Greater => self.parent[ry] = rx,
            std::cmp::Ordering::Equal => {
                self.parent[ry] = rx;
                self.rank[rx] += 1;
            }
        }
        true
    }

    /// The canonical (first-occurrence ordered) assignment of the current
    /// components, plus the component count.
    pub(crate) fn canonical_assignment(&mut self) -> (Vec<usize>, usize) {
        let mut assignment = Vec::with_capacity(self.parent.len());
        let mut label_of_root = Vec::new();
        let num_blocks = self.canonical_assignment_into(&mut label_of_root, &mut assignment);
        (assignment, num_blocks)
    }

    /// Writes the canonical assignment into `out` (reusing its buffer) and
    /// returns the component count.  `label_of_root` is caller-owned scratch
    /// so repeated calls stay allocation-free once the buffers have grown to
    /// the element count.
    pub(crate) fn canonical_assignment_into(
        &mut self,
        label_of_root: &mut Vec<usize>,
        out: &mut Vec<usize>,
    ) -> usize {
        let n = self.parent.len();
        label_of_root.clear();
        label_of_root.resize(n, usize::MAX);
        out.clear();
        out.reserve(n);
        let mut num_blocks = 0usize;
        for x in 0..n {
            let r = self.find(x);
            if label_of_root[r] == usize::MAX {
                label_of_root[r] = num_blocks;
                num_blocks += 1;
            }
            out.push(label_of_root[r]);
        }
        num_blocks
    }

    pub(crate) fn into_partition(mut self) -> Partition {
        let (assignment, num_blocks) = self.canonical_assignment();
        Partition::from_canonical_parts(assignment, num_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_and_single_block() {
        let fine = Partition::singletons(4);
        let coarse = Partition::single_block(4);
        assert_eq!(fine.num_blocks(), 4);
        assert_eq!(coarse.num_blocks(), 1);
        assert!(fine.is_singletons());
        assert!(coarse.is_single_block());
        // coarse ≤ fine in the paper's order (⊥ ≤ ⊤).
        assert!(coarse.le(&fine));
        assert!(!fine.le(&coarse));
        assert!(coarse.lt(&fine));
    }

    #[test]
    fn from_blocks_valid_and_invalid() {
        let p = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
        assert_eq!(p.num_blocks(), 3);
        assert!(p.same_block(0, 3));
        assert!(p.separates(0, 1));

        assert!(Partition::from_blocks(3, &[vec![0, 1]]).is_err()); // missing 2
        assert!(Partition::from_blocks(3, &[vec![0, 1], vec![1, 2]]).is_err()); // overlap
        assert!(Partition::from_blocks(3, &[vec![0, 1, 5], vec![2]]).is_err()); // out of range
    }

    #[test]
    fn canonical_form_is_order_independent() {
        let p1 = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
        let p2 = Partition::from_blocks(4, &[vec![2], vec![1], vec![3, 0]]).unwrap();
        assert_eq!(p1, p2);
        let p3 = Partition::from_assignment(&[7, 9, 2, 7]);
        assert_eq!(p1, p3);
    }

    #[test]
    fn from_assignment_sparse_labels_fall_back() {
        // Labels far above 4n exercise the BTreeMap fallback; canonical form
        // must be identical to the dense path.
        let sparse = Partition::from_assignment(&[1_000_000, 99, 1_000_000, 7]);
        let dense = Partition::from_assignment(&[0, 1, 0, 2]);
        assert_eq!(sparse, dense);
        assert_eq!(Partition::from_assignment(&[]).len(), 0);
        assert_eq!(Partition::from_assignment(&[]).num_blocks(), 0);
    }

    #[test]
    fn le_matches_block_containment() {
        // P1 = {0,3 | 1,2}  (coarser)   P2 = {0,3 | 1 | 2} (finer)
        let p1 = Partition::from_blocks(4, &[vec![0, 3], vec![1, 2]]).unwrap();
        let p2 = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
        assert!(p1.le(&p2));
        assert!(!p2.le(&p1));
        assert!(p1.lt(&p2));
        // Incomparable pair.
        let q = Partition::from_blocks(4, &[vec![0, 1], vec![2, 3]]).unwrap();
        assert!(q.incomparable(&p2));
    }

    #[test]
    fn meet_and_join_are_lattice_operations() {
        let p = Partition::from_blocks(4, &[vec![0, 1], vec![2], vec![3]]).unwrap();
        let q = Partition::from_blocks(4, &[vec![1, 2], vec![0], vec![3]]).unwrap();
        let meet = p.meet(&q);
        let join = p.join(&q);
        // meet ≤ p, q ≤ join.
        assert!(meet.le(&p) && meet.le(&q));
        assert!(p.le(&join) && q.le(&join));
        // meet merges 0,1,2 transitively.
        assert!(meet.same_block(0, 2));
        assert!(meet.separates(0, 3));
        // join here is the singleton partition.
        assert!(join.is_singletons());
    }

    #[test]
    fn merge_elements_and_blocks() {
        let p = Partition::singletons(4);
        let m = p.merge_elements(1, 3);
        assert_eq!(m.num_blocks(), 3);
        assert!(m.same_block(1, 3));
        assert_eq!(p.merge_elements(2, 2), p);
        let m2 = m.merge_blocks(m.block_of(0), m.block_of(1));
        assert!(m2.same_block(0, 3));
        assert_eq!(m.merge_blocks(0, 0), m);
    }

    #[test]
    fn display_shows_blocks() {
        let p = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
        let s = format!("{p}");
        assert!(s.contains("0,3"));
        assert!(s.contains('|'));
    }

    #[test]
    fn blocks_roundtrip() {
        let p = Partition::from_blocks(5, &[vec![0, 2, 4], vec![1, 3]]).unwrap();
        let blocks = p.blocks();
        let q = Partition::from_blocks(5, &blocks).unwrap();
        assert_eq!(p, q);
        assert_eq!(p.block(p.block_of(1)), vec![1, 3]);
    }

    #[test]
    fn block_groups_match_blocks() {
        let p = Partition::from_blocks(6, &[vec![0, 2, 4], vec![1, 3], vec![5]]).unwrap();
        let groups = p.block_groups();
        assert_eq!(groups.len(), 3);
        assert!(!groups.is_empty());
        let from_groups: Vec<Vec<usize>> = groups.iter().map(|b| b.to_vec()).collect();
        assert_eq!(from_groups, p.blocks());
        assert_eq!(groups.block(1), &[1, 3]);
        assert_eq!(
            p.iter_block(0).collect::<Vec<_>>(),
            groups.block(0).to_vec()
        );
        // Out-of-range block indices simply yield nothing from iter_block.
        assert_eq!(p.iter_block(17).count(), 0);
    }

    #[test]
    fn bitset_conversion_roundtrips() {
        let p = Partition::from_blocks(5, &[vec![0, 2, 4], vec![1, 3]]).unwrap();
        let bits = p.to_bitset();
        assert_eq!(bits.to_partition(), p);
        assert_eq!(BitsetPartition::from(&p).to_partition(), p);
        assert_eq!(Partition::from(&bits), p);
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        let p = uf.into_partition();
        assert!(p.same_block(1, 2));
        assert!(p.separates(0, 4));
        assert_eq!(p.num_blocks(), 2);
    }
}
