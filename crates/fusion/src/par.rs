//! Crossbeam-channel worker pool for parallel candidate-merge evaluation.
//!
//! Algorithm 2's inner loop and lattice lower-cover computation both score
//! candidate block merges of a partition against one fixed machine: close
//! the merge with the [`ClosureKernel`], then (for Algorithm 2) test whether
//! the closed candidate still separates every weakest edge of the current
//! fault graph.  Each evaluation is independent, so the crate-internal
//! `MergePool` fans them out over a fixed set of worker threads connected
//! by `crossbeam-channel` queues — one command channel per worker plus a
//! shared result channel, the same spawn/command pattern as
//! `fsm_distsys::ParallelServerGroup`.
//!
//! The pool preserves the *sequential semantics* of the descent: callers
//! submit candidates in batches tagged with their position in the
//! sequential enumeration order, and `MergePool::eval_batch` returns the
//! covering candidate with the smallest position, so a parallel caller
//! commits to exactly the merge the sequential loop would have taken
//! (`tests/parallel_properties.rs` pins
//! [`crate::generate_fusion_par`] to [`crate::generate_fusion_seq`] this
//! way).
//!
//! Worker count is an explicit knob on the `*_par` entry points; the
//! plain entry points ([`crate::generate_fusion`],
//! [`crate::enumerate_lattice`]) consult [`configured_workers`] — the
//! `FSM_FUSION_WORKERS` environment variable — so a whole test suite or
//! deployment can opt into the parallel engine without code changes.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam_channel::{unbounded, Receiver, Sender};

use crate::closed::ClosureKernel;
use crate::error::{FusionError, Result};
use crate::fault_graph::FaultGraph;
use crate::partition::Partition;

/// Worker count requested through the `FSM_FUSION_WORKERS` environment
/// variable: unset, empty, `0` or `1` select the sequential paths, `auto`
/// selects [`std::thread::available_parallelism`], and any other number is
/// used as given.  Unparseable values fall back to sequential.
pub fn configured_workers() -> usize {
    match std::env::var("FSM_FUSION_WORKERS") {
        Ok(v) => parse_workers(&v),
        Err(_) => 1,
    }
}

/// The `FSM_FUSION_WORKERS` value convention, as a pure function so the
/// parsing rules are testable without mutating the process environment.
fn parse_workers(value: &str) -> usize {
    match value.trim() {
        "" | "0" | "1" => 1,
        "auto" => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        s => s.parse().unwrap_or(1),
    }
}

/// A candidate merge: close blocks `b1`/`b2` of `current`, then test the
/// closure against `weakest` (empty `weakest` accepts every closure — the
/// lower-cover use).  `idx` is the candidate's position in the caller's
/// sequential enumeration order and is echoed back with the result.
struct Job {
    idx: usize,
    current: Arc<Partition>,
    b1: usize,
    b2: usize,
    weakest: Arc<Vec<(usize, usize)>>,
}

/// `(idx, closure outcome)`: `Ok(Some(p))` when the closed merge covers
/// every weakest edge, `Ok(None)` when it does not.
type JobResult = (usize, Result<Option<Partition>>);

struct Worker {
    /// `Some` while the pool is live; taken (dropped) on shutdown so the
    /// worker's `recv` loop ends.
    jobs: Option<Sender<Job>>,
    join: Option<JoinHandle<()>>,
}

/// A pool of worker threads evaluating candidate merges against one
/// [`ClosureKernel`].
///
/// Spawned once per search (Algorithm 2 call or lattice enumeration) and
/// reused across every descent level, so thread start-up is paid once, not
/// per candidate.  Dropping the pool closes the command channels and joins
/// the workers.
pub(crate) struct MergePool {
    workers: Vec<Worker>,
    results: Receiver<JobResult>,
    next: usize,
}

impl MergePool {
    /// Spawns `workers` threads (at least one), each owning a clone of the
    /// kernel's flat transition table.
    pub(crate) fn spawn(kernel: &ClosureKernel, workers: usize) -> Self {
        let (result_tx, results) = unbounded::<JobResult>();
        let workers = (0..workers.max(1))
            .map(|_| {
                let (jobs_tx, jobs_rx) = unbounded::<Job>();
                let kernel = kernel.clone();
                let result_tx = result_tx.clone();
                let join = std::thread::spawn(move || {
                    while let Ok(job) = jobs_rx.recv() {
                        let res = kernel.close_merged(&job.current, job.b1, job.b2).map(|c| {
                            if job.weakest.is_empty() || FaultGraph::covers_all(&c, &job.weakest) {
                                Some(c)
                            } else {
                                None
                            }
                        });
                        if result_tx.send((job.idx, res)).is_err() {
                            break;
                        }
                    }
                });
                Worker {
                    jobs: Some(jobs_tx),
                    join: Some(join),
                }
            })
            .collect();
        MergePool {
            workers,
            results,
            next: 0,
        }
    }

    /// A batch size that keeps every worker busy while bounding the
    /// overshoot past an early covering candidate.
    pub(crate) fn batch_size(&self) -> usize {
        (self.workers.len() * 2).max(4)
    }

    fn submit(&mut self, job: Job) {
        let w = self.next % self.workers.len();
        self.next = self.next.wrapping_add(1);
        self.workers[w]
            .jobs
            .as_ref()
            .expect("merge pool not shut down")
            .send(job)
            .expect("merge pool worker thread alive");
    }

    /// Evaluates one batch of candidate merges `(idx, b1, b2)` of `current`
    /// and returns the covering candidate with the smallest `idx`, or `None`
    /// when no candidate in the batch covers all of `weakest`.
    ///
    /// The whole batch is always drained before returning, so no stale
    /// results leak into the next call.
    pub(crate) fn eval_batch(
        &mut self,
        current: &Arc<Partition>,
        weakest: &Arc<Vec<(usize, usize)>>,
        batch: &[(usize, usize, usize)],
    ) -> Result<Option<(usize, Partition)>> {
        for &(idx, b1, b2) in batch {
            self.submit(Job {
                idx,
                current: Arc::clone(current),
                b1,
                b2,
                weakest: Arc::clone(weakest),
            });
        }
        let mut best: Option<(usize, Partition)> = None;
        let mut first_err: Option<FusionError> = None;
        for _ in 0..batch.len() {
            let (idx, res) = self.results.recv().expect("merge pool worker thread alive");
            match res {
                Ok(Some(candidate)) => {
                    if best.as_ref().map_or(true, |(b, _)| idx < *b) {
                        best = Some((idx, candidate));
                    }
                }
                Ok(None) => {}
                Err(e) => first_err = Some(e),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(best),
        }
    }

    /// Closes every merge `(b1, b2)` of `p` in parallel and returns the
    /// closures in input order — the lower-cover fan-out.
    pub(crate) fn close_merges(
        &mut self,
        p: &Partition,
        pairs: &[(usize, usize)],
    ) -> Result<Vec<Partition>> {
        let current = Arc::new(p.clone());
        let accept_all = Arc::new(Vec::new());
        for (idx, &(b1, b2)) in pairs.iter().enumerate() {
            self.submit(Job {
                idx,
                current: Arc::clone(&current),
                b1,
                b2,
                weakest: Arc::clone(&accept_all),
            });
        }
        let mut out: Vec<Option<Partition>> = vec![None; pairs.len()];
        let mut first_err: Option<FusionError> = None;
        for _ in 0..pairs.len() {
            let (idx, res) = self.results.recv().expect("merge pool worker thread alive");
            match res {
                Ok(candidate) => out[idx] = candidate,
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(out
            .into_iter()
            .map(|c| c.expect("empty weakest set accepts every closure"))
            .collect())
    }
}

impl Drop for MergePool {
    fn drop(&mut self) {
        // Dropping the command senders ends each worker's recv loop.
        for w in &mut self.workers {
            w.jobs = None;
        }
        for w in &mut self.workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_dfsm::DfsmBuilder;

    /// Reconstruction of the paper's Fig. 2/3 top machine (4 states).
    fn top4() -> fsm_dfsm::Dfsm {
        let mut b = DfsmBuilder::new("top");
        b.add_states(["t0", "t1", "t2", "t3"]);
        b.set_initial("t0");
        b.add_transition("t0", "0", "t1");
        b.add_transition("t1", "0", "t2");
        b.add_transition("t2", "0", "t1");
        b.add_transition("t3", "0", "t1");
        b.add_transition("t0", "1", "t3");
        b.add_transition("t1", "1", "t2");
        b.add_transition("t2", "1", "t0");
        b.add_transition("t3", "1", "t0");
        b.build().unwrap()
    }

    #[test]
    fn eval_batch_returns_the_sequentially_first_covering_candidate() {
        let top = top4();
        let kernel = ClosureKernel::new(&top);
        let mut pool = MergePool::spawn(&kernel, 3);
        assert!(pool.batch_size() >= 4);
        let current = Arc::new(Partition::singletons(4));
        // Weakest edge (1, 2): a covering candidate must keep t1 and t2
        // apart.
        let weakest = Arc::new(vec![(1usize, 2usize)]);
        let k = 4;
        let batch: Vec<(usize, usize, usize)> = (0..k)
            .flat_map(|b1| ((b1 + 1)..k).map(move |b2| (b1, b2)))
            .enumerate()
            .map(|(idx, (b1, b2))| (idx, b1, b2))
            .collect();
        let hit = pool
            .eval_batch(&current, &weakest, &batch)
            .unwrap()
            .expect("some merge covers (1,2)");
        // Sequential reference: first merge whose closure separates 1 and 2.
        let seq = batch
            .iter()
            .find_map(|&(idx, b1, b2)| {
                let c = kernel.close_merged(&current, b1, b2).unwrap();
                c.separates(1, 2).then_some((idx, c))
            })
            .unwrap();
        assert_eq!(hit, seq);
    }

    #[test]
    fn close_merges_matches_direct_closures_in_order() {
        let top = top4();
        let kernel = ClosureKernel::new(&top);
        let mut pool = MergePool::spawn(&kernel, 2);
        let p = Partition::singletons(4);
        let pairs: Vec<(usize, usize)> = (0..4)
            .flat_map(|b1| ((b1 + 1)..4).map(move |b2| (b1, b2)))
            .collect();
        let pooled = pool.close_merges(&p, &pairs).unwrap();
        let direct: Vec<Partition> = pairs
            .iter()
            .map(|&(b1, b2)| kernel.close_merged(&p, b1, b2).unwrap())
            .collect();
        assert_eq!(pooled, direct);
    }

    #[test]
    fn size_mismatch_errors_propagate_out_of_the_pool() {
        let top = top4();
        let kernel = ClosureKernel::new(&top);
        let mut pool = MergePool::spawn(&kernel, 2);
        let wrong = Arc::new(Partition::singletons(3));
        let weakest = Arc::new(Vec::new());
        let err = pool.eval_batch(&wrong, &weakest, &[(0, 0, 1)]);
        assert!(err.is_err());
        // The pool stays usable after an error.
        let ok = pool
            .eval_batch(&Arc::new(Partition::singletons(4)), &weakest, &[(0, 0, 1)])
            .unwrap();
        assert!(ok.is_some());
    }

    #[test]
    fn parse_workers_follows_the_env_convention() {
        // The parser is a pure function, so the rules are testable without
        // mutating the process environment (other tests in this binary run
        // concurrently).
        for sequential in ["", " ", "0", "1", " 1 ", "garbage", "-3", "2.5"] {
            assert_eq!(parse_workers(sequential), 1, "value {sequential:?}");
        }
        assert_eq!(parse_workers("2"), 2);
        assert_eq!(parse_workers(" 16 "), 16);
        assert!(parse_workers("auto") >= 1);
        // And the env-reading wrapper stays callable.
        assert!(configured_workers() >= 1);
    }
}
