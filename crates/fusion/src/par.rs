//! Persistent crossbeam-channel worker pool for parallel candidate-merge
//! evaluation.
//!
//! Algorithm 2's inner loop and lattice lower-cover computation both score
//! candidate block merges of a partition against one fixed machine: close
//! the merge with the [`ClosureKernel`], then (for Algorithm 2) test whether
//! the closed candidate still separates every weakest edge of the current
//! fault graph.  Each evaluation is independent, so the crate-internal
//! `MergePool` fans them out over worker threads connected by
//! `crossbeam-channel` queues.
//!
//! ## Pool lifecycle
//!
//! Worker threads are **spawned once per process and reused by every
//! search**: `MergePool::attach` lazily grows a global registry (an
//! [`OnceLock`]-guarded sender list) to the requested worker count and
//! borrows the first `workers` threads for the search.  Spawn cost is
//! therefore paid once, which pushes the parallel engine's break-even point
//! well below the `|⊤| ≈ 81` crossover the per-search-spawn design had.
//!
//! Isolation between searches is structural:
//!
//! * every search owns a **private result channel** — each job carries the
//!   sender, so two concurrent searches sharing the global workers cannot
//!   read each other's results; this channel is the isolation boundary;
//! * on top of that, every search is stamped with a fresh **epoch** from a
//!   global counter, echoed back in each result, and the receive loops
//!   discard mismatched epochs — pure defense in depth today (a private
//!   channel never carries foreign epochs), it keeps a future refactor
//!   that shares or long-lives a receiver from silently accepting another
//!   search's answers;
//! * every job carries an `Arc` of its search's [`ClosureKernel`], so the
//!   long-lived workers serve machines of any size back to back.
//!
//! Each worker thread owns one [`CloseScratch`] and one reusable output
//! partition for its whole life, so candidate closures on the workers are
//! allocation-free too (only a *covering* candidate is cloned, once, to be
//! sent back).
//!
//! The pool preserves the *sequential semantics* of the descent: callers
//! submit candidates in batches tagged with their position in the
//! sequential enumeration order, and `MergePool::eval_batch` returns the
//! covering candidate with the smallest position, so a parallel caller
//! commits to exactly the merge the sequential loop would have taken
//! (`tests/parallel_properties.rs` pins
//! [`crate::generate_fusion_par`] to [`crate::generate_fusion_seq`] this
//! way, including back-to-back searches reusing the warm pool).
//!
//! Worker count is an explicit knob on the `*_par` entry points; the
//! plain entry points ([`crate::generate_fusion`],
//! [`crate::enumerate_lattice`]) consult [`configured_workers`] — the
//! `FSM_FUSION_WORKERS` environment variable, shared with
//! [`fsm_dfsm::ReachableProduct`]'s parallel builder — so a whole test
//! suite or deployment can opt into the parallel engines without code
//! changes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

use crossbeam_channel::{unbounded, Receiver, Sender};

/// Worker count requested through the `FSM_FUSION_WORKERS` environment
/// variable (re-exported from [`fsm_dfsm`], where the reachable-product
/// builder shares it): unset, empty, `0` or `1` select the sequential
/// paths, `auto` selects [`std::thread::available_parallelism`], and any
/// other number is used as given.  Unparseable values fall back to
/// sequential.
pub use fsm_dfsm::configured_workers;

use crate::closed::{CloseScratch, ClosureKernel};
use crate::error::{FusionError, Result};
use crate::fault_graph::FaultGraph;
use crate::partition::Partition;

/// A candidate merge: close blocks `b1`/`b2` of `current`, then test the
/// closure against `weakest` (empty `weakest` accepts every closure — the
/// lower-cover use).  `idx` is the candidate's position in the caller's
/// sequential enumeration order and is echoed back with the result; `epoch`
/// identifies the issuing search and `results` is that search's private
/// result channel.
struct Job {
    idx: usize,
    epoch: u64,
    kernel: Arc<ClosureKernel>,
    current: Arc<Partition>,
    b1: usize,
    b2: usize,
    weakest: Arc<Vec<(usize, usize)>>,
    results: Sender<JobResult>,
}

/// `(epoch, idx, closure outcome)`: `Ok(Some(p))` when the closed merge
/// covers every weakest edge, `Ok(None)` when it does not.
type JobResult = (u64, usize, Result<Option<Partition>>);

/// The process-wide worker registry: one command sender per spawned worker
/// thread.  Threads are never joined — they block on `recv` between
/// searches and die with the process (the sender list lives in a `static`,
/// so the channels stay open for the program's lifetime).
static GLOBAL_WORKERS: OnceLock<Mutex<Vec<Sender<Job>>>> = OnceLock::new();

/// Monotone epoch source; every search (pool attachment) takes one.
static EPOCH: AtomicU64 = AtomicU64::new(0);

/// The worker-thread body: serve jobs forever, reusing one scratch and one
/// output partition so per-candidate closures never allocate.
///
/// Each evaluation runs under `catch_unwind`: these threads are a
/// process-lifetime shared resource, so a panic inside one candidate (e.g.
/// an out-of-range block index) must not kill the worker — that would hang
/// the issuing search's result drain *and* leave a dead queue in the global
/// registry for every future search.  A contained panic is reported back as
/// [`FusionError::WorkerPanicked`] and the (possibly poisoned) scratch
/// buffers are replaced before the next job.
fn worker_loop(worker: usize, jobs: Receiver<Job>) {
    let mut scratch = CloseScratch::new();
    let mut out = Partition::singletons(0);
    while let Ok(job) = jobs.recv() {
        let evaluated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job.kernel
                .close_merged_into(&mut scratch, &job.current, job.b1, job.b2, &mut out)
                .map(|()| {
                    if job.weakest.is_empty() || FaultGraph::covers_all(&out, &job.weakest) {
                        Some(out.clone())
                    } else {
                        None
                    }
                })
        }));
        let res = match evaluated {
            Ok(res) => res,
            Err(_) => {
                scratch = CloseScratch::new();
                out = Partition::singletons(0);
                Err(FusionError::WorkerPanicked { worker })
            }
        };
        // A send failure means the issuing search is gone; keep serving.
        let _ = job.results.send((job.epoch, job.idx, res));
    }
}

/// A per-search handle onto the merge workers.
///
/// [`MergePool::attach`] borrows threads from the persistent global
/// registry (the production path); [`MergePool::spawn_standalone`] spawns
/// private threads that are joined on drop — kept so benchmarks can measure
/// the old cold-start cost (`alg2_search_spawn_*` vs `alg2_search_pooled_*`
/// in `BENCH_fusion.json`).
pub(crate) struct MergePool {
    senders: Vec<Sender<Job>>,
    kernel: Arc<ClosureKernel>,
    epoch: u64,
    results: Receiver<JobResult>,
    result_tx: Sender<JobResult>,
    next: usize,
    /// Join handles for standalone pools; empty for attached (global) pools.
    standalone: Vec<JoinHandle<()>>,
}

impl MergePool {
    /// Attaches to the persistent global pool, growing it to at least
    /// `workers` threads (at least one).  The search gets a fresh epoch and
    /// a private result channel; the worker threads themselves are shared
    /// with every other search in the process, past and future.  The
    /// kernel is taken as an `Arc` (not copied), so attaching costs no
    /// clone of the flat transition table.
    pub(crate) fn attach(kernel: Arc<ClosureKernel>, workers: usize) -> Self {
        let workers = workers.max(1);
        let registry = GLOBAL_WORKERS.get_or_init(|| Mutex::new(Vec::new()));
        let senders = {
            let mut guard = registry.lock().expect("merge pool registry poisoned");
            while guard.len() < workers {
                let (tx, rx) = unbounded::<Job>();
                // The worker's id is its index in the global registry, so a
                // `WorkerPanicked { worker }` error names a stable thread.
                let id = guard.len();
                std::thread::spawn(move || worker_loop(id, rx));
                guard.push(tx);
            }
            guard[..workers].to_vec()
        };
        Self::with_senders(kernel, senders, Vec::new())
    }

    /// Spawns `workers` private threads (at least one) that serve only this
    /// pool and are joined when it drops — the pre-persistent-pool behavior,
    /// preserved for cold-start benchmarking.
    pub(crate) fn spawn_standalone(kernel: Arc<ClosureKernel>, workers: usize) -> Self {
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for id in 0..workers.max(1) {
            let (tx, rx) = unbounded::<Job>();
            handles.push(std::thread::spawn(move || worker_loop(id, rx)));
            senders.push(tx);
        }
        Self::with_senders(kernel, senders, handles)
    }

    fn with_senders(
        kernel: Arc<ClosureKernel>,
        senders: Vec<Sender<Job>>,
        standalone: Vec<JoinHandle<()>>,
    ) -> Self {
        let (result_tx, results) = unbounded::<JobResult>();
        MergePool {
            senders,
            kernel,
            epoch: EPOCH.fetch_add(1, Ordering::Relaxed) + 1,
            results,
            result_tx,
            next: 0,
            standalone,
        }
    }

    /// A batch size that keeps every worker busy while bounding the
    /// overshoot past an early covering candidate.
    pub(crate) fn batch_size(&self) -> usize {
        (self.senders.len() * 2).max(4)
    }

    fn submit(
        &mut self,
        idx: usize,
        current: &Arc<Partition>,
        b1: usize,
        b2: usize,
        weakest: &Arc<Vec<(usize, usize)>>,
    ) {
        let w = self.next % self.senders.len();
        self.next = self.next.wrapping_add(1);
        self.senders[w]
            .send(Job {
                idx,
                epoch: self.epoch,
                kernel: Arc::clone(&self.kernel),
                current: Arc::clone(current),
                b1,
                b2,
                weakest: Arc::clone(weakest),
                results: self.result_tx.clone(),
            })
            .expect("merge pool worker thread alive");
    }

    /// Receives one result for this search, discarding stale-epoch replies.
    fn recv_result(&self) -> (usize, Result<Option<Partition>>) {
        loop {
            let (epoch, idx, res) = self.results.recv().expect("merge pool worker thread alive");
            if epoch == self.epoch {
                return (idx, res);
            }
            // Stale: a result stamped by an earlier epoch (e.g. a previous
            // search whose handle leaked its channel into ours).  Discard.
        }
    }

    /// Evaluates one batch of candidate merges `(idx, b1, b2)` of `current`
    /// and returns the covering candidate with the smallest `idx`, or `None`
    /// when no candidate in the batch covers all of `weakest`.
    ///
    /// The whole batch is always drained before returning, so no stale
    /// results leak into the next call.
    pub(crate) fn eval_batch(
        &mut self,
        current: &Arc<Partition>,
        weakest: &Arc<Vec<(usize, usize)>>,
        batch: &[(usize, usize, usize)],
    ) -> Result<Option<(usize, Partition)>> {
        for &(idx, b1, b2) in batch {
            self.submit(idx, current, b1, b2, weakest);
        }
        let mut best: Option<(usize, Partition)> = None;
        let mut first_err: Option<FusionError> = None;
        for _ in 0..batch.len() {
            let (idx, res) = self.recv_result();
            match res {
                Ok(Some(candidate)) => {
                    if best.as_ref().map_or(true, |(b, _)| idx < *b) {
                        best = Some((idx, candidate));
                    }
                }
                Ok(None) => {}
                Err(e) => first_err = Some(e),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(best),
        }
    }

    /// Closes every merge `(b1, b2)` of `p` in parallel and returns the
    /// closures in input order — the lower-cover fan-out.
    pub(crate) fn close_merges(
        &mut self,
        p: &Partition,
        pairs: &[(usize, usize)],
    ) -> Result<Vec<Partition>> {
        let current = Arc::new(p.clone());
        let accept_all = Arc::new(Vec::new());
        for (idx, &(b1, b2)) in pairs.iter().enumerate() {
            self.submit(idx, &current, b1, b2, &accept_all);
        }
        let mut out: Vec<Option<Partition>> = vec![None; pairs.len()];
        let mut first_err: Option<FusionError> = None;
        for _ in 0..pairs.len() {
            let (idx, res) = self.recv_result();
            match res {
                Ok(candidate) => out[idx] = candidate,
                Err(e) => first_err = Some(e),
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(out
            .into_iter()
            .map(|c| c.expect("empty weakest set accepts every closure"))
            .collect())
    }
}

impl Drop for MergePool {
    fn drop(&mut self) {
        if self.standalone.is_empty() {
            // Attached to the global pool: the workers outlive the search.
            return;
        }
        // Standalone: dropping the command senders ends each worker's recv
        // loop, then the threads are joined.
        self.senders.clear();
        for j in self.standalone.drain(..) {
            let _ = j.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_dfsm::DfsmBuilder;

    /// Reconstruction of the paper's Fig. 2/3 top machine (4 states).
    fn top4() -> fsm_dfsm::Dfsm {
        let mut b = DfsmBuilder::new("top");
        b.add_states(["t0", "t1", "t2", "t3"]);
        b.set_initial("t0");
        b.add_transition("t0", "0", "t1");
        b.add_transition("t1", "0", "t2");
        b.add_transition("t2", "0", "t1");
        b.add_transition("t3", "0", "t1");
        b.add_transition("t0", "1", "t3");
        b.add_transition("t1", "1", "t2");
        b.add_transition("t2", "1", "t0");
        b.add_transition("t3", "1", "t0");
        b.build().unwrap()
    }

    #[test]
    fn eval_batch_returns_the_sequentially_first_covering_candidate() {
        let top = top4();
        let kernel = Arc::new(ClosureKernel::new(&top));
        let mut pool = MergePool::attach(Arc::clone(&kernel), 3);
        assert!(pool.batch_size() >= 4);
        let current = Arc::new(Partition::singletons(4));
        // Weakest edge (1, 2): a covering candidate must keep t1 and t2
        // apart.
        let weakest = Arc::new(vec![(1usize, 2usize)]);
        let k = 4;
        let batch: Vec<(usize, usize, usize)> = (0..k)
            .flat_map(|b1| ((b1 + 1)..k).map(move |b2| (b1, b2)))
            .enumerate()
            .map(|(idx, (b1, b2))| (idx, b1, b2))
            .collect();
        let hit = pool
            .eval_batch(&current, &weakest, &batch)
            .unwrap()
            .expect("some merge covers (1,2)");
        // Sequential reference: first merge whose closure separates 1 and 2.
        let seq = batch
            .iter()
            .find_map(|&(idx, b1, b2)| {
                let c = kernel.close_merged(&current, b1, b2).unwrap();
                c.separates(1, 2).then_some((idx, c))
            })
            .unwrap();
        assert_eq!(hit, seq);
    }

    #[test]
    fn close_merges_matches_direct_closures_in_order() {
        let top = top4();
        let kernel = Arc::new(ClosureKernel::new(&top));
        let mut pool = MergePool::attach(Arc::clone(&kernel), 2);
        let p = Partition::singletons(4);
        let pairs: Vec<(usize, usize)> = (0..4)
            .flat_map(|b1| ((b1 + 1)..4).map(move |b2| (b1, b2)))
            .collect();
        let pooled = pool.close_merges(&p, &pairs).unwrap();
        let direct: Vec<Partition> = pairs
            .iter()
            .map(|&(b1, b2)| kernel.close_merged(&p, b1, b2).unwrap())
            .collect();
        assert_eq!(pooled, direct);
    }

    #[test]
    fn size_mismatch_errors_propagate_out_of_the_pool() {
        let top = top4();
        let kernel = Arc::new(ClosureKernel::new(&top));
        let mut pool = MergePool::attach(Arc::clone(&kernel), 2);
        let wrong = Arc::new(Partition::singletons(3));
        let weakest = Arc::new(Vec::new());
        let err = pool.eval_batch(&wrong, &weakest, &[(0, 0, 1)]);
        assert!(err.is_err());
        // The pool stays usable after an error.
        let ok = pool
            .eval_batch(&Arc::new(Partition::singletons(4)), &weakest, &[(0, 0, 1)])
            .unwrap();
        assert!(ok.is_some());
    }

    #[test]
    fn attached_pools_share_workers_and_stay_isolated() {
        // Two handles attached back to back (and one standalone pool) all
        // answer correctly: epochs and private result channels keep the
        // searches isolated even though the attached handles share threads.
        let top = top4();
        let kernel = Arc::new(ClosureKernel::new(&top));
        let p = Arc::new(Partition::singletons(4));
        let weakest = Arc::new(vec![(0usize, 1usize)]);
        let batch = [(0usize, 0usize, 1usize), (1, 0, 2), (2, 2, 3)];
        let mut first = MergePool::attach(Arc::clone(&kernel), 2);
        let mut second = MergePool::attach(Arc::clone(&kernel), 4);
        let mut standalone = MergePool::spawn_standalone(Arc::clone(&kernel), 2);
        assert_ne!(first.epoch, second.epoch);
        let a = first.eval_batch(&p, &weakest, &batch).unwrap();
        let b = second.eval_batch(&p, &weakest, &batch).unwrap();
        let c = standalone.eval_batch(&p, &weakest, &batch).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        // And a second round on the first handle still works (pool reuse).
        let again = first.eval_batch(&p, &weakest, &batch).unwrap();
        assert_eq!(a, again);
    }

    #[test]
    fn worker_panics_are_contained_and_the_pool_survives() {
        // A candidate with an out-of-range block index panics inside the
        // worker's closure evaluation.  The worker must contain it (the
        // pool threads are a process-lifetime shared resource), report
        // WorkerPanicked, and keep serving both this handle and fresh
        // attachments.
        let top = top4();
        let kernel = Arc::new(ClosureKernel::new(&top));
        let mut pool = MergePool::attach(Arc::clone(&kernel), 2);
        let p = Arc::new(Partition::singletons(4));
        let weakest = Arc::new(Vec::new());
        let err = pool.eval_batch(&p, &weakest, &[(0, 999, 1000)]);
        match err {
            Err(FusionError::WorkerPanicked { worker }) => {
                // The id names a registry slot this pool actually borrowed,
                // and the Display form surfaces it.
                assert!(worker < 2);
                let msg = FusionError::WorkerPanicked { worker }.to_string();
                assert!(msg.contains(&format!("worker {worker}")));
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The same handle keeps working...
        let ok = pool.eval_batch(&p, &weakest, &[(0, 0, 1)]).unwrap();
        assert!(ok.is_some());
        // ...and so does a fresh attachment over the same global workers.
        let mut fresh = MergePool::attach(Arc::clone(&kernel), 2);
        let ok = fresh.eval_batch(&p, &weakest, &[(0, 1, 2)]).unwrap();
        assert!(ok.is_some());
    }

    #[test]
    fn configured_workers_is_reexported() {
        // The env-reading knob now lives in fsm-dfsm (shared with the
        // product builder); the fusion-facing re-export stays callable.
        assert!(configured_workers() >= 1);
    }
}
