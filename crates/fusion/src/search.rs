//! Exhaustive fusion search (the paper's Section 7 future-work directions).
//!
//! Algorithm 2 is greedy: it returns *a* minimal fusion with the minimum
//! number of machines, but the paper notes two open directions:
//!
//! 1. other machines in the lattice might give a fusion with **less total
//!    state**, and
//! 2. allowing **more backup machines** than the minimum might allow each of
//!    them to be smaller.
//!
//! For small top machines both questions can be answered exactly by
//! enumerating the closed partition lattice and searching over machine
//! combinations.  [`exhaustive_minimum_fusion`] does exactly that, and is
//! used by tests and the ablation benchmarks to quantify how far the greedy
//! Algorithm 2 is from the optimum on the paper's examples.

use fsm_dfsm::Dfsm;

use crate::bitset::BitsetPartition;
use crate::error::Result;
use crate::fault_graph::FaultGraph;
use crate::lattice::enumerate_lattice;
use crate::partition::Partition;

/// The outcome of an exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveSearch {
    /// The best fusion found (machines as closed partitions of `⊤`).
    pub partitions: Vec<Partition>,
    /// Product of the machine sizes (the |Fusion| metric being minimized).
    pub state_space: u128,
    /// Number of closed partitions enumerated.
    pub lattice_size: usize,
    /// Number of candidate combinations examined.
    pub combinations_examined: usize,
    /// Whether lattice enumeration hit the limit (in which case the result
    /// is a best-effort optimum over the enumerated part of the lattice).
    pub truncated: bool,
}

/// Exhaustively searches for the `(f, m)`-fusion with the smallest state
/// space (`∏ |Fi|`) using exactly `m` machines drawn from the closed
/// partition lattice of `top` (enumerated up to `lattice_limit` elements).
///
/// Returns `Ok(None)` when no `(f, m)`-fusion exists (Theorem 4) or when the
/// (possibly truncated) lattice contains none.  Intended for small tops —
/// the search is exponential in `m` and in the lattice size.
pub fn exhaustive_minimum_fusion(
    top: &Dfsm,
    originals: &[Partition],
    f: usize,
    m: usize,
    lattice_limit: usize,
) -> Result<Option<ExhaustiveSearch>> {
    let n = top.size();
    let lattice = enumerate_lattice(top, lattice_limit)?;
    // Sort candidates by block count so the depth-first search finds small
    // state spaces early and can prune aggressively.  Each candidate is
    // converted to its bitset form once; the DFS then updates fault-graph
    // clones word-at-a-time instead of re-scanning every state pair.
    let mut candidates: Vec<Partition> = lattice.elements.clone();
    candidates.sort_by_key(|p| p.num_blocks());
    let bitsets: Vec<BitsetPartition> = candidates
        .iter()
        .map(BitsetPartition::from_partition)
        .collect();

    let base = FaultGraph::from_partitions(n, originals);
    let mut best: Option<(u128, Vec<usize>)> = None;
    let mut examined = 0usize;

    // Depth-first search over combinations (with repetition allowed — two
    // copies of the same machine are a legal fusion, e.g. plain replication).
    //
    // `scratch` holds one pre-allocated graph per remaining depth: each tree
    // node refreshes `scratch[0]` from its parent graph with `clone_from`
    // (which reuses the weight/histogram buffers) instead of allocating a
    // fresh clone per candidate, and hands the rest of the slice down.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        candidates: &[Partition],
        bitsets: &[BitsetPartition],
        start: usize,
        chosen: &mut Vec<usize>,
        graph: &FaultGraph,
        scratch: &mut [FaultGraph],
        m: usize,
        f: usize,
        best: &mut Option<(u128, Vec<usize>)>,
        examined: &mut usize,
    ) {
        let current_space: u128 = chosen.iter().fold(1u128, |acc, &i| {
            acc.saturating_mul(candidates[i].num_blocks() as u128)
        });
        if let Some((best_space, _)) = best {
            if current_space >= *best_space {
                return; // cannot improve
            }
        }
        if chosen.len() == m {
            *examined += 1;
            if graph.tolerates_crash_faults(f) {
                match best {
                    Some((space, _)) if *space <= current_space => {}
                    _ => *best = Some((current_space, chosen.clone())),
                }
            }
            return;
        }
        // Prune: even if all remaining picks were ⊤ (adding 1 to every edge
        // each), dmin can rise by at most the number of remaining picks.
        let remaining = (m - chosen.len()) as u128;
        if (graph.dmin() as u128).saturating_add(remaining) <= f as u128 {
            return;
        }
        // With one pick left and dmin sitting exactly at f, only a machine
        // that raises dmin can complete a fusion; the incremental tracker
        // answers that with one early-exiting pass (`speculate`), skipping
        // the graph clone + word-level add + full rescan for every hopeless
        // candidate.
        let last_pick_must_raise = remaining == 1 && graph.dmin() as u128 == f as u128;
        let (g, deeper) = scratch
            .split_first_mut()
            .expect("scratch stack sized to search depth");
        for i in start..candidates.len() {
            if last_pick_must_raise && !graph.speculate_bitset(&bitsets[i]) {
                continue;
            }
            chosen.push(i);
            g.clone_from(graph);
            g.add_machine_bitset(&bitsets[i]);
            dfs(
                candidates, bitsets, i, chosen, g, deeper, m, f, best, examined,
            );
            chosen.pop();
        }
    }

    let mut chosen = Vec::new();
    // One reusable graph per depth; allocated once for the whole search.
    let mut scratch: Vec<FaultGraph> = (0..m).map(|_| base.clone()).collect();
    dfs(
        &candidates,
        &bitsets,
        0,
        &mut chosen,
        &base,
        &mut scratch,
        m,
        f,
        &mut best,
        &mut examined,
    );

    Ok(best.map(|(state_space, indices)| ExhaustiveSearch {
        partitions: indices.iter().map(|&i| candidates[i].clone()).collect(),
        state_space,
        lattice_size: lattice.len(),
        combinations_examined: examined,
        truncated: lattice.truncated,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate_fusion;
    use crate::set_repr::projection_partitions;
    use crate::theory::{is_fusion, minimum_backup_count};
    use fsm_dfsm::{DfsmBuilder, ReachableProduct};

    fn counter(name: &str, event: &str, k: usize) -> Dfsm {
        let mut b = DfsmBuilder::new(name);
        for i in 0..k {
            b.add_state(format!("{name}{i}"));
        }
        b.set_initial(format!("{name}0"));
        for i in 0..k {
            b.add_transition(
                format!("{name}{i}"),
                event,
                format!("{name}{}", (i + 1) % k),
            );
        }
        b.add_self_loops(if event == "0" { "1" } else { "0" });
        b.build().unwrap()
    }

    fn fig1_setup() -> (ReachableProduct, Vec<Partition>) {
        let a = counter("a", "0", 3);
        let b = counter("b", "1", 3);
        let product = ReachableProduct::new(&[a, b]).unwrap();
        let originals = projection_partitions(&product);
        (product, originals)
    }

    #[test]
    fn exhaustive_search_matches_greedy_on_fig1_single_fault() {
        let (product, originals) = fig1_setup();
        let m = minimum_backup_count(product.size(), &originals, 1);
        let greedy = generate_fusion(product.top(), &originals, 1).unwrap();
        let exact = exhaustive_minimum_fusion(product.top(), &originals, 1, m, 10_000)
            .unwrap()
            .expect("a (1,1)-fusion exists");
        assert!(is_fusion(product.size(), &originals, &exact.partitions, 1));
        // The greedy result is already optimal here: a single 3-state machine.
        assert_eq!(exact.state_space, 3);
        assert_eq!(greedy.state_space(), exact.state_space);
        assert!(!exact.truncated);
        assert!(exact.lattice_size >= 3);
        assert!(exact.combinations_examined >= 1);
    }

    #[test]
    fn exhaustive_search_never_worse_than_greedy() {
        let (product, originals) = fig1_setup();
        for f in 1..=2usize {
            let m = minimum_backup_count(product.size(), &originals, f);
            let greedy = generate_fusion(product.top(), &originals, f).unwrap();
            let exact = exhaustive_minimum_fusion(product.top(), &originals, f, m, 10_000)
                .unwrap()
                .expect("fusion exists");
            assert!(
                exact.state_space <= greedy.state_space(),
                "f = {f}: exhaustive {} vs greedy {}",
                exact.state_space,
                greedy.state_space()
            );
            assert!(is_fusion(product.size(), &originals, &exact.partitions, f));
        }
    }

    #[test]
    fn allowing_more_machines_never_increases_the_optimum() {
        // Section 7: "we may be able to generate smaller machines if the
        // system permits a larger number of backup machines" — with more
        // machines the optimal total state space can only stay equal or grow
        // slowly, but the *largest individual machine* can shrink.  At the
        // very least the search must still find a valid fusion.
        let (product, originals) = fig1_setup();
        let m_min = minimum_backup_count(product.size(), &originals, 1);
        let exact_min = exhaustive_minimum_fusion(product.top(), &originals, 1, m_min, 10_000)
            .unwrap()
            .unwrap();
        let exact_more = exhaustive_minimum_fusion(product.top(), &originals, 1, m_min + 1, 10_000)
            .unwrap()
            .unwrap();
        assert!(is_fusion(
            product.size(),
            &originals,
            &exact_more.partitions,
            1
        ));
        // The largest machine with m+1 backups is never larger than with m.
        let max_min = exact_min
            .partitions
            .iter()
            .map(|p| p.num_blocks())
            .max()
            .unwrap();
        let max_more = exact_more
            .partitions
            .iter()
            .map(|p| p.num_blocks())
            .max()
            .unwrap();
        assert!(max_more <= max_min);
    }

    #[test]
    fn no_fusion_when_theorem4_forbids_it() {
        let (product, originals) = fig1_setup();
        // dmin({A,B}) = 1, so a (2,1)-fusion cannot exist.
        let result = exhaustive_minimum_fusion(product.top(), &originals, 2, 1, 10_000).unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn replication_is_found_when_it_is_the_only_option() {
        // With a single original machine and f = 1, the only useful backup
        // in the lattice is (a copy of) the machine itself / ⊤.
        let a = counter("a", "0", 3);
        let product = ReachableProduct::new(&[a]).unwrap();
        let originals = projection_partitions(&product);
        let exact = exhaustive_minimum_fusion(product.top(), &originals, 1, 1, 1_000)
            .unwrap()
            .unwrap();
        assert_eq!(exact.state_space, 3);
    }
}
