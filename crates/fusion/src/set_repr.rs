//! Set representation of machine states (Algorithm 1, Figure 5).
//!
//! Every machine `A ≤ ⊤` corresponds to a closed partition of `⊤`'s state
//! set: each state of `A` is the *set* of `⊤` states that project onto it.
//! Algorithm 1 of the paper computes this set representation by lock-step
//! simulation of `⊤` and `A` on the same events.
//!
//! There are two ways to obtain the partition in practice:
//!
//! * [`projection_partition`] / [`projection_partitions`] — when `⊤` was
//!   built as a [`ReachableProduct`] of the original machines, the partition
//!   of original machine `i` is simply "group product states by their `i`-th
//!   tuple component".
//! * [`set_representation`] — the general Algorithm 1: works for *any*
//!   machine claimed to be `≤ ⊤` (for example a hand-written backup such as
//!   the `{n0 + n1} mod 3` counter of Fig. 1) and detects when the claim is
//!   false.
//!
//! Both are tested to agree on the machines they both apply to.

use std::collections::VecDeque;

use fsm_dfsm::{Dfsm, ReachableProduct, StateId};

use crate::error::{FusionError, Result};
use crate::partition::Partition;

/// The closed partition of the product corresponding to original machine
/// `i`: product states are grouped by their `i`-th component.
pub fn projection_partition(product: &ReachableProduct, i: usize) -> Partition {
    let assignment: Vec<usize> = (0..product.size())
        .map(|t| product.component_state(StateId(t), i).index())
        .collect();
    Partition::from_assignment(&assignment)
}

/// The projection partitions of all component machines, in order.
pub fn projection_partitions(product: &ReachableProduct) -> Vec<Partition> {
    (0..product.arity())
        .map(|i| projection_partition(product, i))
        .collect()
}

/// Algorithm 1: computes the set representation of machine `a` with respect
/// to `top`, i.e. the partition of `top`'s states whose block `i` is the set
/// of `top` states that correspond to state `i` of `a`.
///
/// The computation is a lock-step breadth-first traversal of `top` starting
/// from both initial states: whenever `top` reaches state `t` with `a` in
/// state `s`, state `t` is added to the block of `s`.  If the same `top`
/// state is ever reached with two different `a` states, then `a` is *not*
/// less than or equal to `top` and an error is returned.
///
/// Events in `top`'s alphabet that `a` does not know are ignored by `a`
/// (Section 2's system model); events known only to `a` can never fire in
/// the composed system and are irrelevant to the mapping.
pub fn set_representation(top: &Dfsm, a: &Dfsm) -> Result<Partition> {
    let n = top.size();
    let mut a_state_of: Vec<Option<StateId>> = vec![None; n];
    let mut queue = VecDeque::new();
    a_state_of[top.initial().index()] = Some(a.initial());
    queue.push_back(top.initial());
    let mut visited = vec![false; n];
    visited[top.initial().index()] = true;
    while let Some(t) = queue.pop_front() {
        let s = a_state_of[t.index()].expect("assigned before enqueue");
        for (e, ev) in top.alphabet().iter() {
            let t_next = top.next(t, e);
            let s_next = a.apply_event(s, ev);
            match a_state_of[t_next.index()] {
                None => a_state_of[t_next.index()] = Some(s_next),
                Some(existing) if existing == s_next => {}
                Some(existing) => {
                    return Err(FusionError::NotLessOrEqual(format!(
                        "top state `{}` maps to both `{}` and `{}` of machine `{}`",
                        top.state_name(t_next),
                        a.state_name(existing),
                        a.state_name(s_next),
                        a.name()
                    )))
                }
            }
            if !visited[t_next.index()] {
                visited[t_next.index()] = true;
                queue.push_back(t_next);
            }
        }
    }
    // The paper's model assumes every state of top is reachable, so every
    // top state received a mapping.  If top has unreachable states we fail
    // loudly rather than invent a block for them.
    let assignment: Result<Vec<usize>> = a_state_of
        .iter()
        .enumerate()
        .map(|(t, s)| {
            s.map(|s| s.index()).ok_or_else(|| {
                FusionError::NotLessOrEqual(format!(
                    "top state `{}` is unreachable and cannot be mapped",
                    top.state_name(StateId(t))
                ))
            })
        })
        .collect();
    Ok(Partition::from_assignment(&assignment?))
}

/// Convenience: the set representation of several machines at once.
pub fn set_representations(top: &Dfsm, machines: &[Dfsm]) -> Result<Vec<Partition>> {
    machines
        .iter()
        .map(|m| set_representation(top, m))
        .collect()
}

/// Pretty-prints the set representation of a machine as in the paper's
/// Figure 5: one line per machine state listing the `top` states in its
/// block.
pub fn format_set_representation(top: &Dfsm, a: &Dfsm, partition: &Partition) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "set representation of {} over {}:",
        a.name(),
        top.name()
    );
    let groups = partition.block_groups();
    for (b, block) in groups.iter().enumerate() {
        let tops: Vec<&str> = block.iter().map(|&t| top.state_name(StateId(t))).collect();
        // Block indices are canonical (by first occurrence in top order),
        // which need not match a's own state numbering; report both.
        let _ = writeln!(out, "  block {b}: {{{}}}", tops.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed::is_closed;
    use fsm_dfsm::DfsmBuilder;

    fn counter(name: &str, event: &str, k: usize) -> Dfsm {
        let mut b = DfsmBuilder::new(name);
        b.complete_missing_with_self_loops();
        for i in 0..k {
            b.add_state(format!("{name}{i}"));
        }
        b.set_initial(format!("{name}0"));
        for i in 0..k {
            b.add_transition(
                format!("{name}{i}"),
                event,
                format!("{name}{}", (i + 1) % k),
            );
        }
        // Make sure the other binary event is in the alphabet as a self loop
        // so both events are "known but ignored" rather than unknown.
        let other = if event == "0" { "1" } else { "0" };
        b.add_self_loops(other);
        b.build().unwrap()
    }

    /// The (n0 + n1) mod 3 fusion machine of Fig. 1(iv).
    fn sum_counter() -> Dfsm {
        let mut b = DfsmBuilder::new("F1");
        for i in 0..3 {
            b.add_state(format!("f{i}"));
        }
        b.set_initial("f0");
        for i in 0..3 {
            b.add_transition(format!("f{i}"), "0", format!("f{}", (i + 1) % 3));
            b.add_transition(format!("f{i}"), "1", format!("f{}", (i + 1) % 3));
        }
        b.build().unwrap()
    }

    fn fig1_product() -> ReachableProduct {
        let a = counter("a", "0", 3);
        let b = counter("b", "1", 3);
        ReachableProduct::new(&[a, b]).unwrap()
    }

    #[test]
    fn projection_partitions_are_closed_and_match_component_sizes() {
        let p = fig1_product();
        let parts = projection_partitions(&p);
        assert_eq!(parts.len(), 2);
        for (i, part) in parts.iter().enumerate() {
            assert_eq!(part.num_blocks(), p.components()[i].size());
            assert!(is_closed(p.top(), part));
        }
    }

    #[test]
    fn algorithm1_agrees_with_projection() {
        let p = fig1_product();
        for i in 0..p.arity() {
            let via_projection = projection_partition(&p, i);
            let via_alg1 = set_representation(p.top(), &p.components()[i]).unwrap();
            assert_eq!(via_projection, via_alg1);
        }
    }

    #[test]
    fn algorithm1_maps_hand_written_fusion() {
        // The sum counter is ≤ top even though it was written independently
        // of the product construction.
        let p = fig1_product();
        let f1 = sum_counter();
        let part = set_representation(p.top(), &f1).unwrap();
        assert_eq!(part.num_blocks(), 3);
        assert!(is_closed(p.top(), &part));
        // Each block contains exactly the product states with i + j ≡ c.
        for t in 0..p.size() {
            let tuple = p.tuple(StateId(t));
            let expected = (tuple[0].index() + tuple[1].index()) % 3;
            let same_class: Vec<usize> = (0..p.size())
                .filter(|&u| part.same_block(t, u))
                .map(|u| {
                    let tu = p.tuple(StateId(u));
                    (tu[0].index() + tu[1].index()) % 3
                })
                .collect();
            assert!(same_class.iter().all(|&c| c == expected));
        }
    }

    #[test]
    fn algorithm1_rejects_machine_not_leq_top() {
        // A mod-2 counter of event "0" is NOT ≤ the 9-state top of two mod-3
        // counters: after three 0s top returns to column 0 but the mod-2
        // counter is in a different state than after one 0... actually after
        // 3 zeros top is back at a0 only after 3 more; the conflict arises
        // because 3 and 2 are coprime.
        let p = fig1_product();
        let bad = counter("bad", "0", 2);
        let err = set_representation(p.top(), &bad).unwrap_err();
        assert!(matches!(err, FusionError::NotLessOrEqual(_)));
    }

    #[test]
    fn format_set_representation_mentions_top_states() {
        let p = fig1_product();
        let f1 = sum_counter();
        let part = set_representation(p.top(), &f1).unwrap();
        let text = format_set_representation(p.top(), &f1, &part);
        assert!(text.contains("F1"));
        assert!(text.contains("block 0"));
        assert!(text.contains("{a0,b0}"));
    }

    #[test]
    fn bottom_machine_maps_every_state_to_one_block() {
        let p = fig1_product();
        let mut b = DfsmBuilder::new("bottom");
        b.add_state("only");
        b.set_initial("only");
        b.add_transition("only", "0", "only");
        b.add_transition("only", "1", "only");
        let bottom = b.build().unwrap();
        let part = set_representation(p.top(), &bottom).unwrap();
        assert!(part.is_single_block());
    }
}
