//! Error types for the fusion library.

use std::fmt;

/// Errors raised by the fusion algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are described by the variant docs and Display impl
pub enum FusionError {
    /// A partition was built over the wrong number of elements.
    PartitionSizeMismatch { expected: usize, actual: usize },
    /// A partition's blocks do not cover every element exactly once.
    InvalidPartition(String),
    /// A partition is not closed under the machine's transition function.
    NotClosed { block: usize, event: String },
    /// A machine claimed to be ≤ top is not (Algorithm 1 found an
    /// inconsistency).
    NotLessOrEqual(String),
    /// No `(f, m)`-fusion exists for the requested parameters
    /// (Theorem 4: requires `m + dmin(A) > f`).
    NoFusionExists { f: usize, m: usize, dmin: usize },
    /// Recovery could not determine a unique state of the top machine
    /// (more faults occurred than the fusion tolerates).
    AmbiguousRecovery { candidates: Vec<usize> },
    /// Recovery was attempted with every machine crashed.
    NothingToRecoverFrom,
    /// A report referenced a block or machine index that does not exist.
    InvalidReport(String),
    /// A [`crate::TopDelta`] that cannot be applied to the session's
    /// installed `⊤` (index out of range, no top installed, removing the
    /// last machine, or an extension that shrinks a machine's states or
    /// alphabet).
    InvalidDelta(String),
    /// An underlying DFSM error.
    Dfsm(fsm_dfsm::DfsmError),
    /// A parallel-engine worker thread panicked while evaluating a
    /// candidate merge; the panic was contained and the worker keeps
    /// serving (see [`crate::par`]).  `worker` identifies the panicking
    /// thread (its index in the pool), so a deployment can correlate the
    /// error with thread logs.
    WorkerPanicked { worker: usize },
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::PartitionSizeMismatch { expected, actual } => write!(
                f,
                "partition covers {actual} elements but the machine has {expected} states"
            ),
            FusionError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
            FusionError::NotClosed { block, event } => write!(
                f,
                "partition is not closed: block {block} is split by event `{event}`"
            ),
            FusionError::NotLessOrEqual(msg) => {
                write!(f, "machine is not less than or equal to top: {msg}")
            }
            FusionError::NoFusionExists { f: faults, m, dmin } => write!(
                f,
                "no ({faults},{m})-fusion exists: m + dmin = {} must exceed f = {faults}",
                m + dmin
            ),
            FusionError::AmbiguousRecovery { candidates } => write!(
                f,
                "recovery is ambiguous between {} candidate states (too many faults)",
                candidates.len()
            ),
            FusionError::NothingToRecoverFrom => {
                write!(f, "recovery attempted with no surviving machine state")
            }
            FusionError::InvalidReport(msg) => write!(f, "invalid recovery report: {msg}"),
            FusionError::InvalidDelta(msg) => write!(f, "invalid top delta: {msg}"),
            FusionError::Dfsm(e) => write!(f, "dfsm error: {e}"),
            FusionError::WorkerPanicked { worker } => {
                write!(
                    f,
                    "merge-pool worker {worker} panicked evaluating a candidate"
                )
            }
        }
    }
}

impl std::error::Error for FusionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FusionError::Dfsm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fsm_dfsm::DfsmError> for FusionError {
    fn from(e: fsm_dfsm::DfsmError) -> Self {
        FusionError::Dfsm(e)
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, FusionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FusionError::NoFusionExists {
            f: 3,
            m: 1,
            dmin: 1,
        };
        let s = e.to_string();
        assert!(s.contains("(3,1)"));
        let e = FusionError::AmbiguousRecovery {
            candidates: vec![0, 3],
        };
        assert!(e.to_string().contains("2 candidate"));
        let e = FusionError::WorkerPanicked { worker: 3 };
        assert!(e.to_string().contains("worker 3"));
    }

    #[test]
    fn dfsm_error_conversion() {
        let e: FusionError = fsm_dfsm::DfsmError::NoStates.into();
        assert!(matches!(e, FusionError::Dfsm(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
