//! `u64`-word bitset kernel for partitions (the hot-path representation).
//!
//! Algorithm 2 spends its time comparing partitions and updating fault-graph
//! edge weights; both operations reduce to set algebra over blocks of `⊤`
//! states.  This module stores each block as a row of `u64` words
//! ([`BlockMatrix`]) so that containment, disjointness and complement
//! enumeration run word-at-a-time instead of element-at-a-time:
//!
//! * `P1 ≤ P2` becomes one subset test (`row & !row' == 0`) per block of
//!   `P2` — `O(B · ⌈n/64⌉)` word operations,
//! * [`crate::FaultGraph::add_machine`] walks, for every state `i`, the
//!   *complement* of `i`'s block word-at-a-time to find exactly the edges
//!   whose weight increases,
//! * the candidate-scoring loops in [`crate::search`] and [`crate::lattice`]
//!   convert each candidate partition once and then compare it against many
//!   others at word granularity.
//!
//! [`BitsetPartition`] pairs the block rows with the element→block map so
//! both access patterns (by element, by block) are O(1).  Conversions to and
//! from [`Partition`] preserve the canonical first-occurrence block
//! numbering, so `P == Q` exactly when
//! `BitsetPartition::from(&P) == BitsetPartition::from(&Q)`.
//!
//! The element-scan implementations these kernels replaced are preserved in
//! [`crate::reference`] for cross-validation and benchmarking.

use crate::partition::{Partition, UnionFind};

/// Number of bits per bitset word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `bits` bits.
#[inline]
pub const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

/// A dense matrix of bitset rows: `rows × ⌈cols/64⌉` words of `u64`.
///
/// Row `r` represents a subset of `{0, …, cols-1}`; in a partition context
/// each row is the membership mask of one block.  The storage is one flat
/// allocation, so iterating rows is cache-friendly.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BlockMatrix {
    cols: usize,
    words: usize,
    bits: Vec<u64>,
}

impl BlockMatrix {
    /// A zeroed matrix with `rows` rows over `cols` columns.
    pub fn zeroed(rows: usize, cols: usize) -> Self {
        let words = words_for(cols);
        BlockMatrix {
            cols,
            words,
            bits: vec![0; rows * words],
        }
    }

    /// Re-shapes to `rows × cols` and zeroes every bit, reusing the existing
    /// word buffer.  After warm-up at a given shape this allocates nothing;
    /// see [`BitsetPartition::refresh_from_partition`].
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.cols = cols;
        self.words = words_for(cols);
        self.bits.clear();
        self.bits.resize(rows * self.words, 0);
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.bits.len().checked_div(self.words).unwrap_or(0)
    }

    /// Number of columns (bits per row).
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Number of `u64` words per row.
    pub fn words_per_row(&self) -> usize {
        self.words
    }

    /// The words of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words..(r + 1) * self.words]
    }

    /// Sets bit `c` of row `r`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(c < self.cols);
        self.bits[r * self.words + c / WORD_BITS] |= 1u64 << (c % WORD_BITS);
    }

    /// Whether bit `c` of row `r` is set.
    #[inline]
    pub fn contains(&self, r: usize, c: usize) -> bool {
        debug_assert!(c < self.cols);
        self.bits[r * self.words + c / WORD_BITS] & (1u64 << (c % WORD_BITS)) != 0
    }

    /// Word-at-a-time subset test: whether row `r` of `self` is contained in
    /// row `s` of `other`.
    #[inline]
    pub fn row_is_subset(&self, r: usize, other: &BlockMatrix, s: usize) -> bool {
        debug_assert_eq!(self.words, other.words);
        self.row(r)
            .iter()
            .zip(other.row(s))
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Word-at-a-time disjointness test between row `r` of `self` and row
    /// `s` of `other`.
    #[inline]
    pub fn row_is_disjoint(&self, r: usize, other: &BlockMatrix, s: usize) -> bool {
        debug_assert_eq!(self.words, other.words);
        self.row(r)
            .iter()
            .zip(other.row(s))
            .all(|(&a, &b)| a & b == 0)
    }

    /// Number of set bits in row `r`.
    pub fn row_count(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterator over the set bit positions of row `r`, in increasing order.
    pub fn row_ones(&self, r: usize) -> Ones<'_> {
        Ones::new(self.row(r))
    }
}

/// Iterator over the set bit positions of a row of bitset words.
#[derive(Clone, Debug)]
pub struct Ones<'a> {
    words: &'a [u64],
    /// Index of the *next* word to load; `current` came from `next_word - 1`.
    next_word: usize,
    current: u64,
}

impl<'a> Ones<'a> {
    /// Iterates the set bits of `words` (bit `i` of word `w` is position
    /// `w * 64 + i`).
    pub fn new(words: &'a [u64]) -> Self {
        Ones {
            words,
            next_word: 0,
            current: 0,
        }
    }
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some((self.next_word - 1) * WORD_BITS + bit);
            }
            if self.next_word >= self.words.len() {
                return None;
            }
            self.current = self.words[self.next_word];
            self.next_word += 1;
        }
    }
}

/// A partition of `{0, …, n-1}` in bitset-block form: one [`BlockMatrix`]
/// row per block plus the element→block map, both kept in the same canonical
/// first-occurrence block order as [`Partition`].
///
/// This is the hot-path representation: convert a [`Partition`] once, then
/// run many word-level comparisons or fault-graph updates against it.
/// Conversions preserve canonical form, so equality of `BitsetPartition`s is
/// equality of the underlying partitions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BitsetPartition {
    n: usize,
    /// `block_of[x]` is the canonical block index of element `x`.
    block_of: Vec<u32>,
    /// Row `b` is the membership mask of block `b`.
    blocks: BlockMatrix,
    /// `first[b]` is the smallest element of block `b` (canonical order
    /// makes this also the first occurrence).
    first: Vec<u32>,
}

impl BitsetPartition {
    /// Converts a canonical [`Partition`] into bitset-block form.
    pub fn from_partition(p: &Partition) -> Self {
        Self::from_canonical_assignment(p.assignment(), p.num_blocks())
    }

    /// Builds from an assignment that is already in canonical
    /// first-occurrence order with blocks `0..num_blocks`.
    pub(crate) fn from_canonical_assignment(assignment: &[usize], num_blocks: usize) -> Self {
        let n = assignment.len();
        let mut blocks = BlockMatrix::zeroed(num_blocks, n);
        let mut block_of = Vec::with_capacity(n);
        let mut first = vec![u32::MAX; num_blocks];
        for (x, &b) in assignment.iter().enumerate() {
            debug_assert!(b < num_blocks);
            blocks.set(b, x);
            block_of.push(b as u32);
            if first[b] == u32::MAX {
                first[b] = x as u32;
            }
        }
        BitsetPartition {
            n,
            block_of,
            blocks,
            first,
        }
    }

    /// Refreshes `self` in place from a canonical [`Partition`], reusing the
    /// existing row matrix and per-block buffers — the scratch-reusing twin
    /// of [`BitsetPartition::from_partition`] for loops that convert a fresh
    /// candidate partition every iteration (e.g. Algorithm 2's outer loop
    /// handing its descent result to [`crate::FaultGraph::add_machine_bitset`]).
    /// After warm-up at a stable element count this allocates nothing.
    pub fn refresh_from_partition(&mut self, p: &Partition) {
        let n = p.len();
        let num_blocks = p.num_blocks();
        self.n = n;
        self.blocks.reset(num_blocks, n);
        self.block_of.clear();
        self.block_of.reserve(n);
        self.first.clear();
        self.first.resize(num_blocks, u32::MAX);
        for (x, &b) in p.assignment().iter().enumerate() {
            debug_assert!(b < num_blocks);
            self.blocks.set(b, x);
            self.block_of.push(b as u32);
            if self.first[b] == u32::MAX {
                self.first[b] = x as u32;
            }
        }
    }

    /// Converts back to the element-indexed [`Partition`] form.
    pub fn to_partition(&self) -> Partition {
        let assignment: Vec<usize> = self.block_of.iter().map(|&b| b as usize).collect();
        Partition::from_assignment(&assignment)
    }

    /// The finest partition (every element its own block); corresponds to
    /// the top machine `⊤`.
    pub fn singletons(n: usize) -> Self {
        let assignment: Vec<usize> = (0..n).collect();
        Self::from_canonical_assignment(&assignment, n)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the partition is over an empty set.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.first.len()
    }

    /// The canonical block index of an element.
    #[inline]
    pub fn block_of(&self, x: usize) -> usize {
        self.block_of[x] as usize
    }

    /// The membership mask (bitset words) of block `b`.
    #[inline]
    pub fn block_row(&self, b: usize) -> &[u64] {
        self.blocks.row(b)
    }

    /// The block rows as a matrix.
    pub fn block_matrix(&self) -> &BlockMatrix {
        &self.blocks
    }

    /// Number of `u64` words per block row.
    pub fn words_per_row(&self) -> usize {
        self.blocks.words_per_row()
    }

    /// The elements of block `b`, in increasing order.
    pub fn block_ones(&self, b: usize) -> Ones<'_> {
        self.blocks.row_ones(b)
    }

    /// Number of elements in block `b` (one popcount pass over the row).
    pub fn block_size(&self, b: usize) -> usize {
        self.blocks.row_count(b)
    }

    /// Whether two elements share a block.
    #[inline]
    pub fn same_block(&self, x: usize, y: usize) -> bool {
        self.block_of[x] == self.block_of[y]
    }

    /// Whether the partition separates (distinguishes) two elements.
    #[inline]
    pub fn separates(&self, x: usize, y: usize) -> bool {
        self.block_of[x] != self.block_of[y]
    }

    /// Whether this partition separates every one of the given edges — the
    /// bitset-form counterpart of [`crate::FaultGraph::covers_all`] (which
    /// Algorithm 2 itself uses on its canonical [`Partition`] candidates),
    /// for callers that already hold a converted partition.
    pub fn covers_all(&self, edges: &[(usize, usize)]) -> bool {
        edges.iter().all(|&(i, j)| self.separates(i, j))
    }

    /// Paper order, word-at-a-time: `self ≤ other` iff every block of
    /// `other` is contained in a block of `self` (i.e. `other` refines
    /// `self`).  Runs one subset test per block of `other`:
    /// `O(B_other · ⌈n/64⌉)` word operations.
    pub fn le(&self, other: &BitsetPartition) -> bool {
        assert_eq!(self.n, other.n, "partitions over different sets");
        (0..other.num_blocks()).all(|ob| {
            let rep = other.first[ob] as usize;
            let sb = self.block_of[rep] as usize;
            other.blocks.row_is_subset(ob, &self.blocks, sb)
        })
    }

    /// Strict version of [`BitsetPartition::le`].
    pub fn lt(&self, other: &BitsetPartition) -> bool {
        self.le(other) && self.block_of != other.block_of
    }

    /// Whether the two partitions are incomparable in the paper's order.
    pub fn incomparable(&self, other: &BitsetPartition) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Greatest lower bound in the machine order (blocks are the connected
    /// components of "same block in `self` OR same block in `other`"),
    /// seeded from the per-block first elements — no tree maps.
    pub fn meet(&self, other: &BitsetPartition) -> BitsetPartition {
        assert_eq!(self.n, other.n, "partitions over different sets");
        let n = self.n;
        let mut uf = UnionFind::new(n);
        for x in 0..n {
            uf.union(x, self.first[self.block_of[x] as usize] as usize);
            uf.union(x, other.first[other.block_of[x] as usize] as usize);
        }
        let (assignment, num_blocks) = uf.canonical_assignment();
        Self::from_canonical_assignment(&assignment, num_blocks)
    }

    /// Least upper bound in the machine order (blocks are the non-empty
    /// pairwise block intersections), via a dense pair-relabel table.
    pub fn join(&self, other: &BitsetPartition) -> BitsetPartition {
        assert_eq!(self.n, other.n, "partitions over different sets");
        let (joined, num_blocks) =
            join_assignments(self.n, self.num_blocks(), other.num_blocks(), |x| {
                (self.block_of[x] as usize, other.block_of[x] as usize)
            });
        Self::from_canonical_assignment(&joined, num_blocks)
    }
}

impl From<&Partition> for BitsetPartition {
    fn from(p: &Partition) -> Self {
        BitsetPartition::from_partition(p)
    }
}

impl From<&BitsetPartition> for Partition {
    fn from(p: &BitsetPartition) -> Self {
        p.to_partition()
    }
}

/// Shared join kernel: canonical assignment of the common refinement of two
/// canonical assignments (`pair(x)` returns the two block indices of `x`),
/// plus the resulting block count.  Uses a dense `B_a × B_b` relabel table
/// when it fits (the overwhelmingly common case), falling back to a hash
/// map for pathologically large block-count products.
pub(crate) fn join_assignments(
    n: usize,
    a_blocks: usize,
    b_blocks: usize,
    pair: impl Fn(usize) -> (usize, usize),
) -> (Vec<usize>, usize) {
    let mut assignment = Vec::with_capacity(n);
    let mut next = 0usize;
    // 2^22 entries = 32 MiB of usize labels at the worst; beyond that (only
    // possible for n > 2048) use the map fallback.
    const DENSE_LIMIT: usize = 1 << 22;
    if a_blocks.saturating_mul(b_blocks) <= DENSE_LIMIT {
        let mut table = vec![usize::MAX; a_blocks * b_blocks];
        for x in 0..n {
            let (a, b) = pair(x);
            let key = a * b_blocks + b;
            if table[key] == usize::MAX {
                table[key] = next;
                next += 1;
            }
            assignment.push(table[key]);
        }
    } else {
        let mut table: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::with_capacity(n);
        for x in 0..n {
            let label = *table.entry(pair(x)).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            assignment.push(label);
        }
    }
    (assignment, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(blocks: &[Vec<usize>], n: usize) -> Partition {
        Partition::from_blocks(n, blocks).unwrap()
    }

    #[test]
    fn roundtrip_preserves_canonical_form() {
        let part = p(&[vec![0, 3], vec![1], vec![2, 4]], 5);
        let bits = BitsetPartition::from_partition(&part);
        assert_eq!(bits.len(), 5);
        assert_eq!(bits.num_blocks(), 3);
        assert_eq!(bits.to_partition(), part);
        for x in 0..5 {
            assert_eq!(bits.block_of(x), part.block_of(x));
        }
    }

    #[test]
    fn block_rows_match_membership() {
        let part = p(&[vec![0, 2, 4], vec![1, 3]], 5);
        let bits = BitsetPartition::from_partition(&part);
        assert_eq!(bits.block_ones(0).collect::<Vec<_>>(), vec![0, 2, 4]);
        assert_eq!(bits.block_ones(1).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(bits.block_size(0), 3);
        assert_eq!(bits.block_size(1), 2);
        assert!(bits.block_matrix().contains(0, 4));
        assert!(!bits.block_matrix().contains(1, 4));
    }

    #[test]
    fn le_agrees_with_partition_le() {
        let coarse = p(&[vec![0, 3], vec![1, 2]], 4);
        let fine = p(&[vec![0, 3], vec![1], vec![2]], 4);
        let other = p(&[vec![0, 1], vec![2, 3]], 4);
        let (bc, bf, bo) = (
            BitsetPartition::from_partition(&coarse),
            BitsetPartition::from_partition(&fine),
            BitsetPartition::from_partition(&other),
        );
        assert!(bc.le(&bf));
        assert!(!bf.le(&bc));
        assert!(bc.lt(&bf));
        assert!(!bc.lt(&bc.clone()));
        assert!(bo.incomparable(&bf));
    }

    #[test]
    fn meet_and_join_agree_with_partition_ops() {
        let a = p(&[vec![0, 1], vec![2], vec![3]], 4);
        let b = p(&[vec![1, 2], vec![0], vec![3]], 4);
        let (ba, bb) = (
            BitsetPartition::from_partition(&a),
            BitsetPartition::from_partition(&b),
        );
        assert_eq!(ba.meet(&bb).to_partition(), a.meet(&b));
        assert_eq!(ba.join(&bb).to_partition(), a.join(&b));
    }

    #[test]
    fn covers_all_matches_separates() {
        let a = p(&[vec![0, 3], vec![1], vec![2]], 4);
        let ba = BitsetPartition::from_partition(&a);
        assert!(ba.covers_all(&[(0, 1), (1, 2)]));
        assert!(!ba.covers_all(&[(0, 3)]));
        assert!(ba.covers_all(&[]));
    }

    #[test]
    fn singletons_and_multiword_rows() {
        // Cross the 64-bit word boundary to exercise multi-word rows.
        let n = 130;
        let fine = BitsetPartition::singletons(n);
        assert_eq!(fine.num_blocks(), n);
        assert_eq!(fine.words_per_row(), 3);
        let mut assignment = vec![0usize; n];
        for (x, a) in assignment.iter_mut().enumerate() {
            *a = x % 2;
        }
        let par = Partition::from_assignment(&assignment);
        let bits = BitsetPartition::from_partition(&par);
        assert_eq!(bits.num_blocks(), 2);
        assert_eq!(bits.block_size(0), 65);
        assert_eq!(bits.block_ones(1).last(), Some(129));
        // parity ≤ singletons in the paper's order.
        assert!(bits.le(&fine));
        assert!(!fine.le(&bits));
    }

    #[test]
    fn ones_iterator_handles_sparse_words() {
        let words = [0u64, 1 << 63, 0, (1 << 0) | (1 << 17)];
        let got: Vec<usize> = Ones::new(&words).collect();
        assert_eq!(got, vec![127, 192, 209]);
        assert_eq!(Ones::new(&[]).count(), 0);
        assert_eq!(Ones::new(&[0, 0]).count(), 0);
    }

    #[test]
    fn empty_partition_is_handled() {
        let empty = Partition::from_assignment(&[]);
        let bits = BitsetPartition::from_partition(&empty);
        assert!(bits.is_empty());
        assert_eq!(bits.num_blocks(), 0);
        assert_eq!(bits.to_partition(), empty);
        assert!(bits.le(&bits.clone()));
    }
}
