//! Experiment reports in the format of the paper's results table
//! (Section 6).
//!
//! A [`FusionReport`] captures, for one set of original machines and one
//! fault count `f`: the size of the reachable cross product `|⊤|`, the sizes
//! of the generated backup machines, and the replication vs. fusion state
//! spaces.  The benchmark binaries print one report per table row and
//! EXPERIMENTS.md records the comparison against the paper's numbers.

use std::fmt;
use std::time::Duration;

use fsm_dfsm::Dfsm;

use crate::error::Result;
use crate::generate::GenerationStats;
use crate::replication::{fusion_state_space, replication_state_space};

/// A single row of the evaluation table.
#[derive(Debug, Clone)]
pub struct FusionReport {
    /// Human-readable label for the machine set (e.g. "MESI, TCP, A, B").
    pub label: String,
    /// Names of the original machines.
    pub machine_names: Vec<String>,
    /// Sizes of the original machines.
    pub machine_sizes: Vec<usize>,
    /// Number of crash faults tolerated.
    pub f: usize,
    /// Size of the reachable cross product `|⊤|`.
    pub top_size: usize,
    /// Sizes of the generated backup machines.
    pub backup_sizes: Vec<usize>,
    /// Generation statistics from Algorithm 2.
    pub stats: GenerationStats,
    /// Wall-clock time to build the cross product and generate the fusion.
    pub elapsed: Duration,
}

impl FusionReport {
    /// Runs the full pipeline (cross product → Algorithm 2) for a machine
    /// set and records the results.
    ///
    /// A thin shim over a throwaway environment-configured
    /// [`crate::FusionSession`]; multi-row measurements should use
    /// [`FusionReport::measure_with`] so the rows share one session.
    pub fn measure(label: impl Into<String>, machines: &[Dfsm], f: usize) -> Result<Self> {
        Self::measure_with(
            &mut crate::config::FusionConfig::from_env()
                .cache(crate::config::CachePolicy::Disabled)
                .build(),
            label,
            machines,
            f,
        )
    }

    /// [`FusionReport::measure`] through a caller-owned
    /// [`crate::FusionSession`]: the product is built with the session's
    /// strategy and the generation reuses its scratch, pool handle and
    /// closure cache (repeated rows or `f` sweeps over the same machine set
    /// hit the cache).
    pub fn measure_with(
        session: &mut crate::session::FusionSession,
        label: impl Into<String>,
        machines: &[Dfsm],
        f: usize,
    ) -> Result<Self> {
        let start = std::time::Instant::now();
        let (product, fusion) = session.generate_fusion_for_machines(machines, f)?;
        let elapsed = start.elapsed();
        Ok(FusionReport {
            label: label.into(),
            machine_names: machines.iter().map(|m| m.name().to_string()).collect(),
            machine_sizes: machines.iter().map(|m| m.size()).collect(),
            f,
            top_size: product.size(),
            backup_sizes: fusion.machine_sizes(),
            stats: fusion.stats,
            elapsed,
        })
    }

    /// `(∏ |Mi|)^f` — the |Replication| column.
    pub fn replication_state_space(&self) -> u128 {
        replication_state_space(&self.machine_sizes, self.f)
    }

    /// `∏ |Fj|` — the |Fusion| column.
    pub fn fusion_state_space(&self) -> u128 {
        fusion_state_space(&self.backup_sizes)
    }

    /// How many times smaller the fusion backup state space is.
    pub fn savings_factor(&self) -> f64 {
        let fusion = self.fusion_state_space().max(1);
        self.replication_state_space() as f64 / fusion as f64
    }

    /// Number of backup machines replication would use (`n · f`).
    pub fn replication_backup_machines(&self) -> usize {
        self.machine_names.len() * self.f
    }

    /// Number of backup machines fusion uses.
    pub fn fusion_backup_machines(&self) -> usize {
        self.backup_sizes.len()
    }

    /// A fixed-width table header matching [`FusionReport`]'s Display
    /// format.
    pub fn table_header() -> String {
        format!(
            "{:<42} {:>2} {:>6} {:>18} {:>14} {:>12} {:>9}",
            "Original Machines",
            "f",
            "|Top|",
            "|Backup Machines|",
            "|Replication|",
            "|Fusion|",
            "time(ms)"
        )
    }
}

impl fmt::Display for FusionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let backups = format!(
            "[{}]",
            self.backup_sizes
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        write!(
            f,
            "{:<42} {:>2} {:>6} {:>18} {:>14} {:>12} {:>9.2}",
            self.label,
            self.f,
            self.top_size,
            backups,
            self.replication_state_space(),
            self.fusion_state_space(),
            self.elapsed.as_secs_f64() * 1000.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_dfsm::DfsmBuilder;

    fn counter(name: &str, event: &str, k: usize) -> Dfsm {
        let mut b = DfsmBuilder::new(name);
        for i in 0..k {
            b.add_state(format!("{name}{i}"));
        }
        b.set_initial(format!("{name}0"));
        for i in 0..k {
            b.add_transition(
                format!("{name}{i}"),
                event,
                format!("{name}{}", (i + 1) % k),
            );
        }
        let other = if event == "0" { "1" } else { "0" };
        b.add_self_loops(other);
        b.build().unwrap()
    }

    #[test]
    fn report_for_fig1_counters() {
        let a = counter("A", "0", 3);
        let b = counter("B", "1", 3);
        let report = FusionReport::measure("0-counter, 1-counter", &[a, b], 1).unwrap();
        assert_eq!(report.top_size, 9);
        assert_eq!(report.machine_sizes, vec![3, 3]);
        assert_eq!(report.backup_sizes, vec![3]);
        assert_eq!(report.replication_state_space(), 9);
        assert_eq!(report.fusion_state_space(), 3);
        assert!(report.savings_factor() > 2.9);
        assert_eq!(report.replication_backup_machines(), 2);
        assert_eq!(report.fusion_backup_machines(), 1);
    }

    #[test]
    fn report_display_is_one_line_and_aligned_with_header() {
        let a = counter("A", "0", 3);
        let b = counter("B", "1", 3);
        let report = FusionReport::measure("counters", &[a, b], 1).unwrap();
        let line = report.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("counters"));
        let header = FusionReport::table_header();
        assert!(header.contains("|Replication|"));
    }

    #[test]
    fn report_with_zero_faults_has_no_backups() {
        let a = counter("A", "0", 2);
        let b = counter("B", "1", 2);
        let report = FusionReport::measure("tiny", &[a, b], 0).unwrap();
        assert!(report.backup_sizes.is_empty());
        assert_eq!(report.fusion_state_space(), 1);
        assert_eq!(report.replication_state_space(), 1);
    }
}
