//! Fault graphs, distance and `dmin` (Section 3, Definitions 3–4,
//! Theorems 1–2).
//!
//! The fault graph `G(⊤, M)` of a set of machines `M` (each `≤ ⊤`) is the
//! complete weighted graph over the states of `⊤` in which the weight of
//! edge `(ti, tj)` is the number of machines in `M` whose partition places
//! `ti` and `tj` in different blocks.  The minimum edge weight `dmin`
//! determines the fault tolerance of the set:
//!
//! * `f` crash faults can be tolerated iff `dmin > f` (Theorem 1),
//! * `f` Byzantine faults can be tolerated iff `dmin > 2f` (Theorem 2).
//!
//! ## Incremental `dmin` maintenance
//!
//! Algorithm 2 interleaves machine additions with `dmin` /
//! weakest-edge queries, and the exhaustive search
//! ([`crate::exhaustive_minimum_fusion`]) queries `dmin` at every node of
//! its combination tree.  Rescanning all `n(n-1)/2` edges per query is the
//! dominant query cost at scale, so the graph maintains, *in the same
//! word-level pass that updates the edge weights*:
//!
//! * a weight histogram (`hist[w]` = number of edges of weight `w`), two
//!   in-cache array updates per incremented edge,
//! * the cached minimum weight, advanced over emptied histogram slots
//!   (weights only grow), making `dmin` `O(1)`.
//!
//! On top of the cached minimum, [`FaultGraph::weakest_edges`] is a single
//! filtered pass (the pre-refactor version scanned once for `dmin` and
//! again for the edges at that weight) and [`FaultGraph::speculate`]
//! answers "would adding this machine increase `dmin`?" in one pass without
//! materializing a graph copy.  Per-weight *edge buckets* (append an edge
//! to `bucket[w]` when its weight reaches `w`) would make those two queries
//! `O(|weakest|)` instead of `O(E)`, but the bucket pushes cost more in the
//! add path than the queries save — Algorithm 2 adds machines `E` edge
//! increments at a time and reads the weakest set once per outer iteration
//! — so the histogram-only design wins end to end.  The pre-refactor full
//! scans are preserved as [`FaultGraph::dmin_scan`] /
//! [`FaultGraph::weakest_edges_scan`] /
//! [`FaultGraph::addition_increases_dmin_scan`] for cross-validation
//! (`tests/parallel_properties.rs`) and for the `fault_graph_incremental_*`
//! baselines in `BENCH_fusion.json`.

use crate::bitset::{words_for, BitsetPartition, WORD_BITS};
use crate::partition::Partition;

/// The fault graph `G(⊤, M)` for machines represented as closed partitions
/// of a `⊤` with `n` states.
///
/// Weights are stored in a flat upper-triangular matrix.  Machines can be
/// added incrementally, which is what Algorithm 2 does as it grows the
/// fusion set; a weight histogram and the cached minimum are maintained
/// alongside the weights (see the module docs), so [`FaultGraph::dmin`] is
/// `O(1)` and [`FaultGraph::weakest_edges`] / [`FaultGraph::speculate`] are
/// single passes instead of scan pairs or graph copies.
#[derive(Debug)]
pub struct FaultGraph {
    n: usize,
    /// Upper-triangular weights, indexed by `edge_index`.
    weights: Vec<u32>,
    /// Number of machines accumulated so far.
    machines: usize,
    /// `hist[w]` = number of edges with weight exactly `w`
    /// (`hist.len() == machines + 1`; a weight can never exceed the number
    /// of machines).
    hist: Vec<usize>,
    /// Cached minimum edge weight; `u32::MAX` when the graph has no edges.
    min_weight: u32,
}

/// Hand-written so that [`Clone::clone_from`] reuses the destination's
/// weight and histogram buffers: the exhaustive search
/// ([`crate::exhaustive_minimum_fusion`]) refreshes one pre-allocated graph
/// per DFS depth from its parent at every tree node, and the derive's
/// default `clone_from` would reallocate both vectors each time.
impl Clone for FaultGraph {
    fn clone(&self) -> Self {
        FaultGraph {
            n: self.n,
            weights: self.weights.clone(),
            machines: self.machines,
            hist: self.hist.clone(),
            min_weight: self.min_weight,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.n = source.n;
        self.weights.clone_from(&source.weights);
        self.machines = source.machines;
        self.hist.clone_from(&source.hist);
        self.min_weight = source.min_weight;
    }
}

impl FaultGraph {
    /// Creates the fault graph over `n` states with no machines (all edge
    /// weights zero).
    pub fn new(n: usize) -> Self {
        let edges = n.saturating_sub(1) * n / 2;
        FaultGraph {
            n,
            weights: vec![0; edges],
            machines: 0,
            hist: vec![edges],
            min_weight: if edges == 0 { u32::MAX } else { 0 },
        }
    }

    /// Builds a fault graph from a set of machine partitions.
    ///
    /// Bulk path: the per-add tracker maintenance is skipped and the
    /// histogram is rebuilt once at the end, so building from `m`
    /// partitions costs the `m` weight passes plus a single `O(E)` tracker
    /// pass.
    pub fn from_partitions(n: usize, partitions: &[Partition]) -> Self {
        let edges = n.saturating_sub(1) * n / 2;
        let mut g = FaultGraph {
            n,
            weights: vec![0; edges],
            machines: 0,
            hist: Vec::new(),
            min_weight: u32::MAX,
        };
        for p in partitions {
            g.add_machine_bitset_impl(&BitsetPartition::from_partition(p), false);
        }
        g.rebuild_trackers();
        g
    }

    /// Number of `⊤` states (nodes).
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Number of edges in the complete graph.
    pub fn num_edges(&self) -> usize {
        self.weights.len()
    }

    /// Number of machines accumulated.
    pub fn num_machines(&self) -> usize {
        self.machines
    }

    fn edge_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.n);
        // Index of (i, j), i < j, in row-major upper-triangular order.
        i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    /// Adds a machine: every pair of states the partition separates gains
    /// one unit of weight.
    ///
    /// Converts the partition to its bitset-block form and updates weights
    /// word-at-a-time; see [`FaultGraph::add_machine_bitset`].  The original
    /// per-pair element scan is preserved as
    /// [`FaultGraph::add_machine_scan`].
    pub fn add_machine(&mut self, p: &Partition) {
        assert_eq!(p.len(), self.n, "partition over wrong number of states");
        self.add_machine_bitset(&BitsetPartition::from_partition(p));
    }

    /// Adds a machine given as a pre-converted [`BitsetPartition`] — the
    /// fast path for scoring loops that add the same candidate partitions to
    /// many graph clones (e.g. [`crate::exhaustive_minimum_fusion`]).
    ///
    /// For every state `i` the set of states `j > i` that the machine
    /// separates from `i` is the *complement* of `i`'s block row, so the
    /// update walks `!row` word-at-a-time and bumps exactly the edges whose
    /// weight grows (the per-`i` edge range `(i, i+1..n)` is contiguous in
    /// the upper-triangular layout).  The weight histogram and cached
    /// `dmin` are maintained in the same pass.
    pub fn add_machine_bitset(&mut self, p: &BitsetPartition) {
        self.add_machine_bitset_impl(p, true);
    }

    fn add_machine_bitset_impl(&mut self, p: &BitsetPartition, track: bool) {
        assert_eq!(p.len(), self.n, "partition over wrong number of states");
        let n = self.n;
        let words = words_for(n);
        if track {
            // One more machine: weights may now reach `machines + 1`.
            self.hist.push(0);
        }
        let mut base = 0usize;
        for i in 0..n.saturating_sub(1) {
            let row = p.block_row(p.block_of(i));
            let start = i + 1;
            for (w, &word) in row.iter().enumerate().skip(start / WORD_BITS) {
                let mut mask = !word;
                if w == start / WORD_BITS {
                    mask &= !0u64 << (start % WORD_BITS);
                }
                if w == words - 1 && n % WORD_BITS != 0 {
                    mask &= (1u64 << (n % WORD_BITS)) - 1;
                }
                while mask != 0 {
                    let j = w * WORD_BITS + mask.trailing_zeros() as usize;
                    let idx = base + (j - start);
                    let old = self.weights[idx];
                    self.weights[idx] = old + 1;
                    if track {
                        self.hist[old as usize] -= 1;
                        self.hist[old as usize + 1] += 1;
                    }
                    mask &= mask - 1;
                }
            }
            base += n - i - 1;
        }
        self.machines += 1;
        if track {
            self.advance_min_weight();
        }
    }

    /// The pre-refactor element scan: every `(i, j)` pair tested with
    /// [`Partition::separates`].  Kept for cross-validation (property tests)
    /// and as the `fault_graph_build_scan` baseline in `BENCH_fusion.json`;
    /// use [`FaultGraph::add_machine`] everywhere else.  Faithful to its
    /// pre-refactor behavior, it leaves the incremental trackers to a full
    /// rebuild pass instead of maintaining them inline.
    pub fn add_machine_scan(&mut self, p: &Partition) {
        assert_eq!(p.len(), self.n, "partition over wrong number of states");
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if p.separates(i, j) {
                    let idx = self.edge_index(i, j);
                    self.weights[idx] += 1;
                }
            }
        }
        self.machines += 1;
        self.rebuild_trackers();
    }

    /// Rebuilds the histogram and cached `dmin` from the raw weights in one
    /// `O(E + m)` pass.
    fn rebuild_trackers(&mut self) {
        self.hist = vec![0; self.machines + 1];
        let mut min = u32::MAX;
        for &w in &self.weights {
            self.hist[w as usize] += 1;
            min = min.min(w);
        }
        self.min_weight = min;
    }

    /// Advances the cached minimum past emptied histogram slots (weights
    /// only grow, so the minimum never moves back down).
    fn advance_min_weight(&mut self) {
        if self.weights.is_empty() {
            self.min_weight = u32::MAX;
            return;
        }
        let mut d = self.min_weight as usize;
        while self.hist[d] == 0 {
            d += 1;
        }
        self.min_weight = d as u32;
    }

    /// The distance `d(ti, tj)` between two states (Definition 4).
    pub fn weight(&self, i: usize, j: usize) -> u32 {
        if i == j {
            return u32::MAX;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        self.weights[self.edge_index(a, b)]
    }

    /// The minimum edge weight `dmin`, from the incrementally maintained
    /// tracker — `O(1)`.  For a single-state `⊤` there are no edges and no
    /// pair of states to confuse, so every fault count is tolerated; we
    /// represent that as `u32::MAX`.
    pub fn dmin(&self) -> u32 {
        self.min_weight
    }

    /// The pre-refactor `dmin`: a full scan over every edge weight.  Kept
    /// for cross-validation and as the `fault_graph_incremental_dmin_scan`
    /// baseline; use [`FaultGraph::dmin`] everywhere else.
    pub fn dmin_scan(&self) -> u32 {
        self.weights.iter().copied().min().unwrap_or(u32::MAX)
    }

    /// All edges whose weight equals `dmin` — the "weakest edges" Algorithm 2
    /// must cover with every machine it adds.  One filtered pass against the
    /// cached minimum (the pre-refactor version scanned every edge twice:
    /// once for `dmin`, once for the edges at that weight); the result is in
    /// row-major order, matching the scan.
    pub fn weakest_edges(&self) -> Vec<(usize, usize)> {
        if self.min_weight == u32::MAX {
            return Vec::new();
        }
        self.edges_with_weight(self.min_weight)
    }

    /// The pre-refactor weakest-edge computation: one full scan for `dmin`
    /// and a second for the edges at that weight.  Kept for cross-validation
    /// and as the `fault_graph_incremental_weakest_scan` baseline; use
    /// [`FaultGraph::weakest_edges`] everywhere else.
    pub fn weakest_edges_scan(&self) -> Vec<(usize, usize)> {
        let d = self.dmin_scan();
        if d == u32::MAX {
            return Vec::new();
        }
        self.edges_with_weight(d)
    }

    /// All edges with exactly the given weight.
    pub fn edges_with_weight(&self, w: u32) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.weights[self.edge_index(i, j)] == w {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// All edges with weight at most `w`.
    pub fn edges_with_weight_at_most(&self, w: u32) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.weights[self.edge_index(i, j)] <= w {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Theorem 1: the machine set tolerates `f` crash faults iff
    /// `dmin > f`.
    pub fn tolerates_crash_faults(&self, f: usize) -> bool {
        (self.dmin() as u128) > f as u128
    }

    /// Theorem 2: the machine set tolerates `f` Byzantine faults iff
    /// `dmin > 2f`.
    pub fn tolerates_byzantine_faults(&self, f: usize) -> bool {
        (self.dmin() as u128) > 2 * f as u128
    }

    /// Observation 1: the maximum number of crash faults tolerated,
    /// `dmin − 1`.
    pub fn max_crash_faults(&self) -> usize {
        let d = self.dmin();
        if d == u32::MAX {
            usize::MAX
        } else {
            (d as usize).saturating_sub(1)
        }
    }

    /// Observation 1: the maximum number of Byzantine faults tolerated,
    /// `(dmin − 1) / 2`.
    pub fn max_byzantine_faults(&self) -> usize {
        let d = self.dmin();
        if d == u32::MAX {
            usize::MAX
        } else {
            (d as usize).saturating_sub(1) / 2
        }
    }

    /// Whether a candidate machine separates every one of the given edges.
    /// Adding such a machine increases the weight of each of these edges by
    /// one; when the edges are the weakest edges, this is exactly the
    /// condition under which adding the machine increases `dmin`
    /// (the test on line 6 of Algorithm 2).
    pub fn covers_all(candidate: &Partition, edges: &[(usize, usize)]) -> bool {
        edges.iter().all(|&(i, j)| candidate.separates(i, j))
    }

    /// Would adding `candidate` increase `dmin`?
    ///
    /// Answered from the incremental tracker without materializing a graph
    /// copy: `dmin` grows iff the candidate separates every current weakest
    /// edge (weights move by at most one per added machine), so the check
    /// is one early-exiting pass over the weights instead of the
    /// clone + word-level add + full rescan of
    /// [`FaultGraph::addition_increases_dmin_scan`].
    pub fn speculate(&self, candidate: &Partition) -> bool {
        assert_eq!(
            candidate.len(),
            self.n,
            "partition over wrong number of states"
        );
        self.speculate_with(|i, j| candidate.separates(i, j))
    }

    /// [`FaultGraph::speculate`] for a pre-converted [`BitsetPartition`]
    /// candidate.
    pub fn speculate_bitset(&self, candidate: &BitsetPartition) -> bool {
        assert_eq!(
            candidate.len(),
            self.n,
            "partition over wrong number of states"
        );
        self.speculate_with(|i, j| candidate.separates(i, j))
    }

    fn speculate_with(&self, separates: impl Fn(usize, usize) -> bool) -> bool {
        if self.min_weight == u32::MAX {
            // No edges: dmin is already maximal and cannot increase.
            return false;
        }
        let d = self.min_weight;
        let mut idx = 0usize;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.weights[idx] == d && !separates(i, j) {
                    return false;
                }
                idx += 1;
            }
        }
        true
    }

    /// Would adding `candidate` increase `dmin`?  Tracker-backed; see
    /// [`FaultGraph::speculate`].
    pub fn addition_increases_dmin(&self, candidate: &Partition) -> bool {
        self.speculate(candidate)
    }

    /// The pre-refactor direct check: clone the graph, add the machine,
    /// compare `dmin`.  Kept for cross-validation and as the
    /// `fault_graph_incremental_speculate_scan` baseline; use
    /// [`FaultGraph::speculate`] everywhere else.
    pub fn addition_increases_dmin_scan(&self, candidate: &Partition) -> bool {
        let mut g = self.clone();
        g.add_machine(candidate);
        g.dmin_scan() > self.dmin_scan()
    }

    /// A histogram of edge weights, useful for reports and for reproducing
    /// the paper's Figure 4 numbers.  Read from the incrementally
    /// maintained tracker (`O(machines)`), not a rescan of the weights.
    pub fn weight_histogram(&self) -> std::collections::BTreeMap<u32, usize> {
        self.hist
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(w, &count)| (w as u32, count))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Partitions for the paper's Fig. 3 machines over ⊤ = {t0,t1,t2,t3}.
    fn fig3_partitions() -> (Partition, Partition, Partition, Partition) {
        let a = Partition::from_blocks(4, &[vec![0, 3], vec![1], vec![2]]).unwrap();
        let b = Partition::from_blocks(4, &[vec![0], vec![1], vec![2, 3]]).unwrap();
        let m1 = Partition::from_blocks(4, &[vec![0, 2], vec![1], vec![3]]).unwrap();
        let m2 = Partition::from_blocks(4, &[vec![0], vec![1, 2], vec![3]]).unwrap();
        (a, b, m1, m2)
    }

    #[test]
    fn fault_graph_of_single_machine_matches_fig4_i() {
        // G({A}): edge (t0,t3) has weight 0, every other edge weight 1.
        let (a, _, _, _) = fig3_partitions();
        let g = FaultGraph::from_partitions(4, &[a]);
        assert_eq!(g.weight(0, 3), 0);
        assert_eq!(g.weight(0, 1), 1);
        assert_eq!(g.weight(1, 2), 1);
        assert_eq!(g.weight(2, 3), 1);
        assert_eq!(g.dmin(), 0);
        assert_eq!(g.max_crash_faults(), 0);
        assert_eq!(g.num_machines(), 1);
    }

    #[test]
    fn fault_graph_of_a_and_b_has_dmin_one() {
        // Fig. 4(ii): dmin({A,B}) = 1, so {A,B} cannot tolerate any fault.
        let (a, b, _, _) = fig3_partitions();
        let g = FaultGraph::from_partitions(4, &[a, b]);
        assert_eq!(g.dmin(), 1);
        assert!(!g.tolerates_crash_faults(1));
        assert!(g.tolerates_crash_faults(0));
        assert_eq!(g.weight(0, 1), 2);
        // The weakest edges include (t0,t3) (A cannot tell them apart) and
        // (t2,t3) (B cannot tell them apart).
        let weak = g.weakest_edges();
        assert!(weak.contains(&(0, 3)));
        assert!(weak.contains(&(2, 3)));
    }

    #[test]
    fn adding_machines_increases_weights_monotonically() {
        let (a, b, m1, m2) = fig3_partitions();
        let mut g = FaultGraph::from_partitions(4, &[a.clone(), b.clone()]);
        let before = g.dmin();
        g.add_machine(&m1);
        g.add_machine(&m2);
        assert!(g.dmin() >= before);
        assert_eq!(g.num_machines(), 4);
    }

    #[test]
    fn fig4_iii_tolerates_two_crash_and_one_byzantine() {
        // dmin({A,B,M1,M2}) = 3 in the paper.
        let (a, b, m1, m2) = fig3_partitions();
        let g = FaultGraph::from_partitions(4, &[a, b, m1, m2]);
        assert_eq!(g.dmin(), 3);
        assert!(g.tolerates_crash_faults(2));
        assert!(!g.tolerates_crash_faults(3));
        assert_eq!(g.max_crash_faults(), 2);
        assert_eq!(g.max_byzantine_faults(), 1);
        assert!(g.tolerates_byzantine_faults(1));
        assert!(!g.tolerates_byzantine_faults(2));
    }

    #[test]
    fn covers_all_and_speculate_agree_with_clone_based_check() {
        let (a, b, m1, m2) = fig3_partitions();
        let g = FaultGraph::from_partitions(4, &[a.clone(), b.clone()]);
        let weak = g.weakest_edges();
        for candidate in [&a, &b, &m1, &m2] {
            let direct = g.addition_increases_dmin_scan(candidate);
            assert_eq!(
                FaultGraph::covers_all(candidate, &weak),
                direct,
                "candidate {candidate}"
            );
            assert_eq!(g.speculate(candidate), direct, "candidate {candidate}");
            assert_eq!(
                g.speculate_bitset(&candidate.to_bitset()),
                direct,
                "candidate {candidate}"
            );
            assert_eq!(
                g.addition_increases_dmin(candidate),
                direct,
                "candidate {candidate}"
            );
        }
    }

    #[test]
    fn empty_machine_set_has_zero_weights() {
        let g = FaultGraph::new(5);
        assert_eq!(g.dmin(), 0);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(g.weakest_edges().len(), 10);
        assert_eq!(g.weight_histogram().get(&0), Some(&10));
    }

    #[test]
    fn single_state_top_tolerates_everything() {
        let g = FaultGraph::new(1);
        assert_eq!(g.dmin(), u32::MAX);
        assert!(g.tolerates_crash_faults(100));
        assert!(g.tolerates_byzantine_faults(100));
        assert!(g.weakest_edges().is_empty());
        // With no edges, dmin is already maximal: speculation is negative.
        assert!(!g.speculate(&Partition::singletons(1)));
    }

    #[test]
    fn weight_is_symmetric_and_diagonal_is_max() {
        let (a, b, _, _) = fig3_partitions();
        let g = FaultGraph::from_partitions(4, &[a, b]);
        for i in 0..4 {
            for j in 0..4 {
                if i == j {
                    assert_eq!(g.weight(i, j), u32::MAX);
                } else {
                    assert_eq!(g.weight(i, j), g.weight(j, i));
                }
            }
        }
    }

    #[test]
    fn edges_with_weight_filters() {
        let (a, _, _, _) = fig3_partitions();
        let g = FaultGraph::from_partitions(4, &[a]);
        assert_eq!(g.edges_with_weight(0), vec![(0, 3)]);
        assert_eq!(g.edges_with_weight(1).len(), 5);
        assert_eq!(g.edges_with_weight_at_most(1).len(), 6);
        let h = g.weight_histogram();
        assert_eq!(h[&0], 1);
        assert_eq!(h[&1], 5);
    }

    #[test]
    fn bitset_add_machine_matches_scan_across_word_boundaries() {
        // 70 states spans two u64 words; mod-3 blocks interleave across the
        // boundary, exercising the first/last-word masking.
        let n = 70;
        let assignment: Vec<usize> = (0..n).map(|x| x % 3).collect();
        let p = Partition::from_assignment(&assignment);
        let singles = Partition::singletons(n);
        let mut word = FaultGraph::new(n);
        word.add_machine(&p);
        word.add_machine_bitset(&singles.to_bitset());
        let mut scan = FaultGraph::new(n);
        scan.add_machine_scan(&p);
        scan.add_machine_scan(&singles);
        assert_eq!(word.num_machines(), scan.num_machines());
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(word.weight(i, j), scan.weight(i, j), "edge ({i},{j})");
            }
        }
        assert_eq!(word.dmin(), scan.dmin());
        assert_eq!(word.weight_histogram(), scan.weight_histogram());
    }

    #[test]
    fn incremental_trackers_match_full_scans() {
        // Interleave tracked adds and queries; the cached dmin and bucketed
        // weakest edges must match the full rescans at every step.
        let n = 70;
        let machines: Vec<Partition> = (0..4)
            .map(|k| {
                Partition::from_assignment(&(0..n).map(|x| (x + k) % (k + 2)).collect::<Vec<_>>())
            })
            .collect();
        let mut g = FaultGraph::new(n);
        for p in &machines {
            g.add_machine(p);
            assert_eq!(g.dmin(), g.dmin_scan());
            assert_eq!(g.weakest_edges(), g.weakest_edges_scan());
        }
        // And after a bulk build.
        let bulk = FaultGraph::from_partitions(n, &machines);
        assert_eq!(bulk.dmin(), g.dmin());
        assert_eq!(bulk.weakest_edges(), g.weakest_edges());
    }

    #[test]
    fn theorem2_example_from_paper_text() {
        // The paper's Section 3 example: {A,B,M1,M2} has dmin = 3, so it
        // tolerates two crash faults but only one Byzantine fault.
        let (a, b, m1, m2) = fig3_partitions();
        let g = FaultGraph::from_partitions(4, &[a, b, m1, m2]);
        assert_eq!(g.max_crash_faults(), 2);
        assert_eq!(g.max_byzantine_faults(), 1);
    }
}
